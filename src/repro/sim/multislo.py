"""Serving multiple latency SLOs (Appendix G).

The paper handles multiple SLOs the way existing systems do: each worker is
assigned one latency SLO, a central queue is instantiated per SLO, and
workers attach to the queue whose SLO matches.  Because the partitions
share nothing, the composition is a set of independent single-SLO systems;
:func:`run_multi_slo` builds and runs them together and reports per-class
and aggregate metrics.

:func:`partition_workers` implements a simple proportional worker split
(by each class's expected work — load x fastest-feasible service time),
which a resource manager would refine with the §5.1 expectations (see
``examples/capacity_planning.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.arrivals.distributions import ArrivalDistribution, PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.profiles.models import ModelSet
from repro.selectors.base import ModelSelector
from repro.sim.latency_model import DeterministicLatency, LatencyModel
from repro.sim.metrics import SimulationMetrics
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig

__all__ = ["SLOClass", "MultiSLOReport", "partition_workers", "run_multi_slo"]


@dataclass
class SLOClass:
    """One application SLO class: its latency target, workload, selector."""

    slo_ms: float
    trace: LoadTrace
    selector: ModelSelector
    num_workers: Optional[int] = None  # None -> assigned by the partitioner
    pattern: Optional[ArrivalDistribution] = None
    #: Opt-in observability, per class: the partitions share nothing, so
    #: each class records onto its own tracer/registry (worker tracks are
    #: numbered within the partition and would collide on a shared one).
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ConfigurationError(f"slo_ms must be > 0, got {self.slo_ms}")


@dataclass(frozen=True)
class MultiSLOReport:
    """Per-class and aggregate outcomes of a multi-SLO run."""

    per_class: Mapping[float, SimulationMetrics]
    workers: Mapping[float, int]

    @property
    def total_queries(self) -> int:
        """Queries served across all SLO classes."""
        return sum(m.total_queries for m in self.per_class.values())

    @property
    def aggregate_violation_rate(self) -> float:
        """Query-weighted violation rate across classes."""
        total = self.total_queries
        if total == 0:
            return 0.0
        missed = sum(
            m.total_queries - m.satisfied_queries for m in self.per_class.values()
        )
        return missed / total

    @property
    def aggregate_accuracy(self) -> float:
        """Query-weighted accuracy per satisfied query across classes."""
        satisfied = sum(m.satisfied_queries for m in self.per_class.values())
        if satisfied == 0:
            return 0.0
        weighted = sum(
            m.accuracy_per_satisfied_query * m.satisfied_queries
            for m in self.per_class.values()
        )
        return weighted / satisfied


def partition_workers(
    classes: Sequence[SLOClass], model_set: ModelSet, total_workers: int
) -> Dict[float, int]:
    """Split ``total_workers`` across SLO classes proportionally to work.

    Each class's weight is its mean load times the per-query service time
    of the fastest model at the batch size that fits half its SLO — a
    first-order estimate of required capacity.  Every class gets at least
    one worker; leftovers go to the heaviest classes.
    """
    if total_workers < len(classes):
        raise ConfigurationError(
            f"{total_workers} workers cannot cover {len(classes)} SLO classes"
        )
    weights: List[float] = []
    for cls in classes:
        fastest = model_set.fastest()
        throughput = fastest.peak_throughput_qps(cls.slo_ms / 2.0, cap=32)
        throughput = max(throughput, 1e-9)
        weights.append(cls.trace.mean_qps / throughput)
    total_weight = sum(weights) or 1.0
    shares = [max(1, round(total_workers * w / total_weight)) for w in weights]
    # Normalize rounding drift while keeping every class >= 1.
    while sum(shares) > total_workers:
        largest = max(range(len(shares)), key=lambda i: shares[i])
        if shares[largest] <= 1:
            raise ConfigurationError("not enough workers for all SLO classes")
        shares[largest] -= 1
    while sum(shares) < total_workers:
        heaviest = max(range(len(shares)), key=lambda i: weights[i] / shares[i])
        shares[heaviest] += 1
    return {cls.slo_ms: share for cls, share in zip(classes, shares)}


def run_multi_slo(
    model_set: ModelSet,
    classes: Sequence[SLOClass],
    total_workers: Optional[int] = None,
    latency_model: Optional[LatencyModel] = None,
    max_batch_size: int = 32,
    seed: int = 0,
    oracle_load: bool = True,
) -> MultiSLOReport:
    """Run every SLO class against its dedicated worker partition.

    Worker counts come from each class's ``num_workers`` when set;
    otherwise ``total_workers`` is split with :func:`partition_workers`.
    """
    if not classes:
        raise ConfigurationError("need at least one SLO class")
    slos = [cls.slo_ms for cls in classes]
    if len(set(slos)) != len(slos):
        raise ConfigurationError("SLO classes must have distinct slo_ms")

    if any(cls.num_workers is None for cls in classes):
        if total_workers is None:
            raise ConfigurationError(
                "total_workers required when classes omit num_workers"
            )
        assigned = partition_workers(classes, model_set, total_workers)
    else:
        assigned = {cls.slo_ms: int(cls.num_workers) for cls in classes}

    per_class: Dict[float, SimulationMetrics] = {}
    for index, cls in enumerate(classes):
        workers = (
            cls.num_workers if cls.num_workers is not None else assigned[cls.slo_ms]
        )
        sim = Simulation(
            SimulationConfig(
                model_set=model_set,
                slo_ms=cls.slo_ms,
                num_workers=workers,
                max_batch_size=max_batch_size,
                latency_model=latency_model or DeterministicLatency(),
                monitor=OracleLoadMonitor(cls.trace) if oracle_load else None,
                seed=seed + index,
                track_responses=False,
                tracer=cls.tracer,
                registry=cls.registry,
            )
        )
        pattern = cls.pattern or PoissonArrivals(max(cls.trace.mean_qps, 1e-9))
        per_class[cls.slo_ms] = sim.run(cls.selector, cls.trace, pattern=pattern)
    return MultiSLOReport(per_class=per_class, workers=dict(assigned))
