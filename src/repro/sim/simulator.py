"""The discrete-event ISS simulator (§6).

Replays a trace of query arrivals against a cluster of ``K`` workers and a
model selector, tracking queue states, worker busy periods, and per-query
outcomes.  Two scheduling disciplines are supported, matching how the paper
runs RAMSIS and its baselines in the same framework:

- **per-worker queues** (RAMSIS, §3.2): the load balancer assigns each
  arriving query to a worker queue; each worker's model selector serves its
  own queue in deadline order;
- **central queue** (Jellyfish+/ModelSwitching, §7): idle workers eagerly
  grab batches from the shared queue, batch size capped by the baseline's
  adaptive-batching rule.

The event loop merges the (pre-sampled, sorted) arrival stream with a heap
of service completions, so the run cost is O((arrivals + decisions) log K).
Queries are never dropped — like the paper's evaluation, late queries are
"better served late than never" (§4.3.1).

Two interchangeable event-loop engines implement the same semantics:

- :meth:`Simulation.reference_event_loop` — the straightforward loop with
  per-query :class:`~repro.sim.queries.Query` objects and inline
  observability hooks.  It serves both as the traced path (tracer or
  registry attached) and as the golden reference the equivalence suite
  pins the fast engine against.
- the **fast path** — used automatically when no tracer/registry is
  attached: queries are array-backed records (index into the arrival /
  deadline arrays instead of an object per query), queue lengths are
  maintained incrementally rather than rebuilt per arrival, deterministic
  execution latencies resolve through a per-worker ``(model, batch) ->
  exec_ms`` table, and metric accumulation is inlined.  Results are
  float-identical to the reference loop (asserted by
  ``tests/test_sim_equivalence.py``).
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arrivals.distributions import ArrivalDistribution, PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.balancers import LoadBalancer, RoundRobinBalancer
from repro.errors import SimulationError
from repro.obs.attribution import LatencyAttributor
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.profiles.models import ModelSet
from repro.sim.latency_model import DeterministicLatency, LatencyModel
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.monitor import LoadMonitor, OracleLoadMonitor
from repro.sim.queries import Query
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext

__all__ = ["QueueDiscipline", "SimulationConfig", "Simulation"]


class QueueDiscipline(enum.Enum):
    """Where pending queries wait (see module docstring)."""

    PER_WORKER = "per_worker"
    CENTRAL = "central"


@dataclass
class SimulationConfig:
    """Cluster and instrumentation configuration for one simulation."""

    model_set: ModelSet
    slo_ms: float
    num_workers: int
    max_batch_size: int = 32
    latency_model: LatencyModel = field(default_factory=DeterministicLatency)
    balancer: LoadBalancer = field(default_factory=RoundRobinBalancer)
    monitor: Optional[LoadMonitor] = None
    seed: int = 0
    track_responses: bool = True
    #: §4.3.1 alternative: when the selector returns a late (unsatisfiable)
    #: action, drop the queued queries instead of serving them late.
    #: Dropped queries count as SLO violations.  Default off, as in the
    #: paper's evaluation.
    drop_late: bool = False
    #: Heterogeneous clusters (§7: homogeneity is not fundamental): worker
    #: ``i``'s execution latencies are multiplied by ``factors[i]``.
    #: ``None`` means a homogeneous cluster (all 1.0).
    worker_speed_factors: Optional[Tuple[float, ...]] = None
    #: Opt-in observability (repro.obs).  ``tracer`` records per-query
    #: lifecycle events and per-batch service spans; ``registry`` receives
    #: counters/gauges/histograms (queue depth, anticipated vs. realized
    #: load, batch sizes, per-model dispatch counts).  Both default off.
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    #: Streaming tail-latency attribution (repro.obs.attribution).  Both
    #: engines feed its ``observe_*`` hooks with the same float
    #: expressions, so fast and reference runs attribute identically —
    #: attaching an attributor alone does *not* force the reference
    #: engine the way a tracer/registry does.
    attributor: Optional["LatencyAttributor"] = None

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise SimulationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.slo_ms <= 0:
            raise SimulationError(f"slo_ms must be > 0, got {self.slo_ms}")
        if self.max_batch_size < 1:
            raise SimulationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.worker_speed_factors is not None:
            if len(self.worker_speed_factors) != self.num_workers:
                raise SimulationError(
                    f"worker_speed_factors has {len(self.worker_speed_factors)} "
                    f"entries for {self.num_workers} workers"
                )
            if any(f <= 0 for f in self.worker_speed_factors):
                raise SimulationError("worker speed factors must be > 0")


class Simulation:
    """One reusable simulation driver.

    Each :meth:`run` is independent: queues, monitor, balancer, and the
    latency model's randomness are reset from the configured seed.
    """

    def __init__(self, config: SimulationConfig) -> None:
        self._config = config

    @property
    def config(self) -> SimulationConfig:
        """The cluster configuration."""
        return self._config

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(
        self,
        selector: Union[ModelSelector, Sequence[ModelSelector]],
        trace: LoadTrace,
        pattern: Optional[ArrivalDistribution] = None,
        arrival_times: Optional[np.ndarray] = None,
        engine: str = "auto",
    ) -> SimulationMetrics:
        """Serve one realization of ``trace`` with ``selector``.

        ``pattern`` defaults to Poisson (the paper's inter-arrival model);
        pass ``arrival_times`` to replay an explicit timestamp array
        instead of sampling.  ``selector`` may be a sequence of
        ``num_workers`` selectors — one per worker, the heterogeneous-
        cluster setting where each worker type runs its own policy.

        ``engine`` selects the event loop: ``"auto"`` (default) runs the
        fast path unless a tracer or registry is attached, ``"fast"``
        forces the fast path (observability hooks are skipped),
        ``"reference"`` forces the golden reference loop.  All engines
        produce float-identical :class:`SimulationMetrics`.
        """
        cfg = self._config
        if arrival_times is None:
            rng = np.random.default_rng(cfg.seed)
            if pattern is None:
                pattern = PoissonArrivals(max(trace.mean_qps, 1e-9))
            arrival_times = sample_arrival_times(trace, pattern, rng)
        # Both trace sampling and the experiment runner's shared arrival
        # realizations are already sorted; a linear monotonicity check
        # skips the O(n log n) re-sort (and its copy) in that common case.
        arrivals = np.ascontiguousarray(arrival_times, dtype=np.float64)
        if arrivals.ndim != 1:
            raise SimulationError(
                f"arrival_times must be 1-D, got shape {arrivals.shape}"
            )
        if arrivals.size > 1 and np.any(arrivals[1:] < arrivals[:-1]):
            arrivals = np.sort(arrivals)

        if isinstance(selector, ModelSelector):
            selectors: List[ModelSelector] = [selector] * cfg.num_workers
        else:
            selectors = list(selector)
            if len(selectors) != cfg.num_workers:
                raise SimulationError(
                    f"{len(selectors)} selectors for {cfg.num_workers} workers"
                )
            if len({s.queue_scope for s in selectors}) != 1:
                raise SimulationError(
                    "per-worker selectors must share one queue scope"
                )
        context = SelectorContext(
            model_set=cfg.model_set,
            slo_ms=cfg.slo_ms,
            num_workers=cfg.num_workers,
            max_batch_size=cfg.max_batch_size,
        )
        for s in dict.fromkeys(selectors):  # bind each distinct selector once
            s.bind(context)
        discipline = (
            QueueDiscipline.PER_WORKER
            if selectors[0].queue_scope is QueueScope.PER_WORKER
            else QueueDiscipline.CENTRAL
        )
        if engine == "auto":
            observed = (
                cfg.tracer is not None and cfg.tracer.enabled
            ) or cfg.registry is not None
            engine = "reference" if observed else "fast"
        if engine not in ("fast", "reference"):
            raise SimulationError(
                f"unknown engine {engine!r} (expected 'auto', 'fast', 'reference')"
            )
        tracer = cfg.tracer
        if tracer is not None and tracer.enabled:
            # Wall-clock phase around the whole event loop — the phase
            # profiler's per-run unit for engine time.  Untraced runs
            # (both engines) skip it entirely.
            with tracer.span(
                "event_loop",
                track="engine",
                args={"engine": engine, "queries": int(arrivals.size)},
            ):
                if engine == "fast":
                    return self._event_loop_fast(selectors, arrivals, discipline)
                return self.reference_event_loop(selectors, arrivals, discipline)
        if engine == "fast":
            return self._event_loop_fast(selectors, arrivals, discipline)
        return self.reference_event_loop(selectors, arrivals, discipline)

    # ------------------------------------------------------------------
    # Reference event loop (also the traced path)
    # ------------------------------------------------------------------
    def reference_event_loop(
        self,
        selectors: List[ModelSelector],
        arrivals: np.ndarray,
        discipline: QueueDiscipline,
    ) -> SimulationMetrics:
        """The golden event loop: per-query objects, inline obs hooks.

        This is the original implementation; the fast path is pinned to
        it by the equivalence suite.  It is also the loop that runs when
        a tracer or metrics registry is attached, so observability
        behavior is unchanged by the fast path's existence.
        """
        cfg = self._config
        monitor = cfg.monitor if cfg.monitor is not None else LoadMonitor()
        monitor.reset()
        monitor.attach_registry(cfg.registry)
        balancer = cfg.balancer
        balancer.reset()
        latency_model = cfg.latency_model.clone(cfg.seed + 1)
        registry = cfg.registry
        metrics = MetricsCollector(
            track_responses=cfg.track_responses, registry=registry
        )
        model_set = cfg.model_set

        # Observability is opt-in; `tracing` guards every hook so the
        # default run pays only a boolean check per event.
        tracer = cfg.tracer if cfg.tracer is not None else NULL_TRACER
        tracing = tracer.enabled
        attributor = cfg.attributor
        attributing = attributor is not None
        if registry is not None:
            gauge_anticipated = registry.gauge(
                "sim_anticipated_load_qps",
                help="load the monitor reports to selectors",
            )
            gauge_realized = registry.gauge(
                "sim_realized_load_qps",
                help="trailing moving-average arrival rate",
            )
        else:
            gauge_anticipated = gauge_realized = None

        num_workers = cfg.num_workers
        per_worker = discipline is QueueDiscipline.PER_WORKER
        queues: List[Deque[Query]] = [
            deque() for _ in range(num_workers if per_worker else 1)
        ]
        if registry is not None:
            # One depth gauge per queue: worker-indexed under the
            # per-worker discipline, a single shared one under central.
            queue_gauges: List[Optional[object]] = [
                registry.gauge(
                    "sim_queue_depth",
                    help="pending queries per queue",
                    labels={"worker": str(i) if per_worker else "central"},
                )
                for i in range(len(queues))
            ]
        else:
            queue_gauges = [None] * len(queues)
        busy = [False] * num_workers
        idle_workers: List[int] = list(range(num_workers - 1, -1, -1))

        # Completion heap entries: (time, sequence, worker, model_name, batch)
        completions: List[Tuple[float, int, int, str, List[Query]]] = []
        sequence = 0

        speed = (
            cfg.worker_speed_factors
            if cfg.worker_speed_factors is not None
            else (1.0,) * num_workers
        )

        def dispatch(worker: int, queue: Deque[Query], now: float) -> bool:
            """Consult the worker's selector and start service; False when
            the decision dropped the queue and the worker stays idle."""
            nonlocal sequence
            head = queue[0]
            queue_len = len(queue)
            earliest_slack_ms = head.slack_at(now)
            anticipated = monitor.anticipated_load_qps(now)
            action = selectors[worker].select(
                queue_length=queue_len,
                earliest_slack_ms=earliest_slack_ms,
                now_ms=now,
                anticipated_load_qps=anticipated,
            )
            batch = min(action.batch_size, queue_len)
            if batch < 1:
                raise SimulationError(
                    f"selector {selectors[worker].name} returned batch {batch}"
                )
            if action.is_late and cfg.drop_late:
                # Drop the whole queue (the (n, T_j) abstraction knows only
                # the earliest deadline is missed; see DESIGN.md §3) and
                # leave the worker idle.
                while queue:
                    dropped = queue.popleft()
                    metrics.record_completion(
                        model_name="<dropped>",
                        model_accuracy=0.0,
                        response_ms=now - dropped.arrival_ms,
                        satisfied=False,
                    )
                    if attributing:
                        attributor.observe_completion(
                            dropped.query_id,
                            worker,
                            "<dropped>",
                            now - dropped.arrival_ms,
                            False,
                            t_ms=now,
                            dropped=True,
                        )
                    if tracing:
                        tracer.instant(
                            "completion",
                            f"worker-{worker}",
                            now,
                            args={
                                "query": dropped.query_id,
                                "worker": worker,
                                "model": "<dropped>",
                                "satisfied": False,
                                "dropped": True,
                                "accuracy": 0.0,
                                "response_ms": now - dropped.arrival_ms,
                            },
                        )
                if tracing:
                    tracer.counter(
                        "queue_depth",
                        f"worker-{worker}" if per_worker else "central",
                        now,
                        0,
                    )
                return False
            served = [queue.popleft() for _ in range(batch)]
            model = model_set.get(action.model)
            exec_ms = latency_model.execution_ms(model, batch) * speed[worker]
            metrics.record_decision(batch, model_name=model.name)
            busy[worker] = True
            sequence += 1
            heapq.heappush(
                completions, (now + exec_ms, sequence, worker, model.name, served)
            )
            if attributing:
                attributor.observe_decision(worker, model.name, batch, exec_ms)
                for query in served:
                    attributor.observe_service_start(
                        query.query_id,
                        worker,
                        model.name,
                        batch,
                        now - query.arrival_ms,
                    )
            if tracing:
                track = f"worker-{worker}"
                tracer.complete(
                    "serve",
                    track,
                    now,
                    exec_ms,
                    args={
                        "worker": worker,
                        "model": model.name,
                        "batch": batch,
                        "queue_len": queue_len,
                        "slack_ms": earliest_slack_ms,
                        "anticipated_qps": anticipated,
                    },
                )
                for query in served:
                    tracer.instant(
                        "service_start",
                        track,
                        now,
                        args={
                            "query": query.query_id,
                            "model": model.name,
                            "batch": batch,
                            "wait_ms": now - query.arrival_ms,
                        },
                    )
                tracer.counter(
                    "queue_depth",
                    track if per_worker else "central",
                    now,
                    len(queue),
                )
            if registry is not None:
                gauge_anticipated.set(anticipated, t_ms=now)
                gauge_realized.set(monitor.realized_load_qps(now), t_ms=now)
                queue_gauges[worker if per_worker else 0].set(
                    len(queue), t_ms=now
                )
            return True

        arrival_index = 0
        total_arrivals = arrivals.shape[0]
        next_query_id = 0

        while arrival_index < total_arrivals or completions:
            next_arrival = (
                arrivals[arrival_index]
                if arrival_index < total_arrivals
                else float("inf")
            )
            next_done = completions[0][0] if completions else float("inf")

            if next_arrival <= next_done:
                now = float(next_arrival)
                arrival_index += 1
                monitor.record_arrival(now)
                query = Query.create(next_query_id, now, cfg.slo_ms)
                next_query_id += 1
                if per_worker:
                    worker = balancer.assign([len(q) for q in queues])
                    queues[worker].append(query)
                    if tracing:
                        tracer.instant(
                            "arrival",
                            "balancer",
                            now,
                            args={"query": query.query_id, "worker": worker},
                        )
                        tracer.counter(
                            "queue_depth",
                            f"worker-{worker}",
                            now,
                            len(queues[worker]),
                        )
                    if registry is not None:
                        queue_gauges[worker].set(len(queues[worker]), t_ms=now)
                    if not busy[worker]:
                        dispatch(worker, queues[worker], now)
                else:
                    queues[0].append(query)
                    if tracing:
                        tracer.instant(
                            "arrival",
                            "balancer",
                            now,
                            args={"query": query.query_id},
                        )
                        tracer.counter(
                            "queue_depth", "central", now, len(queues[0])
                        )
                    if registry is not None:
                        queue_gauges[0].set(len(queues[0]), t_ms=now)
                    if idle_workers:
                        worker = idle_workers.pop()
                        if not dispatch(worker, queues[0], now):
                            idle_workers.append(worker)
            else:
                now, _, worker, model_name, served = heapq.heappop(completions)
                model = model_set.get(model_name)
                for query in served:
                    satisfied = now <= query.deadline_ms
                    metrics.record_completion(
                        model_name=model_name,
                        model_accuracy=model.accuracy,
                        response_ms=now - query.arrival_ms,
                        satisfied=satisfied,
                    )
                    if attributing:
                        attributor.observe_completion(
                            query.query_id,
                            worker,
                            model_name,
                            now - query.arrival_ms,
                            satisfied,
                            t_ms=now,
                        )
                    if tracing:
                        tracer.instant(
                            "completion",
                            f"worker-{worker}",
                            now,
                            args={
                                "query": query.query_id,
                                "worker": worker,
                                "model": model_name,
                                "satisfied": satisfied,
                                "accuracy": model.accuracy,
                                "response_ms": now - query.arrival_ms,
                            },
                        )
                busy[worker] = False
                if per_worker:
                    if queues[worker]:
                        dispatch(worker, queues[worker], now)
                else:
                    if not queues[0] or not dispatch(worker, queues[0], now):
                        idle_workers.append(worker)

        return metrics.finalize()

    # ------------------------------------------------------------------
    # Fast event loop (no observability)
    # ------------------------------------------------------------------
    def _event_loop_fast(
        self,
        selectors: List[ModelSelector],
        arrivals: np.ndarray,
        discipline: QueueDiscipline,
    ) -> SimulationMetrics:
        """Array-backed event loop, float-identical to the reference.

        Queries are plain indices into the arrival/deadline arrays (no
        per-query object), queue lengths are maintained incrementally for
        the balancer, deterministic execution latencies resolve through a
        per-worker ``(model, batch) -> exec_ms`` memo, and the metric
        accumulators are local variables bulk-loaded into the collector at
        the end.  Every floating-point operation happens in the same
        order as in :meth:`reference_event_loop`.

        The balancer receives the *live* queue-length list (the reference
        loop builds a fresh one per arrival); balancers must treat it as
        read-only, which both built-ins do.
        """
        cfg = self._config
        monitor = cfg.monitor if cfg.monitor is not None else LoadMonitor()
        monitor.reset()
        monitor.attach_registry(None)
        balancer = cfg.balancer
        balancer.reset()
        latency_model = cfg.latency_model.clone(cfg.seed + 1)
        model_set = cfg.model_set
        num_workers = cfg.num_workers
        per_worker = discipline is QueueDiscipline.PER_WORKER
        slo_ms = cfg.slo_ms
        drop_late = cfg.drop_late
        track_responses = cfg.track_responses
        # Attribution hooks are guarded by one bool: the detached path
        # pays a single falsy check per event (gated <=1% by
        # benchmarks/bench_attribution.py).
        attributor = cfg.attributor
        attributing = attributor is not None
        speed = (
            cfg.worker_speed_factors
            if cfg.worker_speed_factors is not None
            else (1.0,) * num_workers
        )

        # Array-backed query records: query i *is* index i (queries are
        # created in arrival order, so ids coincide with positions).
        # Python-float lists index faster than ndarray elements and keep
        # the arithmetic bit-identical to Query.create's float fields.
        arrival_list: List[float] = arrivals.tolist()
        total_arrivals = len(arrival_list)
        deadline_list = [t + slo_ms for t in arrival_list]

        accuracy_of = {m.name: m.accuracy for m in model_set}
        profile_of = {m.name: m for m in model_set}
        # Per-worker (model, batch) -> exec_ms memo; exec = p95 * speed is
        # one multiplication either way, so caching the product is exact.
        cache_latency = latency_model.cacheable
        exec_memo: List[dict] = [dict() for _ in range(num_workers)]
        execution_ms = latency_model.execution_ms

        queues: List[Deque[int]] = [
            deque() for _ in range(num_workers if per_worker else 1)
        ]
        queue_lens = [0] * len(queues)
        busy = [False] * num_workers
        idle_workers: List[int] = list(range(num_workers - 1, -1, -1))

        # Completion heap entries: (time, sequence, worker, model_name,
        # accuracy, served indices) — accuracy rides along so the
        # completion path never re-resolves the model by name.
        completions: List[tuple] = []
        sequence = 0

        # Inlined MetricsCollector accumulators (absorbed at the end).
        m_total = 0
        m_satisfied = 0
        m_accuracy_sum = 0.0
        m_response_sum = 0.0
        m_responses: List[float] = []
        m_model_counts: dict = {}
        m_decisions = 0
        m_batch_sum = 0

        heappush = heapq.heappush
        heappop = heapq.heappop
        record_arrival = monitor.record_arrival
        anticipated_load = monitor.anticipated_load_qps
        assign = balancer.assign
        selects = [s.select for s in selectors]
        inf = float("inf")

        # Inline the built-in monitor and balancer (the default, and by far
        # the most common, configuration): for the stock LoadMonitor /
        # OracleLoadMonitor the per-event work is a deque append plus window
        # eviction, and for RoundRobinBalancer a wrapping counter — both
        # identical to the method implementations, minus the call overhead.
        # Custom subclasses fall back to the method calls.
        monitor_type = type(monitor)
        inline_arrivals = monitor_type in (LoadMonitor, OracleLoadMonitor)
        inline_anticipated = monitor_type is LoadMonitor
        mon_arrivals, window_ms = monitor.hot_state()
        mon_append = mon_arrivals.append
        mon_popleft = mon_arrivals.popleft
        round_robin = type(balancer) is RoundRobinBalancer
        rr_next = 0

        # The reference loop's `dispatch` closure is inlined once at the
        # bottom of the loop (both event branches fall through to it), so
        # the metric accumulators stay plain locals — no closure call, no
        # nonlocal cell writes per decision.  Both branches establish the
        # same contract before falling through: `worker` may serve `queue`
        # (central: the worker is already popped from the idle pool and is
        # re-appended on a drop, matching the reference's pop/dispatch/
        # append-on-False sequence).
        arrival_list.append(inf)  # sentinel: index == total_arrivals
        arrival_index = 0
        queue0 = queues[0]

        if per_worker and round_robin and inline_arrivals:
            # Specialized loop for the default configuration (per-worker
            # queues, round-robin balancing, built-in monitor): the
            # constant-flag branches are resolved here once, and the
            # incremental queue-length list is not maintained at all —
            # only a non-round-robin balancer ever reads it.  Same event
            # semantics and float order as the general loop below.
            while arrival_index < total_arrivals or completions:
                next_arrival = arrival_list[arrival_index]
                next_done = completions[0][0] if completions else inf

                if next_arrival <= next_done:
                    now = next_arrival
                    query = arrival_index
                    arrival_index += 1
                    mon_append(now)
                    cutoff = now - window_ms
                    while mon_arrivals[0] < cutoff:
                        mon_popleft()
                    worker = rr_next
                    rr_next += 1
                    if rr_next == num_workers:
                        rr_next = 0
                    queue = queues[worker]
                    queue.append(query)
                    if busy[worker]:
                        continue
                else:
                    now, _seq, worker, model_name, accuracy, served = heappop(
                        completions
                    )
                    count = m_model_counts.get(model_name, 0)
                    for query in served:
                        m_total += 1
                        response_ms = now - arrival_list[query]
                        m_response_sum += response_ms
                        if track_responses:
                            m_responses.append(response_ms)
                        count += 1
                        if now <= deadline_list[query]:
                            m_satisfied += 1
                            m_accuracy_sum += accuracy
                            if attributing:
                                attributor.observe_completion(
                                    query, worker, model_name,
                                    response_ms, True, t_ms=now,
                                )
                        elif attributing:
                            attributor.observe_completion(
                                query, worker, model_name,
                                response_ms, False, t_ms=now,
                            )
                    m_model_counts[model_name] = count
                    busy[worker] = False
                    queue = queues[worker]
                    if not queue:
                        continue

                # ---- inlined dispatch (specialized) ------------------
                queue_len = len(queue)
                if inline_anticipated:
                    cutoff = now - window_ms
                    while mon_arrivals and mon_arrivals[0] < cutoff:
                        mon_popleft()
                    if not mon_arrivals:
                        anticipated = 0.0
                    else:
                        horizon = now if now < window_ms else window_ms
                        anticipated = (
                            len(mon_arrivals) / horizon * 1000.0
                            if horizon > 0
                            else 0.0
                        )
                else:
                    anticipated = anticipated_load(now)
                action = selects[worker](
                    queue_len,
                    deadline_list[queue[0]] - now,
                    now,
                    anticipated,
                )
                batch = action.batch_size
                if batch > queue_len:
                    batch = queue_len
                if batch < 1:
                    raise SimulationError(
                        f"selector {selectors[worker].name} "
                        f"returned batch {batch}"
                    )
                if action.is_late and drop_late:
                    popleft = queue.popleft
                    while queue:
                        dropped = popleft()
                        m_total += 1
                        m_response_sum += now - arrival_list[dropped]
                        if track_responses:
                            m_responses.append(now - arrival_list[dropped])
                        if attributing:
                            attributor.observe_completion(
                                dropped, worker, "<dropped>",
                                now - arrival_list[dropped], False,
                                t_ms=now, dropped=True,
                            )
                    m_model_counts["<dropped>"] = (
                        m_model_counts.get("<dropped>", 0) + queue_len
                    )
                    continue
                if batch == queue_len:
                    served = list(queue)
                    queue.clear()
                else:
                    popleft = queue.popleft
                    served = [popleft() for _ in range(batch)]
                model_name = action.model
                if cache_latency:
                    memo = exec_memo[worker]
                    exec_ms = memo.get((model_name, batch))
                    if exec_ms is None:
                        exec_ms = (
                            execution_ms(profile_of[model_name], batch)
                            * speed[worker]
                        )
                        memo[(model_name, batch)] = exec_ms
                else:
                    exec_ms = (
                        execution_ms(profile_of[model_name], batch)
                        * speed[worker]
                    )
                m_decisions += 1
                m_batch_sum += batch
                busy[worker] = True
                sequence += 1
                heappush(
                    completions,
                    (
                        now + exec_ms,
                        sequence,
                        worker,
                        model_name,
                        accuracy_of[model_name],
                        served,
                    ),
                )
                if attributing:
                    attributor.observe_decision(
                        worker, model_name, batch, exec_ms
                    )
                    for query in served:
                        attributor.observe_service_start(
                            query, worker, model_name, batch,
                            now - arrival_list[query],
                        )

            metrics = MetricsCollector(track_responses=track_responses)
            metrics.absorb(
                total=m_total,
                satisfied=m_satisfied,
                accuracy_sum=m_accuracy_sum,
                response_sum=m_response_sum,
                responses=m_responses,
                model_counts=m_model_counts,
                decisions=m_decisions,
                batch_sum=m_batch_sum,
            )
            return metrics.finalize()

        while arrival_index < total_arrivals or completions:
            next_arrival = arrival_list[arrival_index]
            next_done = completions[0][0] if completions else inf

            if next_arrival <= next_done:
                now = next_arrival
                query = arrival_index
                arrival_index += 1
                if inline_arrivals:
                    # LoadMonitor.record_arrival: append + window eviction
                    # (the just-appended element bounds the scan).
                    mon_append(now)
                    cutoff = now - window_ms
                    while mon_arrivals[0] < cutoff:
                        mon_popleft()
                else:
                    record_arrival(now)
                if per_worker:
                    if round_robin:
                        worker = rr_next
                        rr_next += 1
                        if rr_next == num_workers:
                            rr_next = 0
                    else:
                        worker = assign(queue_lens)
                    queue = queues[worker]
                    queue.append(query)
                    queue_lens[worker] += 1
                    if busy[worker]:
                        continue
                    qidx = worker
                else:
                    queue0.append(query)
                    queue_lens[0] += 1
                    if not idle_workers:
                        continue
                    worker = idle_workers.pop()
                    queue = queue0
                    qidx = 0
            else:
                now, _seq, worker, model_name, accuracy, served = heappop(
                    completions
                )
                count = m_model_counts.get(model_name, 0)
                for query in served:
                    m_total += 1
                    response_ms = now - arrival_list[query]
                    m_response_sum += response_ms
                    if track_responses:
                        m_responses.append(response_ms)
                    count += 1
                    if now <= deadline_list[query]:
                        m_satisfied += 1
                        m_accuracy_sum += accuracy
                        if attributing:
                            attributor.observe_completion(
                                query, worker, model_name,
                                response_ms, True, t_ms=now,
                            )
                    elif attributing:
                        attributor.observe_completion(
                            query, worker, model_name,
                            response_ms, False, t_ms=now,
                        )
                m_model_counts[model_name] = count
                busy[worker] = False
                if per_worker:
                    queue = queues[worker]
                    if not queue:
                        continue
                    qidx = worker
                else:
                    if not queue0:
                        idle_workers.append(worker)
                        continue
                    queue = queue0
                    qidx = 0

            # ---- inlined dispatch ------------------------------------
            queue_len = len(queue)
            if inline_anticipated:
                # LoadMonitor.anticipated_load_qps == realized_load_qps.
                cutoff = now - window_ms
                while mon_arrivals and mon_arrivals[0] < cutoff:
                    mon_popleft()
                if not mon_arrivals:
                    anticipated = 0.0
                else:
                    horizon = now if now < window_ms else window_ms
                    anticipated = (
                        len(mon_arrivals) / horizon * 1000.0
                        if horizon > 0
                        else 0.0
                    )
            else:
                anticipated = anticipated_load(now)
            action = selects[worker](
                queue_len,
                deadline_list[queue[0]] - now,
                now,
                anticipated,
            )
            batch = action.batch_size
            if batch > queue_len:
                batch = queue_len
            if batch < 1:
                raise SimulationError(
                    f"selector {selectors[worker].name} returned batch {batch}"
                )
            if action.is_late and drop_late:
                # Drop the whole queue and leave the worker idle (see the
                # reference loop for the rationale).
                popleft = queue.popleft
                while queue:
                    dropped = popleft()
                    m_total += 1
                    m_response_sum += now - arrival_list[dropped]
                    if track_responses:
                        m_responses.append(now - arrival_list[dropped])
                    if attributing:
                        attributor.observe_completion(
                            dropped, worker, "<dropped>",
                            now - arrival_list[dropped], False,
                            t_ms=now, dropped=True,
                        )
                m_model_counts["<dropped>"] = (
                    m_model_counts.get("<dropped>", 0) + queue_len
                )
                queue_lens[qidx] = 0
                if not per_worker:
                    idle_workers.append(worker)
                continue
            if batch == queue_len:
                served = list(queue)
                queue.clear()
            else:
                popleft = queue.popleft
                served = [popleft() for _ in range(batch)]
            queue_lens[qidx] = queue_len - batch
            model_name = action.model
            if cache_latency:
                memo = exec_memo[worker]
                exec_ms = memo.get((model_name, batch))
                if exec_ms is None:
                    exec_ms = (
                        execution_ms(profile_of[model_name], batch)
                        * speed[worker]
                    )
                    memo[(model_name, batch)] = exec_ms
            else:
                exec_ms = (
                    execution_ms(profile_of[model_name], batch) * speed[worker]
                )
            m_decisions += 1
            m_batch_sum += batch
            busy[worker] = True
            sequence += 1
            heappush(
                completions,
                (
                    now + exec_ms,
                    sequence,
                    worker,
                    model_name,
                    accuracy_of[model_name],
                    served,
                ),
            )
            if attributing:
                attributor.observe_decision(worker, model_name, batch, exec_ms)
                for query in served:
                    attributor.observe_service_start(
                        query, worker, model_name, batch,
                        now - arrival_list[query],
                    )

        metrics = MetricsCollector(track_responses=track_responses)
        metrics.absorb(
            total=m_total,
            satisfied=m_satisfied,
            accuracy_sum=m_accuracy_sum,
            response_sum=m_response_sum,
            responses=m_responses,
            model_counts=m_model_counts,
            decisions=m_decisions,
            batch_sum=m_batch_sum,
        )
        return metrics.finalize()
