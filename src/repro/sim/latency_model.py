"""Execution latency models (§7.3.1).

The paper's *simulation* assumes inference latency is deterministically the
95th-percentile profile value; its *prototype implementation* observes
stochastic latencies with ~10 ms standard deviation.  Both behaviours are
modelled here so the fidelity experiment (Fig. 7) can compare them:

- :class:`DeterministicLatency` — always the p95 profile value;
- :class:`StochasticLatency` — draws from the model's latency distribution
  (truncated normal around the mean), reproducing the effect the paper
  reports: real executions are usually *shorter* than the planned p95, so
  the implementation achieves slightly higher accuracy and fewer
  violations than the simulation.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.profiles.models import ModelProfile

__all__ = ["LatencyModel", "DeterministicLatency", "StochasticLatency"]


class LatencyModel(abc.ABC):
    """Maps an MS decision to a realized execution latency."""

    #: True when :meth:`execution_ms` is a pure function of
    #: ``(model, batch_size)`` — no randomness, no hidden state.  The
    #: simulator's fast event loop memoizes latencies per ``(model,
    #: batch)`` (scaled per worker speed) only for cacheable models;
    #: stochastic models are called on every dispatch.
    cacheable: bool = False

    @abc.abstractmethod
    def execution_ms(self, model: ModelProfile, batch_size: int) -> float:
        """Realized latency of running ``batch_size`` queries on ``model``."""

    @abc.abstractmethod
    def clone(self, seed: int) -> "LatencyModel":
        """An independent copy (fresh randomness stream) for replications."""


class DeterministicLatency(LatencyModel):
    """The paper's simulation variant: latency == profiled p95."""

    cacheable = True

    def execution_ms(self, model: ModelProfile, batch_size: int) -> float:
        return model.latency_ms(batch_size)

    def clone(self, seed: int) -> "DeterministicLatency":
        del seed
        return DeterministicLatency()


class StochasticLatency(LatencyModel):
    """The paper's implementation variant: latency varies run to run."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def execution_ms(self, model: ModelProfile, batch_size: int) -> float:
        return model.sample_latency_ms(batch_size, self._rng)

    def clone(self, seed: int) -> "StochasticLatency":
        return StochasticLatency(seed)
