"""Query-load monitoring (§3.2.2, §6 "Load Monitor").

RAMSIS and all baselines share one load monitor that tracks query load as a
moving average of central-queue arrivals over a 500 ms window.  For the
constant-load experiments (§7.2) the paper assumes the monitor perfectly
predicts the load to isolate MS&S quality from prediction error;
:class:`OracleLoadMonitor` provides that mode.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.arrivals.traces import LoadTrace
from repro.obs.metrics import MetricsRegistry

__all__ = ["LoadMonitor", "OracleLoadMonitor"]


class LoadMonitor:
    """Moving-average arrival-rate estimator.

    ``record_arrival`` is called for every central-queue arrival;
    ``anticipated_load_qps(now)`` returns the average rate over the trailing
    ``window_ms`` (500 ms in the paper).  ``realized_load_qps`` always
    reports the trailing moving average, so subclasses that *anticipate*
    differently (the oracle) can be compared against what actually arrived
    — :meth:`attach_registry` publishes both as gauge time series.
    """

    def __init__(self, window_ms: float = 500.0) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self._window_ms = window_ms
        self._arrivals: Deque[float] = deque()
        self._c_arrivals = None
        self._g_anticipated = None
        self._g_realized = None

    @property
    def window_ms(self) -> float:
        """Averaging window length."""
        return self._window_ms

    def attach_registry(self, registry: Optional[MetricsRegistry]) -> None:
        """Publish arrivals and anticipated/realized load into ``registry``
        (pass ``None`` to detach)."""
        if registry is None:
            self._c_arrivals = self._g_anticipated = self._g_realized = None
            return
        self._c_arrivals = registry.counter(
            "monitor_arrivals_total", help="arrivals seen by the load monitor"
        )
        self._g_anticipated = registry.gauge(
            "monitor_anticipated_load_qps",
            help="load the monitor reports to selectors",
        )
        self._g_realized = registry.gauge(
            "monitor_realized_load_qps",
            help="trailing moving-average arrival rate",
        )

    def record_arrival(self, t_ms: float) -> None:
        """Note one arrival at time ``t_ms`` (non-decreasing)."""
        arrivals = self._arrivals
        arrivals.append(t_ms)
        cutoff = t_ms - self._window_ms
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        if self._c_arrivals is not None:
            self._c_arrivals.inc()
            self._g_realized.set(self.realized_load_qps(t_ms), t_ms=t_ms)
            self._g_anticipated.set(self.anticipated_load_qps(t_ms), t_ms=t_ms)

    def anticipated_load_qps(self, now_ms: float) -> float:
        """Estimated query load at ``now_ms`` in queries per second.

        Before a full window has elapsed, the denominator is the elapsed
        time so early estimates are not biased low.
        """
        return self.realized_load_qps(now_ms)

    def realized_load_qps(self, now_ms: float) -> float:
        """Trailing moving-average arrival rate at ``now_ms`` (QPS)."""
        arrivals = self._arrivals
        cutoff = now_ms - self._window_ms
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        if not arrivals:
            return 0.0
        horizon = min(now_ms, self._window_ms)
        if horizon <= 0:
            return 0.0
        return len(arrivals) / horizon * 1000.0

    def _evict(self, now_ms: float) -> None:
        cutoff = now_ms - self._window_ms
        arrivals = self._arrivals
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()

    def hot_state(self) -> "Tuple[Deque[float], float]":
        """``(arrivals deque, window_ms)`` for the simulator's fast loop.

        The fast event loop inlines :meth:`record_arrival` /
        :meth:`realized_load_qps` for the built-in monitors (no registry
        attached); this accessor keeps that coupling explicit instead of
        reaching into private attributes.
        """
        return self._arrivals, self._window_ms

    def reset(self) -> None:
        """Forget all recorded arrivals.

        Attached gauges are cleared too — a monitor reused across runs
        would otherwise export the previous run's load series — and
        republished at zero so the post-reset state is visible rather
        than NaN.  The arrivals counter stays monotonic, per the usual
        counter semantics.
        """
        self._arrivals.clear()
        for gauge in (self._g_anticipated, self._g_realized):
            if gauge is not None:
                gauge.clear()
                gauge.set(0.0)


class OracleLoadMonitor(LoadMonitor):
    """A monitor that reads the true load off the trace (§7.2's setting)."""

    def __init__(self, trace: LoadTrace) -> None:
        super().__init__(window_ms=500.0)
        self._trace = trace

    def anticipated_load_qps(self, now_ms: float) -> float:
        clamped = min(max(now_ms, 0.0), self._trace.duration_ms - 1e-9)
        return self._trace.load_at(clamped)
