"""Query-load monitoring (§3.2.2, §6 "Load Monitor").

RAMSIS and all baselines share one load monitor that tracks query load as a
moving average of central-queue arrivals over a 500 ms window.  For the
constant-load experiments (§7.2) the paper assumes the monitor perfectly
predicts the load to isolate MS&S quality from prediction error;
:class:`OracleLoadMonitor` provides that mode.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.arrivals.traces import LoadTrace

__all__ = ["LoadMonitor", "OracleLoadMonitor"]


class LoadMonitor:
    """Moving-average arrival-rate estimator.

    ``record_arrival`` is called for every central-queue arrival;
    ``anticipated_load_qps(now)`` returns the average rate over the trailing
    ``window_ms`` (500 ms in the paper).
    """

    def __init__(self, window_ms: float = 500.0) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self._window_ms = window_ms
        self._arrivals: Deque[float] = deque()

    @property
    def window_ms(self) -> float:
        """Averaging window length."""
        return self._window_ms

    def record_arrival(self, t_ms: float) -> None:
        """Note one arrival at time ``t_ms`` (non-decreasing)."""
        self._arrivals.append(t_ms)
        self._evict(t_ms)

    def anticipated_load_qps(self, now_ms: float) -> float:
        """Estimated query load at ``now_ms`` in queries per second.

        Before a full window has elapsed, the denominator is the elapsed
        time so early estimates are not biased low.
        """
        self._evict(now_ms)
        if not self._arrivals:
            return 0.0
        horizon = min(now_ms, self._window_ms)
        if horizon <= 0:
            return 0.0
        return len(self._arrivals) / horizon * 1000.0

    def _evict(self, now_ms: float) -> None:
        cutoff = now_ms - self._window_ms
        arrivals = self._arrivals
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()

    def reset(self) -> None:
        """Forget all recorded arrivals."""
        self._arrivals.clear()


class OracleLoadMonitor(LoadMonitor):
    """A monitor that reads the true load off the trace (§7.2's setting)."""

    def __init__(self, trace: LoadTrace) -> None:
        super().__init__(window_ms=500.0)
        self._trace = trace

    def anticipated_load_qps(self, now_ms: float) -> float:
        clamped = min(max(now_ms, 0.0), self._trace.duration_ms - 1e-9)
        return self._trace.load_at(clamped)
