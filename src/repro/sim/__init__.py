"""Discrete-event inference-serving simulator (§6 "Simulation Framework").

The paper's own evaluation infrastructure is a ~1K-line Python simulator
that replays a trace of arrival times, tracks central/worker queue states
and worker busy periods, and applies profiled inference latencies to MS&S
decisions.  This subpackage is the equivalent component:

- :mod:`repro.sim.queries` — queries and their deadlines;
- :mod:`repro.sim.latency_model` — deterministic-p95 execution (the
  paper's "simulation" variant) and stochastic execution (its
  "implementation" variant, §7.3.1);
- :mod:`repro.sim.monitor` — the 500 ms moving-average load monitor (§6);
- :mod:`repro.sim.metrics` — Accuracy Per Satisfied Query and Latency SLO
  Violation Rate (§7 "Performance Metrics");
- :mod:`repro.sim.simulator` — the event loop, supporting both the
  per-worker-queue discipline RAMSIS uses and the central-queue
  eager-worker discipline of the baselines.
"""

from repro.sim.latency_model import (
    DeterministicLatency,
    LatencyModel,
    StochasticLatency,
)
from repro.sim.metrics import SimulationMetrics
from repro.sim.monitor import LoadMonitor, OracleLoadMonitor
from repro.sim.multislo import MultiSLOReport, SLOClass, partition_workers, run_multi_slo
from repro.sim.queries import Query
from repro.sim.simulator import QueueDiscipline, Simulation, SimulationConfig

__all__ = [
    "Query",
    "SLOClass",
    "MultiSLOReport",
    "partition_workers",
    "run_multi_slo",
    "LatencyModel",
    "DeterministicLatency",
    "StochasticLatency",
    "LoadMonitor",
    "OracleLoadMonitor",
    "SimulationMetrics",
    "QueueDiscipline",
    "Simulation",
    "SimulationConfig",
]
