"""Online performance metrics (§7 "Performance Metrics").

The paper compares MS&S schemes on:

- **Latency SLO Violation Rate** — the fraction of all serviced queries
  whose latency deadline is missed;
- **Accuracy Per Satisfied Query** — the average profiled accuracy over all
  satisfied queries, given each query's model-selection decision.

:class:`MetricsCollector` accumulates these online (O(1) per completion);
:class:`SimulationMetrics` is the frozen result with the derived statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro._util import percentile
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsCollector", "SimulationMetrics"]


@dataclass(frozen=True)
class SimulationMetrics:
    """Aggregate outcome of one simulated (or executed) serving run."""

    total_queries: int
    satisfied_queries: int
    violation_rate: float
    accuracy_per_satisfied_query: float
    mean_response_ms: float
    p50_response_ms: float
    p99_response_ms: float
    mean_batch_size: float
    decisions: int
    model_query_counts: Mapping[str, int]

    @property
    def satisfied_fraction(self) -> float:
        """1 - violation rate."""
        return 1.0 - self.violation_rate

    def model_share(self) -> Dict[str, float]:
        """Fraction of queries served by each model."""
        if self.total_queries == 0:
            return {}
        return {
            name: count / self.total_queries
            for name, count in sorted(self.model_query_counts.items())
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"queries={self.total_queries} "
            f"violations={self.violation_rate * 100:.3f}% "
            f"accuracy={self.accuracy_per_satisfied_query * 100:.2f}% "
            f"p99={self.p99_response_ms:.1f}ms "
            f"mean_batch={self.mean_batch_size:.2f}"
        )


class MetricsCollector:
    """Accumulates per-query completions into :class:`SimulationMetrics`.

    With a :class:`~repro.obs.metrics.MetricsRegistry` attached, every
    recorded decision/completion is also published as time-series metrics
    (per-model dispatch counters, response-latency and batch-size
    histograms, violation counts) without changing the frozen result.
    """

    def __init__(
        self,
        track_responses: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._track_responses = track_responses
        self._total = 0
        self._satisfied = 0
        self._accuracy_sum = 0.0
        self._response_sum = 0.0
        self._responses: List[float] = []
        self._model_counts: Counter = Counter()
        self._decisions = 0
        self._batch_sum = 0
        self._registry = registry
        if registry is not None:
            self._h_response = registry.histogram(
                "sim_response_ms", help="per-query response latency"
            )
            self._h_batch = registry.histogram(
                "sim_batch_size",
                help="served batch size per MS&S decision",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            )
            self._c_completions = registry.counter(
                "sim_completions_total", help="queries completed"
            )
            self._c_violations = registry.counter(
                "sim_violations_total", help="queries that missed the SLO"
            )
            self._dispatch_counters: Dict[str, object] = {}
            self._query_counters: Dict[str, object] = {}

    def record_decision(
        self, batch_size: int, model_name: Optional[str] = None
    ) -> None:
        """Note one MS&S decision serving ``batch_size`` queries."""
        self._decisions += 1
        self._batch_sum += batch_size
        registry = self._registry
        if registry is not None:
            self._h_batch.observe(batch_size)
            if model_name is not None:
                counter = self._dispatch_counters.get(model_name)
                if counter is None:
                    counter = registry.counter(
                        "sim_dispatch_total",
                        help="MS&S decisions per model",
                        labels={"model": model_name},
                    )
                    self._dispatch_counters[model_name] = counter
                counter.inc()

    def record_completion(
        self,
        model_name: str,
        model_accuracy: float,
        response_ms: float,
        satisfied: bool,
    ) -> None:
        """Note one query's completion."""
        self._total += 1
        self._response_sum += response_ms
        if self._track_responses:
            self._responses.append(response_ms)
        self._model_counts[model_name] += 1
        if satisfied:
            self._satisfied += 1
            self._accuracy_sum += model_accuracy
        registry = self._registry
        if registry is not None:
            self._h_response.observe(response_ms)
            self._c_completions.inc()
            if not satisfied:
                self._c_violations.inc()
            counter = self._query_counters.get(model_name)
            if counter is None:
                counter = registry.counter(
                    "sim_queries_total",
                    help="completed queries per serving model",
                    labels={"model": model_name},
                )
                self._query_counters[model_name] = counter
            counter.inc()

    def absorb(
        self,
        *,
        total: int,
        satisfied: int,
        accuracy_sum: float,
        response_sum: float,
        responses: List[float],
        model_counts: Mapping[str, int],
        decisions: int,
        batch_sum: int,
    ) -> None:
        """Bulk-load accumulators gathered outside the collector.

        The simulator's fast event loop accumulates into local variables
        (skipping per-completion method calls) and hands the totals over
        here, so :meth:`finalize` stays the single source of the derived
        statistics.  The sums must have been accumulated in completion
        order with the same operations :meth:`record_completion` performs
        — then the finalized metrics are float-identical to the
        per-completion path.  Only meaningful without a registry attached
        (the fast path never runs with one).
        """
        self._total += total
        self._satisfied += satisfied
        self._accuracy_sum += accuracy_sum
        self._response_sum += response_sum
        if self._track_responses:
            self._responses.extend(responses)
        self._model_counts.update(model_counts)
        self._decisions += decisions
        self._batch_sum += batch_sum

    @property
    def total(self) -> int:
        """Completions recorded so far."""
        return self._total

    def finalize(self) -> SimulationMetrics:
        """Freeze the accumulated statistics."""
        total = self._total
        satisfied = self._satisfied
        violation = 0.0 if total == 0 else 1.0 - satisfied / total
        accuracy = 0.0 if satisfied == 0 else self._accuracy_sum / satisfied
        mean_resp = 0.0 if total == 0 else self._response_sum / total
        if self._track_responses and self._responses:
            # Pre-sort once: percentile() sorts internally, and sorting an
            # already-sorted list is a linear scan, so the second call is
            # effectively free (result unchanged).
            ordered = sorted(self._responses)
            p50 = percentile(ordered, 50.0)
            p99 = percentile(ordered, 99.0)
        else:
            p50 = p99 = mean_resp
        mean_batch = 0.0 if self._decisions == 0 else self._batch_sum / self._decisions
        return SimulationMetrics(
            total_queries=total,
            satisfied_queries=satisfied,
            violation_rate=violation,
            accuracy_per_satisfied_query=accuracy,
            mean_response_ms=mean_resp,
            p50_response_ms=p50,
            p99_response_ms=p99,
            mean_batch_size=mean_batch,
            decisions=self._decisions,
            model_query_counts=dict(self._model_counts),
        )
