"""Inference queries.

A query arrives at the central queue at ``arrival_ms`` and must be answered
by ``deadline_ms = arrival_ms + SLO`` (§3.2.1).  Queries are compared by
deadline so priority structures serve earliest-deadline-first; with a single
SLO per application (the paper's setting, Appendix G) this coincides with
FIFO order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Query"]


@dataclass(frozen=True, order=True)
class Query:
    """One inference request.

    Ordered by ``(deadline_ms, query_id)`` so heaps and sorts are
    deterministic.
    """

    deadline_ms: float
    query_id: int
    arrival_ms: float = field(compare=False)

    @staticmethod
    def create(query_id: int, arrival_ms: float, slo_ms: float) -> "Query":
        """Assign the §3.2.1 deadline: arrival time plus the latency SLO."""
        return Query(
            deadline_ms=arrival_ms + slo_ms,
            query_id=query_id,
            arrival_ms=arrival_ms,
        )

    def slack_at(self, now_ms: float) -> float:
        """Remaining time before the deadline (negative when missed)."""
        return self.deadline_ms - now_ms
