"""Command-line interface, mirroring the paper artifact's scripts (§A).

The artifact exposes ``RAMSIS_gen.py``, ``MS_gen.py``, ``run_sim.py`` and
``plot.py``; this CLI maps them onto subcommands of one entry point:

=================  ====================================================
artifact script    ``ramsis`` subcommand
=================  ====================================================
RAMSIS_gen.py      ``ramsis gen --task image --slo 150 --workers 4 ...``
MS_gen.py          ``ramsis ms-gen --task image --slo 150 --workers 4``
run_sim.py         ``ramsis simulate --m RAMSIS --trace real ...``
plot.py            ``ramsis report --trace real ...``
(trace file)       ``ramsis synth-trace --out twitter.txt``
(model profiles)   ``ramsis zoo --task image``
(observability)    ``ramsis trace --m RAMSIS --load 40 --out-dir obs``
(live audit)       ``ramsis audit --load 40 --workers 2 --out-dir audit``
(run reports)      ``ramsis report --run-dir run0 [--html]``
(bench history)    ``ramsis bench-history --check``
(tail attribution) ``ramsis explain --run-dir run0 [--json]``
(live view)        ``ramsis top --run-dir run0 [--once]``
=================  ====================================================

Results are written as JSON under ``--results-dir`` with the artifact's
naming convention ``TASK_METHOD_TRACE_SLO[_LOAD].json``.

Stdout carries only the human-facing result tables; progress messages go
through :mod:`repro.obs.log` (stderr) and are controlled by ``-v``/``-q``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.arrivals.traces import LoadTrace, synthesize_twitter_trace
from repro.experiments.reporting import format_table, render_comparison
from repro.experiments.runner import MethodPoint
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import TaskSpec, image_task, text_task
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger

__all__ = ["main", "build_parser"]

log = get_logger("cli")


def _task_by_name(name: str) -> TaskSpec:
    if name == "image":
        return image_task()
    if name == "text":
        return text_task()
    raise SystemExit(f"unknown task {name!r} (expected 'image' or 'text')")


def _scale_by_name(name: str) -> ExperimentScale:
    presets = {
        "smoke": ExperimentScale.smoke,
        "default": ExperimentScale.default,
        "paper": ExperimentScale.paper,
    }
    if name not in presets:
        raise SystemExit(f"unknown scale {name!r} (expected {sorted(presets)})")
    return presets[name]()


def _result_path(
    results_dir: Path,
    task: str,
    method: str,
    trace_kind: str,
    slo: float,
    load: Optional[float],
) -> Path:
    parts = [task, method, trace_kind, f"{slo:g}"]
    if load is not None:
        parts.append(f"{load:g}")
    return results_dir / ("_".join(parts) + ".json")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cache_from_args(args: argparse.Namespace):
    """A :class:`PolicyCache` honoring ``--cache-dir``/``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    from repro.cache import PolicyCache

    return PolicyCache(directory=args.cache_dir)


def _write_obs_dir(tracer, registry, obs_dir) -> None:
    """Export the run's merged trace + metrics under ``obs_dir``.

    Leaves the directory in the layout ``ramsis report --run-dir``
    consumes (``merged.jsonl``, ``trace.json``, ``metrics.prom``,
    ``metrics.json``, plus any per-batch worker shards).
    """
    from repro.obs.aggregate import MergedRun, write_merged_artifacts

    merged = MergedRun(tracer=tracer, registry=registry)
    for path in write_merged_artifacts(merged, obs_dir).values():
        log.info("wrote %s", path)


def cmd_gen(args: argparse.Namespace) -> int:
    """Generate RAMSIS policies (artifact: RAMSIS_gen.py).

    One policy per ``--loads`` entry (default: just ``--load``); grid cells
    fan out across ``--jobs`` processes and resolve through the persistent
    policy cache unless ``--no-cache``.
    """
    from repro.core.config import WorkerMDPConfig
    from repro.core.generator import PolicyGenerator

    task = _task_by_name(args.task)
    slo = args.slo if args.slo is not None else task.slos_ms[0]
    loads = [float(q) for q in (args.loads or [args.load])]
    if getattr(args, "solver", "auto") == "stacked" and (
        args.jobs is not None and args.jobs > 1
    ):
        raise SystemExit(
            "--solver stacked solves the whole load grid in-process as one "
            "batched tensor program; drop --jobs, or use --solver auto to "
            "let grid size pick the backend"
        )
    config = WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=slo,
        load_qps=max(loads),
        num_workers=args.workers,
        fld_resolution=args.fld_resolution,
    )
    obs_dir = getattr(args, "obs_dir", None)
    tracer = registry = None
    if obs_dir is not None:
        from repro.obs import MetricsRegistry, RecordingTracer

        tracer, registry = RecordingTracer(), MetricsRegistry()
    generator = PolicyGenerator(
        config,
        cache=_cache_from_args(args),
        tracer=tracer,
        registry=registry,
        run_dir=obs_dir,
        solver=getattr(args, "solver", "auto"),
    )
    results = generator.generate_many(loads, max_workers=args.jobs)
    if obs_dir is not None:
        _write_obs_dir(tracer, registry, obs_dir)
    out_dir = Path(args.out) / f"RAMSIS_{args.workers}_{slo:g}"
    out_dir.mkdir(parents=True, exist_ok=True)
    for load, result in zip(loads, results):
        out_file = out_dir / f"{load:g}.json"
        result.policy.save(out_file)
        g = result.guarantees
        log.info("policy written to %s", out_file)
        print(
            f"load {load:g} QPS: states covered: "
            f"{len(result.policy.states())}, "
            f"value iterations: {result.iterations}, "
            f"runtime: {result.runtime_s:.2f}s"
            + (" (cached)" if result.from_cache else "")
            + f"\nexpected accuracy: {g.expected_accuracy * 100:.2f}%, "
            f"expected SLO violation rate: "
            f"{g.expected_violation_rate * 100:.3f}%"
        )
    log.info("script complete!")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or maintain the persistent policy cache."""
    from repro.cache import PolicyCache

    cache = PolicyCache(directory=args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(
            f"cache directory: {stats['directory']}\n"
            f"artifacts: {stats['artifacts']}\n"
            f"total size: {stats['total_bytes']} bytes"
        )
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} artifact(s) from {cache.directory}")
        return 0
    if args.action == "verify":
        outcome = cache.verify()
        print(
            f"verified {len(outcome['ok']) + len(outcome['corrupt'])} "
            f"artifact(s): {len(outcome['ok'])} ok, "
            f"{len(outcome['corrupt'])} corrupt"
        )
        for path in outcome["corrupt"]:
            print(f"  corrupt: {path}")
        return 0 if not outcome["corrupt"] else 1
    raise SystemExit(f"unknown cache action {args.action!r}")


def cmd_ms_gen(args: argparse.Namespace) -> int:
    """Profile ModelSwitching response latencies (artifact: MS_gen.py)."""
    from repro.selectors import profile_response_latency

    task = _task_by_name(args.task)
    slo = args.slo if args.slo is not None else task.slos_ms[0]
    scale = _scale_by_name(args.scale)
    peak = args.load if args.load else 400.0
    grid = [peak * (i + 1) / scale.ms_profile_grid_points
            for i in range(scale.ms_profile_grid_points)]
    table = profile_response_latency(
        task.model_set,
        loads_qps=grid,
        num_workers=args.workers,
        slo_ms=slo,
        duration_ms=scale.ms_profile_duration_s * 1000.0,
    )
    out_dir = Path(args.out) / f"MS_{args.workers}_{slo:g}"
    out_dir.mkdir(parents=True, exist_ok=True)
    out_file = out_dir / "p99_table.json"
    out_file.write_text(
        json.dumps(
            {
                "loads_qps": list(table.loads_qps),
                "p99_ms": {k: list(v) for k, v in table.p99_ms.items()},
            },
            indent=1,
        )
    )
    log.info("response-latency table written to %s", out_file)
    log.info("script complete!")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run one method on a workload (artifact: run_sim.py).

    The worker sweep (``--trace real``) / load sweep (``--trace constant``)
    cells are independent, so ``--jobs N`` fans them out across processes
    through :mod:`repro.experiments.sweep` — results (and the JSON written
    under ``--results-dir``) are identical to a serial run.
    """
    from repro.experiments.sweep import SweepCell, run_sweep

    task = _task_by_name(args.task)
    scale = _scale_by_name(args.scale)
    slo = args.slo if args.slo is not None else task.slos_ms[0]
    results_dir = Path(args.results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)

    cells: List[SweepCell] = []
    if args.trace == "real":
        from repro.experiments.fig5 import production_trace

        trace = production_trace(scale)
        workers_sweep = (
            [args.workers] if args.workers else list(scale.worker_counts)
        )
        for workers in workers_sweep:
            cells.append(
                SweepCell(
                    method=args.m,
                    task=task,
                    slo_ms=slo,
                    num_workers=workers,
                    trace=trace,
                    seed=args.seed,
                )
            )
    else:
        loads = [args.load] if args.load else list(scale.constant_loads_qps)
        workers = args.workers or (
            scale.constant_workers_image
            if task.name == "image"
            else scale.constant_workers_text
        )
        for load in loads:
            const = LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"const-{load:g}"
            )
            cells.append(
                SweepCell(
                    method=args.m,
                    task=task,
                    slo_ms=slo,
                    num_workers=workers,
                    trace=const,
                    seed=args.seed,
                    oracle_load=True,
                )
            )

    obs_dir = getattr(args, "obs_dir", None)
    tracer = registry = None
    if obs_dir is not None:
        from repro.obs import MetricsRegistry, RecordingTracer

        tracer, registry = RecordingTracer(), MetricsRegistry()
    points = run_sweep(
        cells,
        scale,
        jobs=args.jobs,
        cache=_cache_from_args(args),
        tracer=tracer,
        registry=registry,
        run_dir=obs_dir,
    )
    if obs_dir is not None:
        _write_obs_dir(tracer, registry, obs_dir)
    for point in points:
        where = (
            f"workers={point.num_workers}"
            if args.trace == "real"
            else f"load={point.load_qps:g}"
        )
        print(
            f"{args.m} {where}: acc={point.accuracy * 100:.2f}% "
            f"viol={point.violation_rate * 100:.3f}%"
        )

    for point in points:
        path = _result_path(
            results_dir, task.name, args.m, args.trace, slo, point.load_qps
        )
        payload = {
            "task": point.task,
            "method": point.method,
            "slo_ms": point.slo_ms,
            "num_workers": point.num_workers,
            "load_qps": point.load_qps,
            "accuracy": point.accuracy,
            "violation_rate": point.violation_rate,
            "queries": point.queries,
        }
        existing = []
        if path.exists():
            existing = json.loads(path.read_text())
            existing = [e for e in existing if e["num_workers"] != point.num_workers]
        existing.append(payload)
        path.write_text(json.dumps(existing, indent=1))
        log.debug("result written to %s", path)
    log.info("script complete!")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Summarize stored results (artifact: plot.py).

    With ``--run-dir`` the report instead consumes one observability run
    directory (worker shards, merged trace/metrics, audit report) and
    emits a single text or HTML summary — printed, and written alongside
    the artifacts (or at ``--out``).
    """
    if getattr(args, "run_dir", None) is not None:
        from repro.obs.report import render_run_report, write_run_report

        fmt = "html" if args.html else "text"
        try:
            rendered = render_run_report(args.run_dir, fmt=fmt)
        except FileNotFoundError as exc:
            print(str(exc))
            return 1
        out_path = write_run_report(args.run_dir, out_path=args.out, fmt=fmt)
        if fmt == "text":
            print(rendered, end="")
        log.info("run report written to %s", out_path)
        return 0

    results_dir = Path(args.results_dir)
    points: List[MethodPoint] = []
    pattern = f"{args.task}_*_{args.trace}_*.json" if args.task else "*.json"
    for path in sorted(results_dir.glob(pattern)):
        for raw in json.loads(path.read_text()):
            points.append(
                MethodPoint(
                    task=raw["task"],
                    method=raw["method"],
                    slo_ms=raw["slo_ms"],
                    num_workers=raw["num_workers"],
                    load_qps=raw.get("load_qps"),
                    accuracy=raw["accuracy"],
                    violation_rate=raw["violation_rate"],
                    queries=raw["queries"],
                )
            )
    if not points:
        print(f"no results found in {results_dir}")
        return 1
    rows = [
        (
            p.task,
            p.method,
            f"{p.slo_ms:g}",
            p.num_workers,
            "-" if p.load_qps is None else f"{p.load_qps:g}",
            f"{p.accuracy * 100:.2f}%",
            f"{p.violation_rate * 100:.3f}%",
        )
        for p in sorted(points, key=lambda p: (p.task, p.method, p.num_workers))
    ]
    print(
        format_table(
            ["task", "method", "SLO", "workers", "load", "accuracy", "violation"],
            rows,
        )
    )
    print()
    print(render_comparison(points, ["MS", "JF"]))
    return 0


def cmd_bench_history(args: argparse.Namespace) -> int:
    """Track benchmark results over time and gate on regressions.

    Appends every ``<out-dir>/*.json`` benchmark result to the history
    log (one JSON line per benchmark per invocation), then — with
    ``--check`` — compares each benchmark's latest entry against its
    previous one and exits non-zero when a tracked metric regressed
    beyond ``--tolerance``.  ``--no-append`` checks the existing history
    without recording a new generation.
    """
    from repro.obs.report import append_bench_history, check_bench_history

    out_dir = Path(args.out_dir)
    history = (
        Path(args.history) if args.history else out_dir / "history.jsonl"
    )
    if not args.no_append:
        entries = append_bench_history(out_dir, history_path=history)
        print(f"recorded {len(entries)} benchmark result(s) in {history}")
        for entry in entries:
            log.debug("recorded %s", entry["bench"])
    if not args.check:
        return 0
    regressions = check_bench_history(history, tolerance=args.tolerance)
    if not regressions:
        print(
            f"no regressions beyond {args.tolerance * 100:g}% tolerance"
        )
        return 0
    print(f"{len(regressions)} regression(s) beyond {args.tolerance * 100:g}%:")
    for regression in regressions:
        print(f"  {regression.describe()}")
    return 1


def _explain_attributor(run_dir: Path, slo: Optional[float]):
    """The run's attribution, preferring the merged artifact's tracer fold.

    Returns ``(snapshot_dict, attributor_or_None)``: an existing
    ``attribution.json`` is authoritative (it was folded from the merged
    tracer in serial cell order); otherwise the event log is refolded.
    """
    direct = run_dir / "attribution.json"
    if direct.is_file():
        return json.loads(direct.read_text()), None
    batches = sorted(run_dir.glob("batch-*/attribution.json"))
    if batches:
        return json.loads(batches[-1].read_text()), None
    from repro.obs.attribution import attribution_from_jsonl

    for name in ("merged.jsonl", "events.jsonl"):
        candidates = [run_dir / name] + sorted(run_dir.glob(f"batch-*/{name}"))
        for path in candidates:
            if path.is_file():
                attributor = attribution_from_jsonl(path, slo_ms=slo)
                return attributor.to_json_dict(), attributor
    return None, None


def cmd_explain(args: argparse.Namespace) -> int:
    """Attribute a run's tail latency (phases, blame, burn, exemplars).

    Reads a run directory's ``attribution.json`` (written by traced
    sweeps and ``write_merged_artifacts``) or, absent that, folds the
    run's ``merged.jsonl``/``events.jsonl`` event log through the
    attribution engine.  Prints the per-(model, worker) phase table with
    model-choice blame, the SLO burn-rate windows, and the retained tail
    exemplars — or the full JSON snapshot with ``--json``.
    """
    run_dir = Path(args.run_dir)
    if not run_dir.is_dir():
        print(f"run directory not found: {run_dir}")
        return 1
    snapshot, attributor = _explain_attributor(run_dir, args.slo)
    if snapshot is None:
        print(
            f"no attribution source in {run_dir} "
            "(expected attribution.json, merged.jsonl, or events.jsonl)"
        )
        return 1
    if args.json:
        rendered = json.dumps(snapshot, indent=1, sort_keys=True)
    elif attributor is not None:
        rendered = attributor.render_text(limit=args.top)
    else:
        rendered = _render_attribution_snapshot(snapshot, limit=args.top)
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(rendered + "\n")
        log.info("attribution written to %s", out_path)
    print(rendered)
    return 0


def _render_attribution_snapshot(snapshot: dict, limit: Optional[int]) -> str:
    """Text tables from a stored attribution.json (no live attributor)."""
    rows = sorted(snapshot.get("rows", []), key=lambda r: -r["response_ms"])
    if limit is not None:
        rows = rows[:limit]
    body = []
    for r in rows:
        n = max(r["queries"], 1)
        body.append(
            [
                r["slo"],
                r["model"],
                str(r["worker"]),
                str(r["queries"]),
                f"{r['queue_wait_ms'] / n:.2f}",
                f"{r['service_ms'] / n:.2f}",
                f"{r['drop_ms'] / n:.2f}",
                f"{r.get('blame_per_query_ms', 0.0):.2f}",
                f"{r['violations'] / n:.1%}",
                str(r["dropped"]),
            ]
        )
    table = format_table(
        [
            "slo", "model", "worker", "queries", "wait ms", "service ms",
            "drop ms", "blame/q ms", "viol %", "drops",
        ],
        body,
        title="Latency attribution (per-query phase means)",
    )
    lines = [table, "", "SLO burn rate:"]
    for w in snapshot.get("burn", {}).get("windows", []):
        lines.append(
            "  window {:>6}  rate {:.4f}  burn {:.3f}  alerts {}".format(
                w["size"], w["rate"], w["burn"], w["alerts"]
            )
        )
    chains = snapshot.get("exemplars", {}).get("chains", [])
    lines.append("")
    lines.append(f"Tail exemplars ({len(chains)} retained):")
    for chain in chains[:5]:
        lines.append(
            "  q{query} worker {worker} {model}: {response_ms:.1f} ms "
            "(wait {queue_wait_ms:.1f}, service {service_ms:.1f}, "
            "drop {drop_ms:.1f})".format(**chain)
        )
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """Live streaming view of an in-flight (or finished) run directory.

    Polls the run directory's snapshot feeds — ``metrics-<pid>.json`` /
    ``attribution-<pid>.json`` written periodically by the runtime
    controller and by ``run_sweep`` pool workers, plus merged artifacts —
    and redraws one frame per ``--interval``.  ``--once`` prints a single
    frame and exits (CI-friendly); interactive mode stops on Ctrl-C.
    """
    import time as _time

    from repro.obs.report import render_top_frame

    run_dir = Path(args.run_dir)
    try:
        frame = render_top_frame(run_dir, limit=args.limit)
    except FileNotFoundError as exc:
        print(str(exc))
        return 1
    if args.once:
        print(frame, end="")
        return 0
    try:
        while True:
            # ANSI clear + home, then the frame: a minimal live TUI.
            sys.stdout.write("\x1b[2J\x1b[H" + frame)
            sys.stdout.flush()
            _time.sleep(args.interval)
            frame = render_top_frame(run_dir, limit=args.limit)
    except KeyboardInterrupt:
        print()
        return 0


def cmd_synth_trace(args: argparse.Namespace) -> int:
    """Synthesize and save the Twitter-shaped trace."""
    trace = synthesize_twitter_trace(
        duration_s=args.duration, seed=args.seed
    )
    trace.save(args.out)
    log.info(
        "trace written to %s: %d intervals, %.0f-%.0f QPS, ~%.0f queries",
        args.out,
        len(trace.qps),
        trace.min_qps,
        trace.peak_qps,
        trace.expected_queries(),
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one scenario with full observability and emit artifacts.

    Produces three files under ``--out-dir``: ``events.jsonl`` (per-query
    lifecycle event log), ``trace.json`` (Chrome ``trace_event`` format,
    loadable in Perfetto or chrome://tracing), and ``metrics.prom``
    (Prometheus text dump), plus a stdout summary that cross-checks the
    trace against the simulator's own metrics.
    """
    from repro.experiments.runner import make_selector
    from repro.obs import MetricsRegistry, RecordingTracer, reconstruct_metrics
    from repro.obs.exporters import (
        write_chrome_trace,
        write_events_jsonl,
        write_prometheus_text,
    )
    from repro.sim.monitor import OracleLoadMonitor
    from repro.sim.simulator import Simulation, SimulationConfig

    task = _task_by_name(args.task)
    scale = _scale_by_name(args.scale)
    slo = args.slo if args.slo is not None else task.slos_ms[0]
    trace = LoadTrace.constant(
        args.load, args.duration * 1000.0, name=f"const-{args.load:g}"
    )
    selector = make_selector(
        args.m,
        task,
        slo,
        args.workers,
        trace,
        scale,
        pinned_load_qps=args.load if args.m == "RAMSIS" else None,
    )
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=slo,
            num_workers=args.workers,
            max_batch_size=scale.max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=args.seed,
            tracer=tracer,
            registry=registry,
        )
    )
    log.info(
        "tracing %s: load=%g QPS, %d workers, SLO %g ms, %.0f s",
        args.m, args.load, args.workers, slo, args.duration,
    )
    metrics = sim.run(selector, trace)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    jsonl_path = write_events_jsonl(tracer, out_dir / "events.jsonl")
    chrome_path = write_chrome_trace(
        tracer, out_dir / "trace.json", process_name=f"ramsis-{args.m}"
    )
    prom_path = write_prometheus_text(registry, out_dir / "metrics.prom")

    summary = reconstruct_metrics(tracer)
    consistent = (
        summary.violation_rate == metrics.violation_rate
        and summary.mean_batch_size == metrics.mean_batch_size
        and summary.accuracy_per_satisfied_query
        == metrics.accuracy_per_satisfied_query
    )
    print(
        format_table(
            ["metric", "simulator", "from trace"],
            [
                ("queries", metrics.total_queries, summary.total_queries),
                (
                    "violation rate",
                    f"{metrics.violation_rate * 100:.3f}%",
                    f"{summary.violation_rate * 100:.3f}%",
                ),
                (
                    "mean batch size",
                    f"{metrics.mean_batch_size:.3f}",
                    f"{summary.mean_batch_size:.3f}",
                ),
                ("decisions", metrics.decisions, summary.decisions),
                (
                    "accuracy",
                    f"{metrics.accuracy_per_satisfied_query * 100:.2f}%",
                    f"{summary.accuracy_per_satisfied_query * 100:.2f}%",
                ),
                ("p99 response (ms)", f"{metrics.p99_response_ms:.1f}", "-"),
            ],
            title=f"{args.m} on {task.name}, trace vs. simulator"
            + (" (consistent)" if consistent else " (MISMATCH!)"),
        )
    )
    for path in (jsonl_path, chrome_path, prom_path):
        log.info("wrote %s", path)
    return 0 if consistent else 1


def cmd_audit(args: argparse.Namespace) -> int:
    """Run a scenario under the live guarantee auditor (§5.1 online).

    Pins the RAMSIS policy for ``--policy-load`` (default: the actual
    ``--load``) and audits the run against that policy's predicted bounds,
    stationary occupancy, and profiled load.  Writes ``audit.json`` (the
    report schema) and ``audit.txt`` (human-readable) under ``--out-dir``
    and prints the text report.  Exit code 0 when the audit is clean, 1 on
    any bound breach, occupancy divergence, or load drift.
    """
    from repro.experiments.runner import run_audited
    from repro.obs import MetricsRegistry, RecordingTracer
    from repro.obs.audit import AuditConfig
    from repro.obs.exporters import write_events_jsonl, write_prometheus_text

    task = _task_by_name(args.task)
    scale = _scale_by_name(args.scale)
    slo = args.slo if args.slo is not None else task.slos_ms[0]
    trace = LoadTrace.constant(
        args.load, args.duration * 1000.0, name=f"const-{args.load:g}"
    )
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    log.info(
        "auditing RAMSIS: load=%g QPS (policy for %g), %d workers, "
        "SLO %g ms, %.0f s",
        args.load, args.policy_load or args.load, args.workers, slo,
        args.duration,
    )
    run = run_audited(
        task,
        slo,
        args.workers,
        trace,
        scale,
        seed=args.seed,
        policy_load_qps=args.policy_load,
        audit_config=AuditConfig(
            window_queries=args.window, confidence=args.confidence
        ),
        tracer=tracer,
        registry=registry,
    )

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    report_text = run.report.render_text()
    (out_dir / "audit.json").write_text(
        json.dumps(run.report.to_json_dict(), indent=1)
    )
    (out_dir / "audit.txt").write_text(report_text + "\n")
    write_events_jsonl(tracer, out_dir / "events.jsonl")
    write_prometheus_text(registry, out_dir / "metrics.prom")
    print(report_text)
    log.info("audit artifacts written to %s", out_dir)
    return 0 if run.report.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a trace on the sharded asyncio runtime.

    Replays a constant or Twitter-shaped trace across ``--shards``
    controller shards of ``--workers`` workers each, with optional
    admission control (``--max-queue-depth`` / ``--min-slack-ms``),
    drop-late semantics, per-shard §5.1 auditors (``--audit``), and a
    ``--run-dir`` holding the per-worker event feeds, live snapshots and
    — merged on exit — the artifacts ``ramsis report`` / ``ramsis
    explain`` / ``ramsis top`` consume.  ``--policy-dir`` loads a saved
    RAMSIS policy set (``ramsis gen --out-dir``); without one, ``--audit``
    pins a RAMSIS policy for the trace load and a plain run uses the
    greedy selector.  Exit code 1 on any audited guarantee breach.
    """
    from repro.runtime import AdmissionControl, ShardedController
    from repro.selectors import GreedyDeadlineSelector, RamsisSelector

    task = _task_by_name(args.task)
    scale = _scale_by_name(args.scale)
    slo = args.slo if args.slo is not None else task.slos_ms[0]
    if args.trace == "twitter":
        # Keep the 30-interval diurnal shape at any duration (a single
        # interval would degenerate in the min/max normalization).
        trace = synthesize_twitter_trace(
            duration_s=args.duration, interval_s=args.duration / 30.0
        )
        if args.load_scale != 1.0:
            trace = trace.scaled(args.load_scale)
    else:
        trace = LoadTrace.constant(
            args.load * args.load_scale,
            args.duration * 1000.0,
            name=f"const-{args.load:g}",
        )

    total_workers = args.shards * args.workers
    factory = lambda shard_index: GreedyDeadlineSelector()  # noqa: E731
    if args.policy_dir is not None:
        from repro.core.policy_set import PolicySet

        policy_set = PolicySet.load(args.policy_dir)
        factory = lambda shard_index: RamsisSelector(policy_set)  # noqa: E731

    auditors = None
    if args.audit:
        from repro.experiments.runner import build_audit_references
        from repro.obs.audit import GuaranteeAuditor

        ref_load = trace.mean_qps
        policy, guarantees, occupancy = build_audit_references(
            task.model_set, slo, ref_load, total_workers, scale
        )
        auditors = [
            GuaranteeAuditor(
                guarantees, policy=policy, expected_occupancy=occupancy
            )
            for _ in range(args.shards)
        ]
        if args.policy_dir is None:
            factory = lambda shard_index: RamsisSelector(policy)  # noqa: E731

    admission = None
    if args.max_queue_depth is not None or args.min_slack_ms is not None:
        admission = AdmissionControl(
            max_queue_depth=args.max_queue_depth,
            min_slack_ms=args.min_slack_ms,
        )

    log.info(
        "serving %s: %d shards x %d workers, SLO %g ms, time scale %g",
        trace.name, args.shards, args.workers, slo, args.time_scale,
    )
    controller = ShardedController(
        task.model_set,
        slo_ms=slo,
        num_shards=args.shards,
        workers_per_shard=args.workers,
        time_scale=args.time_scale,
        seed=args.seed,
        admission=admission,
        drop_late=args.drop_late,
        paced=not args.unpaced,
        run_dir=args.run_dir,
        snapshot_interval_s=args.snapshot_interval,
    )
    report = controller.serve(factory, trace, auditors=auditors)

    m = report.metrics
    print(
        f"{trace.name}: {report.num_shards} shards x "
        f"{report.workers_per_shard} workers, {report.submitted} queries "
        f"in {report.wall_seconds:.2f}s wall ({report.qps:,.0f} q/s)"
    )
    print(
        f"  served={report.served} rejected={report.rejected} "
        f"dropped={report.dropped}"
    )
    print(f"  {m.summary()}")
    if not args.unpaced:
        print(f"  p99 added latency: {report.p99_added_latency_ms:.3f} ms wall")

    if args.run_dir is not None:
        from repro.obs.aggregate import merge_run_dir, write_merged_artifacts

        merged = merge_run_dir(args.run_dir)
        for path in write_merged_artifacts(merged, args.run_dir).values():
            log.info("wrote %s", path)

    breaches = 0
    if auditors is not None:
        for shard_index, auditor in enumerate(auditors):
            audit = auditor.finalize()
            breaches += audit.violation_breaches + audit.accuracy_breaches
            print(
                f"  shard {shard_index} audit: "
                f"violation_breaches={audit.violation_breaches} "
                f"accuracy_breaches={audit.accuracy_breaches}"
            )
    return 1 if breaches else 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Regenerate one evaluation figure (optionally in parallel).

    ``--jobs N`` fans the figure's independent cells across processes via
    :mod:`repro.experiments.sweep`; the rendered output is identical to a
    serial run.  ``fig5``/``fig6`` also print their companion violation
    tables (Tables 3/4).
    """
    scale = _scale_by_name(args.scale)
    cache = _cache_from_args(args)
    jobs = args.jobs
    if args.which == "fig5":
        from repro.experiments.fig5 import render_fig5, run_fig5
        from repro.experiments.tables import render_table3

        result = run_fig5(scale, jobs=jobs, cache=cache)
        print(render_fig5(result))
        print()
        print(render_table3(result))
    elif args.which == "fig6":
        from repro.experiments.fig6 import render_fig6, run_fig6
        from repro.experiments.tables import render_table4

        result = run_fig6(scale, jobs=jobs, cache=cache)
        print(render_fig6(result))
        print()
        print(render_table4(result))
    elif args.which == "fig7":
        from repro.experiments.fig7 import render_fig7, run_fig7

        print(render_fig7(run_fig7(scale, jobs=jobs, cache=cache)))
    elif args.which == "fig8":
        from repro.experiments.fig8 import render_fig8, run_fig8

        print(render_fig8(run_fig8(scale, jobs=jobs, cache=cache)))
    else:  # pragma: no cover - argparse choices guard
        raise SystemExit(f"unknown figure {args.which!r}")
    log.info("script complete!")
    return 0


def cmd_zoo(args: argparse.Namespace) -> int:
    """Print the model profiles (Fig. 3 / Fig. 9 data)."""
    task = _task_by_name(args.task)
    front = set(task.model_set.pareto_front().names)
    rows = []
    for m in sorted(task.model_set, key=lambda m: m.latency_ms(1)):
        rows.append(
            (
                m.name,
                m.family,
                f"{m.accuracy * 100:.2f}%",
                f"{m.latency_ms(1):.1f}",
                f"{m.latency.per_item_ms:.1f}",
                "*" if m.name in front else "",
            )
        )
    print(
        format_table(
            ["model", "family", "accuracy", "p95 latency (ms)", "ms/query", "Pareto"],
            rows,
            title=f"{task.name} task — {len(task.model_set)} models, "
            f"SLOs {task.slos_ms}",
        )
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The ``ramsis`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="ramsis",
        description="RAMSIS reproduction: policy generation, simulation, reports",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more progress output (DEBUG level)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="suppress progress output (warnings only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate RAMSIS policies")
    gen.add_argument("--task", default="image", choices=["image", "text"])
    gen.add_argument("--slo", type=float, default=None, help="latency SLO in ms")
    gen.add_argument("--workers", type=int, default=1)
    gen.add_argument("--load", type=float, default=40.0, help="query load (QPS)")
    gen.add_argument(
        "--loads",
        type=float,
        nargs="+",
        default=None,
        help="generate a policy per load (overrides --load)",
    )
    gen.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="solve grid cells across this many processes",
    )
    gen.add_argument(
        "--cache-dir",
        default=None,
        help="policy cache directory (default: $RAMSIS_CACHE_DIR or "
        "~/.cache/ramsis)",
    )
    gen.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent policy cache",
    )
    gen.add_argument("--fld-resolution", type=int, default=100)
    gen.add_argument(
        "--solver",
        choices=["auto", "tensor", "loop", "stacked"],
        default="auto",
        help="Bellman-sweep backend: tensorized (fast), reference loop "
        "(oracle), stacked (one batched solve for the whole load grid), "
        "or auto (stacked for serial multi-load grids, tensor otherwise; "
        "backends are value-identical)",
    )
    gen.add_argument("--out", default="policy_gen")
    gen.add_argument(
        "--obs-dir",
        default=None,
        help="trace the generation (serial and parallel) and write the "
        "merged observability artifacts under this directory",
    )
    gen.set_defaults(func=cmd_gen)

    cache = sub.add_parser("cache", help="inspect the persistent policy cache")
    cache.add_argument(
        "action", choices=["stats", "clear", "verify"], help="what to do"
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        help="policy cache directory (default: $RAMSIS_CACHE_DIR or "
        "~/.cache/ramsis)",
    )
    cache.set_defaults(func=cmd_cache)

    msgen = sub.add_parser("ms-gen", help="profile ModelSwitching p99 latencies")
    msgen.add_argument("--task", default="image", choices=["image", "text"])
    msgen.add_argument("--slo", type=float, default=None)
    msgen.add_argument("--workers", type=int, default=1)
    msgen.add_argument("--load", type=float, default=None, help="peak load (QPS)")
    msgen.add_argument("--scale", default="default")
    msgen.add_argument("--out", default="policy_gen")
    msgen.set_defaults(func=cmd_ms_gen)

    simulate = sub.add_parser("simulate", help="simulate one method")
    simulate.add_argument("--m", default="RAMSIS", help="RAMSIS | JF | MS | Greedy")
    simulate.add_argument("--trace", default="real", choices=["real", "constant"])
    simulate.add_argument("--task", default="image", choices=["image", "text"])
    simulate.add_argument("--slo", type=float, default=None)
    simulate.add_argument("--workers", type=int, default=None)
    simulate.add_argument("--load", type=float, default=None)
    simulate.add_argument("--scale", default="default")
    simulate.add_argument("--seed", type=int, default=11)
    simulate.add_argument("--results-dir", default="results")
    simulate.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="run sweep cells across this many processes",
    )
    simulate.add_argument(
        "--cache-dir",
        default=None,
        help="policy cache directory (default: $RAMSIS_CACHE_DIR or "
        "~/.cache/ramsis)",
    )
    simulate.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent policy cache",
    )
    simulate.add_argument(
        "--obs-dir",
        default=None,
        help="trace the sweep (serial and parallel) and write the merged "
        "observability artifacts under this directory",
    )
    simulate.set_defaults(func=cmd_simulate)

    figure = sub.add_parser(
        "figure", help="regenerate one evaluation figure (parallel with --jobs)"
    )
    figure.add_argument(
        "which", choices=["fig5", "fig6", "fig7", "fig8"], help="figure to run"
    )
    figure.add_argument("--scale", default="smoke")
    figure.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="run sweep cells across this many processes",
    )
    figure.add_argument(
        "--cache-dir",
        default=None,
        help="policy cache directory (default: $RAMSIS_CACHE_DIR or "
        "~/.cache/ramsis)",
    )
    figure.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent policy cache",
    )
    figure.set_defaults(func=cmd_figure)

    report = sub.add_parser(
        "report", help="summarize stored results or an observability run dir"
    )
    report.add_argument("--task", default=None)
    report.add_argument("--trace", default="real")
    report.add_argument("--results-dir", default="results")
    report.add_argument(
        "--run-dir",
        default=None,
        help="summarize this observability run directory (shards, merged "
        "trace/metrics, audit report) instead of stored results",
    )
    report.add_argument(
        "--html",
        action="store_true",
        help="with --run-dir: emit an HTML report instead of text",
    )
    report.add_argument(
        "--out",
        default=None,
        help="with --run-dir: report destination (default: "
        "report.txt/report.html inside the run directory)",
    )
    report.set_defaults(func=cmd_report)

    bench_history = sub.add_parser(
        "bench-history",
        help="append benchmark results to the history log; gate regressions",
    )
    bench_history.add_argument(
        "--out-dir",
        default="benchmarks/out",
        help="directory holding the bench *.json results",
    )
    bench_history.add_argument(
        "--history",
        default=None,
        help="history log path (default: <out-dir>/history.jsonl)",
    )
    bench_history.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) when a tracked metric regressed vs. the "
        "previous recorded generation",
    )
    bench_history.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="fractional change tolerated before a regression is flagged",
    )
    bench_history.add_argument(
        "--no-append",
        action="store_true",
        help="check the existing history without recording a new generation",
    )
    bench_history.set_defaults(func=cmd_bench_history)

    explain = sub.add_parser(
        "explain",
        help="attribute a run's tail latency: phases, blame, burn, exemplars",
    )
    explain.add_argument(
        "--run-dir",
        required=True,
        help="observability run directory (attribution.json or an event log)",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="print the full JSON snapshot instead of text tables",
    )
    explain.add_argument(
        "--slo",
        type=float,
        default=None,
        help="SLO label for violation-excess tracking when refolding an "
        "event log (ignored when attribution.json already exists)",
    )
    explain.add_argument(
        "--top",
        type=int,
        default=None,
        help="show only the N highest-latency attribution rows",
    )
    explain.add_argument(
        "--out", default=None, help="also write the rendering to this file"
    )
    explain.set_defaults(func=cmd_explain)

    top = sub.add_parser(
        "top", help="live streaming view of a run directory's snapshot feeds"
    )
    top.add_argument(
        "--run-dir",
        required=True,
        help="run directory receiving metrics-*/attribution-* snapshots",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print a single frame and exit (no ANSI redraw loop)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between frame redraws",
    )
    top.add_argument(
        "--limit",
        type=int,
        default=12,
        help="max metric rows shown per feed file",
    )
    top.set_defaults(func=cmd_top)

    synth = sub.add_parser(
        "synth-trace", help="synthesize the Twitter-shaped trace"
    )
    synth.add_argument("--out", default="twitter_trace.txt")
    synth.add_argument("--duration", type=float, default=300.0)
    synth.add_argument("--seed", type=int, default=2018)
    synth.set_defaults(func=cmd_synth_trace)

    trace = sub.add_parser(
        "trace", help="run a scenario with tracing and emit obs artifacts"
    )
    trace.add_argument("--m", default="RAMSIS", help="RAMSIS | JF | MS | Greedy")
    trace.add_argument("--task", default="image", choices=["image", "text"])
    trace.add_argument("--slo", type=float, default=None)
    trace.add_argument("--workers", type=int, default=2)
    trace.add_argument("--load", type=float, default=40.0, help="constant QPS")
    trace.add_argument(
        "--duration", type=float, default=10.0, help="scenario length (s)"
    )
    trace.add_argument("--scale", default="smoke")
    trace.add_argument("--seed", type=int, default=11)
    trace.add_argument("--out-dir", default="obs_out")
    trace.set_defaults(func=cmd_trace)

    audit = sub.add_parser(
        "audit", help="audit a run against the §5.1 guarantees, live"
    )
    audit.add_argument("--task", default="image", choices=["image", "text"])
    audit.add_argument("--slo", type=float, default=None)
    audit.add_argument("--workers", type=int, default=2)
    audit.add_argument("--load", type=float, default=40.0, help="constant QPS")
    audit.add_argument(
        "--policy-load",
        type=float,
        default=None,
        help="generate the audited policy for this load instead of --load "
        "(a mismatch simulates a stale policy)",
    )
    audit.add_argument(
        "--duration", type=float, default=20.0, help="scenario length (s)"
    )
    audit.add_argument(
        "--window", type=int, default=200, help="completions per audit window"
    )
    audit.add_argument(
        "--confidence", type=float, default=0.95, help="CI confidence level"
    )
    audit.add_argument("--scale", default="smoke")
    audit.add_argument("--seed", type=int, default=11)
    audit.add_argument("--out-dir", default="audit_out")
    audit.set_defaults(func=cmd_audit)

    serve = sub.add_parser(
        "serve", help="serve a trace on the sharded asyncio runtime"
    )
    serve.add_argument("--task", default="image", choices=["image", "text"])
    serve.add_argument("--slo", type=float, default=None)
    serve.add_argument(
        "--trace", default="constant", choices=["constant", "twitter"]
    )
    serve.add_argument("--load", type=float, default=40.0, help="constant QPS")
    serve.add_argument(
        "--load-scale",
        type=float,
        default=1.0,
        help="multiply the trace's QPS (scales the Twitter trace down "
        "to demo-sized worker counts)",
    )
    serve.add_argument(
        "--duration", type=float, default=10.0, help="trace length (s)"
    )
    serve.add_argument("--shards", type=int, default=2)
    serve.add_argument(
        "--workers", type=int, default=2, help="workers per shard"
    )
    serve.add_argument(
        "--policy-dir",
        default=None,
        help="serve with a saved RAMSIS policy set (ramsis gen --out-dir)",
    )
    serve.add_argument(
        "--audit",
        action="store_true",
        help="attach one §5.1 guarantee auditor per shard "
        "(exit 1 on any bound breach)",
    )
    serve.add_argument(
        "--run-dir",
        default=None,
        help="write per-worker event feeds, live snapshots, and merged "
        "artifacts (ramsis report/explain/top all consume this)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="admission control: reject when the worker queue is this deep",
    )
    serve.add_argument(
        "--min-slack-ms",
        type=float,
        default=None,
        help="admission control: reject queries whose slack at the "
        "estimated service start falls below this",
    )
    serve.add_argument(
        "--drop-late",
        action="store_true",
        help="drop the worker queue when the selected action is late",
    )
    serve.add_argument(
        "--unpaced",
        action="store_true",
        help="replay flat out instead of pacing arrivals on the wall "
        "clock (throughput stress mode)",
    )
    serve.add_argument("--time-scale", type=float, default=0.05)
    serve.add_argument(
        "--snapshot-interval", type=float, default=0.5,
        help="seconds between live snapshot publishes under --run-dir",
    )
    serve.add_argument("--scale", default="smoke")
    serve.add_argument("--seed", type=int, default=7)
    serve.set_defaults(func=cmd_serve)

    zoo = sub.add_parser("zoo", help="print model profiles (Fig. 3 / Fig. 9)")
    zoo.add_argument("--task", default="image", choices=["image", "text"])
    zoo.set_defaults(func=cmd_zoo)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
