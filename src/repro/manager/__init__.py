"""Resource manager (Fig. 1's other controller half).

The paper's ISS architecture pairs the model selector & scheduler with a
*resource manager* that provisions workers; §5.1 points out that RAMSIS's
offline expectations (accuracy lower bound, violation upper bound) let the
resource manager search resource configurations offline.  This subpackage
implements that loop:

- :mod:`repro.manager.planner` — capacity planning: the smallest worker
  count whose RAMSIS policy meets accuracy/violation targets at a load,
  and trace-wide schedules with scale-down hysteresis;
- cost accounting in worker-seconds, so "same accuracy with fewer
  resources" (§7.1's headline) is measurable as a provisioning decision.
"""

from repro.manager.planner import (
    CapacityPlan,
    CapacityPlanner,
    ScheduleEntry,
    WorkerSchedule,
)

__all__ = [
    "CapacityPlanner",
    "CapacityPlan",
    "WorkerSchedule",
    "ScheduleEntry",
]
