"""Capacity planning from offline guarantees (§5.1's resource-scaling loop).

A :class:`CapacityPlanner` answers the resource manager's question — *how
many workers does this load need?* — without serving a query: it generates
RAMSIS policies at candidate worker counts and picks the smallest one whose
§5.1 expectations meet the accuracy floor and violation ceiling.  Plans are
cached per load level, so planning over a whole trace touches each distinct
load once.

:meth:`CapacityPlanner.schedule_for_trace` turns a query-load trace into a
worker schedule with scale-down hysteresis (scale up immediately, scale
down only after the load has stayed low for ``cooldown_intervals``), and
reports the schedule's cost in worker-seconds — making the paper's "same
accuracy with fewer resources" claim measurable as a provisioning outcome.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import PolicyGenerator
from repro.core.guarantees import PolicyGuarantees
from repro.core.policy import Policy
from repro.errors import CapacityError

__all__ = ["CapacityPlan", "ScheduleEntry", "WorkerSchedule", "CapacityPlanner"]


@dataclass(frozen=True)
class CapacityPlan:
    """The provisioning decision for one load level."""

    load_qps: float
    num_workers: int
    policy: Policy
    guarantees: PolicyGuarantees


@dataclass(frozen=True)
class ScheduleEntry:
    """Worker allocation for one trace interval."""

    start_ms: float
    end_ms: float
    load_qps: float
    num_workers: int


@dataclass(frozen=True)
class WorkerSchedule:
    """A per-interval worker schedule plus its cost."""

    entries: Tuple[ScheduleEntry, ...]

    @property
    def peak_workers(self) -> int:
        """Largest allocation across the trace."""
        return max(e.num_workers for e in self.entries)

    @property
    def worker_seconds(self) -> float:
        """Total provisioned cost (the autoscaling objective)."""
        return sum(
            e.num_workers * (e.end_ms - e.start_ms) / 1000.0 for e in self.entries
        )

    def workers_at(self, t_ms: float) -> int:
        """Allocation in effect at trace time ``t_ms``."""
        for e in self.entries:
            if e.start_ms <= t_ms < e.end_ms:
                return e.num_workers
        raise CapacityError(f"time {t_ms} outside the schedule")


class CapacityPlanner:
    """Offline search for minimal worker counts meeting §5.1 targets."""

    def __init__(
        self,
        base_config: WorkerMDPConfig,
        accuracy_floor: float,
        violation_ceiling: float,
        min_workers: int = 1,
        max_workers: int = 64,
    ) -> None:
        if not 0.0 <= accuracy_floor <= 1.0:
            raise CapacityError(f"accuracy_floor must be in [0,1]: {accuracy_floor}")
        if not 0.0 <= violation_ceiling <= 1.0:
            raise CapacityError(
                f"violation_ceiling must be in [0,1]: {violation_ceiling}"
            )
        if min_workers < 1 or max_workers < min_workers:
            raise CapacityError("require 1 <= min_workers <= max_workers")
        self._base = base_config
        self._floor = accuracy_floor
        self._ceiling = violation_ceiling
        self._min = min_workers
        self._max = max_workers
        self._generator = PolicyGenerator(base_config)
        self._plans: Dict[float, CapacityPlan] = {}

    # ------------------------------------------------------------------
    # Single-load planning
    # ------------------------------------------------------------------
    def plan(self, load_qps: float) -> CapacityPlan:
        """Smallest worker count whose policy meets both targets.

        Uses a doubling + bisection search over worker counts: guarantees
        improve monotonically with more workers at fixed load (each worker
        sees a thinner, smoother arrival stream), so bisection applies.
        Raises :class:`CapacityError` when even ``max_workers`` fails.
        """
        key = round(load_qps, 6)
        cached = self._plans.get(key)
        if cached is not None:
            return cached

        def meets(workers: int) -> Optional[Tuple[Policy, PolicyGuarantees]]:
            result = self._generator.generate(load_qps, num_workers=workers)
            g = result.guarantees
            if g.meets(self._floor, self._ceiling):
                return result.policy, g
            return None

        # Exponential probe for a feasible upper bound.
        feasible: Optional[int] = None
        probe = self._min
        while probe <= self._max:
            if meets(probe) is not None:
                feasible = probe
                break
            probe = min(probe * 2, self._max) if probe != self._max else self._max + 1
        if feasible is None:
            raise CapacityError(
                f"no configuration up to {self._max} workers meets "
                f"accuracy >= {self._floor:.3f} and violations <= "
                f"{self._ceiling:.3f} at {load_qps:g} QPS"
            )
        lo = max(self._min, feasible // 2)
        hi = feasible
        while lo < hi:
            mid = (lo + hi) // 2
            if meets(mid) is not None:
                hi = mid
            else:
                lo = mid + 1
        policy, guarantees = meets(hi)  # type: ignore[misc]
        plan = CapacityPlan(
            load_qps=load_qps, num_workers=hi, policy=policy, guarantees=guarantees
        )
        self._plans[key] = plan
        return plan

    # ------------------------------------------------------------------
    # Trace-wide scheduling
    # ------------------------------------------------------------------
    def schedule_for_trace(
        self,
        trace: LoadTrace,
        load_quantum_qps: float = 25.0,
        cooldown_intervals: int = 2,
        headroom: float = 1.0,
    ) -> WorkerSchedule:
        """Per-interval worker schedule with scale-down hysteresis.

        Loads are rounded *up* to multiples of ``load_quantum_qps`` so the
        planner is consulted once per level.  Scale-ups apply immediately;
        scale-downs wait until the requirement has been lower for
        ``cooldown_intervals`` consecutive intervals (the usual autoscaler
        guard against flapping, cf. MArk/InferLine).  ``headroom``
        multiplies the anticipated load before planning.
        """
        if load_quantum_qps <= 0:
            raise CapacityError("load_quantum_qps must be > 0")
        if cooldown_intervals < 0:
            raise CapacityError("cooldown_intervals must be >= 0")

        entries: List[ScheduleEntry] = []
        current = 0
        pending_down: List[int] = []
        for start, end, qps in trace.intervals():
            target_load = (
                math.ceil(qps * headroom / load_quantum_qps) * load_quantum_qps
            )
            required = self.plan(max(target_load, load_quantum_qps)).num_workers
            if required >= current:
                current = required
                pending_down.clear()
            else:
                pending_down.append(required)
                if len(pending_down) > cooldown_intervals:
                    current = max(pending_down)
                    pending_down.clear()
            entries.append(
                ScheduleEntry(
                    start_ms=start,
                    end_ms=end,
                    load_qps=qps,
                    num_workers=current,
                )
            )
        return WorkerSchedule(entries=tuple(entries))

    def plans(self) -> List[CapacityPlan]:
        """All plans computed so far, sorted by load."""
        return [self._plans[k] for k in sorted(self._plans)]
