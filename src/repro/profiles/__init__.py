"""Model profiles: inference accuracy and per-batch-size latency.

RAMSIS's offline inputs (§3.1.1) include a *latency profile* ``l_w(m, b)``
for every (worker type, model, batch size) triple and an *inference accuracy
profile* ``Accuracy(m)`` per model.  The paper collects these with TorchServe
on GCP n1 CPU VMs; this reproduction ships a synthetic zoo calibrated to the
published profiles (Fig. 3, Fig. 9 — see DESIGN.md §3 for the substitution
rationale) plus a simulated profiler that "measures" latencies the same way
the paper does, by timing repeated invocations and taking the 95th
percentile.
"""

from repro.profiles.latency import LatencyProfile, LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet
from repro.profiles.profiler import SimulatedHardware, profile_model_set
from repro.profiles.zoo import (
    build_image_model_set,
    build_synthetic_model_set,
    build_text_model_set,
    build_three_model_image_set,
)

__all__ = [
    "LatencyProfile",
    "LinearLatencyModel",
    "ModelProfile",
    "ModelSet",
    "SimulatedHardware",
    "profile_model_set",
    "build_image_model_set",
    "build_text_model_set",
    "build_synthetic_model_set",
    "build_three_model_image_set",
]
