"""Model profiles and model sets.

A :class:`ModelProfile` bundles what RAMSIS knows about one trained model:
its inference accuracy on the application's test set (§3.1.1) and its
latency behaviour on the target worker type.  A :class:`ModelSet` is the
ordered collection of models pre-loaded on each worker (``M_w`` in the
paper), with helpers for Pareto-front pruning (§4.3.3) and the SLO-derived
quantities used throughout (``B_w``, the fastest model, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import validate_probability
from repro.errors import ProfileError
from repro.profiles.latency import LinearLatencyModel

__all__ = ["ModelProfile", "ModelSet"]


@dataclass(frozen=True)
class ModelProfile:
    """One trained model's accuracy and latency profile.

    Attributes
    ----------
    name:
        Model identifier (e.g. ``"efficientnet_b2"``).
    accuracy:
        Profiled inference accuracy in [0, 1] (ImageNet top-1 for the image
        task, GLUE-MNLI for the text task).
    latency:
        Parametric latency model on the target worker type; the MDP consumes
        its 95th-percentile values, the "implementation" latency model draws
        stochastic samples from it.
    family:
        Architecture family, for reporting (e.g. ``"efficientnet"``).
    """

    name: str
    accuracy: float
    latency: LinearLatencyModel
    family: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ProfileError("model name must be non-empty")
        validate_probability("accuracy", self.accuracy)

    def latency_ms(self, batch_size: int) -> float:
        """Profiled (p95) inference latency for ``batch_size`` queries."""
        return self.latency.p95_ms(batch_size)

    def mean_latency_ms(self, batch_size: int) -> float:
        """Mean inference latency for ``batch_size`` queries."""
        return self.latency.mean_ms(batch_size)

    def sample_latency_ms(self, batch_size: int, rng: np.random.Generator) -> float:
        """One stochastic execution latency (prototype behaviour)."""
        return self.latency.sample_ms(batch_size, rng)

    def max_batch_within(self, budget_ms: float, cap: int) -> Optional[int]:
        """Largest batch size ``<= cap`` whose p95 latency fits the budget."""
        best: Optional[int] = None
        for b in range(1, cap + 1):
            if self.latency.p95_ms(b) <= budget_ms:
                best = b
            else:
                break
        return best

    def peak_throughput_qps(self, budget_ms: float, cap: int) -> float:
        """Best queries/second over batch sizes fitting ``budget_ms``."""
        best = 0.0
        for b in range(1, cap + 1):
            latency = self.latency.p95_ms(b)
            if latency > budget_ms:
                break
            best = max(best, b / latency * 1000.0)
        return best


class ModelSet:
    """An ordered set of models pre-loaded on a worker type (``M_w``).

    Iteration order is the registration order; lookup by name is constant
    time.  The set is immutable after construction — derive new sets with
    :meth:`subset` or :meth:`pareto_front`.
    """

    def __init__(self, models: Sequence[ModelProfile], task: str = "custom") -> None:
        if not models:
            raise ProfileError("a model set needs at least one model")
        names = [m.name for m in models]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ProfileError(f"duplicate model names: {dupes}")
        self._models: Tuple[ModelProfile, ...] = tuple(models)
        self._by_name: Dict[str, ModelProfile] = {m.name: m for m in models}
        self._task = task

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._models)

    def __iter__(self) -> Iterator[ModelProfile]:
        return iter(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, index: int) -> ModelProfile:
        return self._models[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ModelSet(task={self._task!r}, n={len(self._models)})"

    @property
    def task(self) -> str:
        """Task label (``"image"``, ``"text"``, or ``"custom"``)."""
        return self._task

    @property
    def names(self) -> Tuple[str, ...]:
        """Model names in registration order."""
        return tuple(m.name for m in self._models)

    def get(self, name: str) -> ModelProfile:
        """Model by name; raises :class:`ProfileError` when unknown."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ProfileError(
                f"unknown model {name!r}; available: {sorted(self._by_name)}"
            ) from None

    def index_of(self, name: str) -> int:
        """Position of ``name`` in the registration order."""
        for i, m in enumerate(self._models):
            if m.name == name:
                return i
        raise ProfileError(f"unknown model {name!r}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def fastest(self) -> ModelProfile:
        """Lowest-latency model (``m_w_min`` — the forced fallback, §4.3.1).

        Latency ties break toward the higher-accuracy model, matching the
        action ordering inside :class:`repro.core.mdp.WorkerMDP` so the
        forced-fallback model is the same object in both places.
        """
        return min(self._models, key=lambda m: (m.latency_ms(1), -m.accuracy))

    def slowest(self) -> ModelProfile:
        """Highest-latency model (defines the paper's SLO grid, §7)."""
        return max(self._models, key=lambda m: m.latency_ms(1))

    def most_accurate(self) -> ModelProfile:
        """Highest-accuracy model."""
        return max(self._models, key=lambda m: m.accuracy)

    def max_batch_size(self, slo_ms: float, cap: int = 64) -> int:
        """``B_w``: the largest batch size (``<= cap``) whose p95 latency
        meets the SLO for *some* model (§4.2.1)."""
        best = 0
        for model in self._models:
            b = model.max_batch_within(slo_ms, cap)
            if b is not None:
                best = max(best, b)
        if best == 0:
            raise ProfileError(
                f"no model serves even a single query within {slo_ms} ms"
            )
        return best

    def subset(self, names: Sequence[str]) -> "ModelSet":
        """New set restricted to ``names`` (order taken from ``names``)."""
        return ModelSet([self.get(n) for n in names], task=self._task)

    def with_latency_scale(self, factor: float) -> "ModelSet":
        """The same models on a worker type ``factor``x slower (or faster).

        Worker homogeneity is not fundamental to RAMSIS — policies are
        generated per worker type (§4, §7 "Inference Tasks") — and this is
        how a heterogeneous cluster's per-type profiles are derived: every
        latency parameter scales by ``factor``, accuracies are unchanged.
        """
        if factor <= 0:
            raise ProfileError(f"latency scale factor must be > 0, got {factor}")
        scaled = [
            ModelProfile(
                name=m.name,
                accuracy=m.accuracy,
                family=m.family,
                latency=LinearLatencyModel(
                    overhead_ms=m.latency.overhead_ms * factor,
                    per_item_ms=m.latency.per_item_ms * factor,
                    std_ms=m.latency.std_ms * factor,
                ),
            )
            for m in self._models
        ]
        return ModelSet(scaled, task=self._task)

    def pareto_front(self) -> "ModelSet":
        """Models on the accuracy-latency Pareto front (§4.3.3).

        A model is pruned when another model has both lower-or-equal batch-1
        latency and strictly higher accuracy, or equal accuracy at strictly
        lower latency.
        """
        front: List[ModelProfile] = []
        for candidate in self._models:
            dominated = False
            for other in self._models:
                if other is candidate:
                    continue
                better_latency = other.latency_ms(1) <= candidate.latency_ms(1)
                better_accuracy = other.accuracy >= candidate.accuracy
                strictly = (
                    other.latency_ms(1) < candidate.latency_ms(1)
                    or other.accuracy > candidate.accuracy
                )
                if better_latency and better_accuracy and strictly:
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        front.sort(key=lambda m: m.latency_ms(1))
        return ModelSet(front, task=self._task)

    def accuracy_table(self) -> Dict[str, float]:
        """``Accuracy(m)`` as a plain name -> accuracy dict."""
        return {m.name: m.accuracy for m in self._models}
