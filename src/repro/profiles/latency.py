"""Per-batch-size inference latency profiles.

The paper defines inference latency ``l_w(m, b)`` as the time elapsed between
sending a batch of ``b`` queries to model ``m`` on worker ``w`` and receiving
the response at the central controller (§3.1.1) — it includes transfer and
pre-processing time.  Policies consume the *95th-percentile* profile value
(Fig. 3 caption, §7.3.1), while the prototype's real executions vary around
it with a standard deviation of ~10 ms (§7.3.1).

Two representations are provided:

- :class:`LinearLatencyModel` — a parametric ``overhead + per_item * b``
  model used by the synthetic zoo.  CPU inference without intra-batch
  parallelism scales close to linearly in batch size, which is also what
  makes the paper's ``B_w = 29`` cap arise naturally.
- :class:`LatencyProfile` — a tabulated profile (one p95 value per batch
  size) as produced by the simulated profiler; this is the only form the
  MDP construction consumes, so users can plug in measured tables directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro._util import validate_non_negative, validate_positive
from repro.errors import ProfileError

__all__ = ["LinearLatencyModel", "LatencyProfile"]

#: z-score of the 95th percentile of a normal distribution.
_Z95 = 1.6448536269514722


@dataclass(frozen=True)
class LinearLatencyModel:
    """Parametric latency model ``l(b) = overhead_ms + per_item_ms * b``.

    ``std_ms`` captures run-to-run latency variance (the paper observed a
    standard deviation of about 10 ms across all models, §7.3.1).  The
    *profiled* latency reported for a batch size is the 95th percentile of
    ``Normal(mean(b), std_ms)``, mirroring how the paper profiles models.
    """

    overhead_ms: float
    per_item_ms: float
    std_ms: float = 10.0

    def __post_init__(self) -> None:
        validate_non_negative("overhead_ms", self.overhead_ms)
        validate_positive("per_item_ms", self.per_item_ms)
        validate_non_negative("std_ms", self.std_ms)
        # Per-batch-size p95 memo.  ``p95_ms`` is a pure function of the
        # frozen parameters, so caching the computed value is exact;
        # selectors call it on every MS&S decision, making this the hot
        # path of the simulator.  Deliberately NOT a dataclass field: the
        # policy cache canonicalizes latency models via
        # ``dataclasses.asdict``, and mutable memo state must never leak
        # into content digests.
        object.__setattr__(self, "_p95_cache", {})

    def mean_ms(self, batch_size: int) -> float:
        """Mean inference latency of a batch of ``batch_size`` queries."""
        if batch_size < 1:
            raise ProfileError(f"batch_size must be >= 1, got {batch_size}")
        return self.overhead_ms + self.per_item_ms * batch_size

    def effective_std_ms(self, batch_size: int) -> float:
        """Run-to-run std, capped so tiny models keep positive latencies."""
        return min(self.std_ms, 0.2 * self.mean_ms(batch_size))

    def p95_ms(self, batch_size: int) -> float:
        """95th-percentile latency — the value policies plan against."""
        value = self._p95_cache.get(batch_size)
        if value is None:
            value = self.mean_ms(batch_size) + _Z95 * self.effective_std_ms(
                batch_size
            )
            self._p95_cache[batch_size] = value
        return value

    def sample_ms(self, batch_size: int, rng: np.random.Generator) -> float:
        """Draw one stochastic execution latency (truncated normal)."""
        mean = self.mean_ms(batch_size)
        std = self.effective_std_ms(batch_size)
        if std == 0.0:
            return mean
        draw = rng.normal(loc=mean, scale=std)
        floor = 0.25 * mean
        return float(max(draw, floor))

    def tabulate(self, max_batch_size: int) -> "LatencyProfile":
        """Materialize a :class:`LatencyProfile` for batches ``1..max``."""
        return LatencyProfile(
            p95_ms_by_batch={
                b: self.p95_ms(b) for b in range(1, max_batch_size + 1)
            }
        )


@dataclass(frozen=True)
class LatencyProfile:
    """Tabulated p95 latency per supported batch size.

    This is the representation the MDP construction and the baselines
    consume: a mapping ``batch size -> p95 latency (ms)``.  Batch sizes must
    form a contiguous range starting at 1 and latencies must be
    non-decreasing in batch size (serving a bigger batch never gets faster).
    """

    p95_ms_by_batch: Mapping[int, float]
    _values: Tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.p95_ms_by_batch:
            raise ProfileError("latency profile must cover at least batch size 1")
        sizes = sorted(self.p95_ms_by_batch)
        if sizes[0] != 1 or sizes != list(range(1, len(sizes) + 1)):
            raise ProfileError(
                f"batch sizes must be contiguous from 1, got {sizes[:5]}..."
            )
        values = tuple(float(self.p95_ms_by_batch[b]) for b in sizes)
        if any(v <= 0 for v in values):
            raise ProfileError("latencies must be positive")
        if any(later < earlier for earlier, later in zip(values, values[1:])):
            raise ProfileError("latencies must be non-decreasing in batch size")
        object.__setattr__(self, "_values", values)

    @property
    def max_batch_size(self) -> int:
        """Largest batch size covered by this profile."""
        return len(self._values)

    def latency_ms(self, batch_size: int) -> float:
        """Profiled p95 latency for ``batch_size`` queries."""
        if not 1 <= batch_size <= self.max_batch_size:
            raise ProfileError(
                f"batch size {batch_size} outside profiled range "
                f"[1, {self.max_batch_size}]"
            )
        return self._values[batch_size - 1]

    def max_batch_within(self, budget_ms: float) -> Optional[int]:
        """Largest batch size whose latency fits ``budget_ms``, if any."""
        best: Optional[int] = None
        for b, latency in enumerate(self._values, start=1):
            if latency <= budget_ms:
                best = b
            else:
                break
        return best

    def throughput_qps(self, batch_size: int) -> float:
        """Sustained throughput when serving back-to-back ``batch_size``
        batches: ``batch_size / latency`` converted to queries/second."""
        return batch_size / self.latency_ms(batch_size) * 1000.0

    def peak_throughput_qps(self, budget_ms: Optional[float] = None) -> float:
        """Best throughput over batch sizes whose latency fits ``budget_ms``.

        With no budget, all profiled batch sizes are considered.
        """
        candidates = [
            self.throughput_qps(b)
            for b in range(1, self.max_batch_size + 1)
            if budget_ms is None or self.latency_ms(b) <= budget_ms
        ]
        if not candidates:
            return 0.0
        return max(candidates)

    def as_dict(self) -> Dict[int, float]:
        """Plain-dict copy (for JSON serialization)."""
        return {b: self._values[b - 1] for b in range(1, self.max_batch_size + 1)}
