"""Simulated offline profiling (§3.1.1 "Latency profiles").

The paper profiles every (worker type, model, batch size) triple by timing
repeated invocations (the artifact stores 100 timed runs per pair and uses
the 95th percentile).  Real hardware is unavailable here, so
:class:`SimulatedHardware` stands in for a worker VM: "executing" a batch
draws a latency from the model's stochastic latency distribution.  Profiling
against it reproduces the paper's measurement procedure end to end —
empirical p95 tables rather than the parametric ground truth — and the two
agree to within sampling noise (validated in the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro._util import percentile
from repro.profiles.latency import LatencyProfile
from repro.profiles.models import ModelProfile, ModelSet

__all__ = ["SimulatedHardware", "profile_model_set"]


@dataclass
class SimulatedHardware:
    """A stand-in for one worker VM of the paper's testbed.

    Executes inference requests by sampling the model's latency
    distribution.  Deterministic for a given seed.
    """

    worker_type: str = "n1-standard-4"
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def execute(self, model: ModelProfile, batch_size: int) -> float:
        """Run one batch; returns the observed latency in milliseconds."""
        return model.sample_latency_ms(batch_size, self._rng)

    def time_repeated(
        self, model: ModelProfile, batch_size: int, runs: int
    ) -> List[float]:
        """Time ``runs`` consecutive invocations (the artifact's layout)."""
        return [self.execute(model, batch_size) for _ in range(runs)]


def profile_model_set(
    model_set: ModelSet,
    max_batch_size: int,
    hardware: SimulatedHardware | None = None,
    runs: int = 100,
    quantile: float = 95.0,
) -> Dict[str, LatencyProfile]:
    """Measure a latency profile for every model and batch size.

    Returns a mapping ``model name -> LatencyProfile`` whose entries are the
    empirical ``quantile``-th percentile over ``runs`` timed executions —
    exactly what the paper's offline profiling step produces.  Monotonicity
    in batch size is enforced by a running maximum (profiling noise can
    otherwise produce a tiny inversion that the profile representation
    rejects).
    """
    if hardware is None:
        hardware = SimulatedHardware()
    profiles: Dict[str, LatencyProfile] = {}
    for model in model_set:
        table: Dict[int, float] = {}
        running_max = 0.0
        for b in range(1, max_batch_size + 1):
            samples = hardware.time_repeated(model, b, runs)
            value = percentile(samples, quantile)
            running_max = max(running_max, value)
            table[b] = running_max
        profiles[model.name] = LatencyProfile(p95_ms_by_batch=table)
    return profiles
