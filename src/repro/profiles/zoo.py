"""The calibrated model zoo.

The paper evaluates on two tasks (§7):

- **Image classification**: 26 TorchVision ImageNet models — 11
  EfficientNets, 5 ResNets, 2 ResNeXts, GoogleNet, 2 MobileNets, Inception,
  and 4 ShuffleNets (Fig. 3).  17 of the 26 are off the accuracy-latency
  Pareto front; 9 remain after pruning (§4.3.3).
- **Text classification**: 5 BERT variants (tiny/mini/small/medium/base)
  with GLUE-MNLI accuracy (Fig. 9); all 5 are on the Pareto front.

The authors profiled these models with TorchServe on 4-vCPU GCP n1 VMs.
That hardware is not available here, so this module ships a *synthetic
calibration* (see DESIGN.md §3): accuracy values approximate the published
top-1 / MNLI numbers of the same architectures, and latency parameters are
chosen so every structural fact the paper reports holds exactly:

- exactly 9 of the 26 image models are on the Pareto front, including the
  three models Appendix E names (``shufflenet_v2_x0_5``,
  ``efficientnet_b2``, ``efficientnet_v2_s``);
- the highest-latency image model's p95 is in (200, 300] ms, giving the
  paper's SLO grid {150, 300, 500} ms via its rounding rules;
- the maximum batch size meeting the largest image SLO is ``B_w = 29``;
- the highest-latency text model's p95 is in (100, 200] ms, giving the
  text SLO grid {100, 200, 300} ms.

Two EfficientNet-V2 accuracies (``m``/``l``) are lowered slightly below
``efficientnet_v2_s`` so the front has exactly 9 members, matching the
paper's count (the paper does not publish its per-model numbers).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ProfileError
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet

__all__ = [
    "build_image_model_set",
    "build_text_model_set",
    "build_synthetic_model_set",
    "build_three_model_image_set",
    "IMAGE_SLOS_MS",
    "TEXT_SLOS_MS",
]

#: The paper's representative latency SLOs per task (§7 "Inference Tasks").
IMAGE_SLOS_MS: Tuple[float, float, float] = (150.0, 300.0, 500.0)
TEXT_SLOS_MS: Tuple[float, float, float] = (100.0, 200.0, 300.0)

#: Shared profiling constants: per-call overhead and run-to-run std (§7.3.1
#: reports ~10 ms latency std across models).
_IMAGE_OVERHEAD_MS = 8.0
_TEXT_OVERHEAD_MS = 4.0
_STD_MS = 10.0

# name, family, accuracy (fraction), per-item latency (ms/query).
# Ordered by per-item latency.  Models marked on the Pareto front in the
# comment column form the 9-member front.
_IMAGE_ZOO: Tuple[Tuple[str, str, float, float], ...] = (
    ("shufflenet_v2_x0_5", "shufflenet", 0.60552, 16.2),   # front (fastest)
    ("shufflenet_v2_x1_0", "shufflenet", 0.69362, 22.0),   # front
    ("shufflenet_v2_x1_5", "shufflenet", 0.72996, 27.0),   # front
    ("resnet18", "resnet", 0.69758, 29.0),
    ("mobilenet_v2", "mobilenet", 0.71878, 30.0),
    ("mobilenet_v3_large", "mobilenet", 0.74042, 32.0),    # front
    ("googlenet", "googlenet", 0.69778, 34.0),
    ("shufflenet_v2_x2_0", "shufflenet", 0.76230, 38.0),   # front
    ("resnet34", "resnet", 0.73314, 42.0),
    ("efficientnet_b0", "efficientnet", 0.77692, 48.0),    # front
    ("resnet50", "resnet", 0.76130, 52.0),
    ("inception_v3", "inception", 0.77294, 55.0),
    ("resnext50_32x4d", "resnext", 0.77618, 58.0),
    ("efficientnet_b1", "efficientnet", 0.78642, 62.0),    # front
    ("resnet101", "resnet", 0.77374, 70.0),
    ("efficientnet_b2", "efficientnet", 0.80608, 80.0),    # front
    ("resnet152", "resnet", 0.78312, 92.0),
    ("resnext101_32x8d", "resnext", 0.79312, 105.0),
    ("efficientnet_v2_s", "efficientnet", 0.84228, 130.0),  # front (top)
    ("efficientnet_b3", "efficientnet", 0.82008, 140.0),
    ("efficientnet_b4", "efficientnet", 0.83384, 155.0),
    ("efficientnet_b5", "efficientnet", 0.83444, 170.0),
    ("efficientnet_b6", "efficientnet", 0.84008, 200.0),
    ("efficientnet_v2_m", "efficientnet", 0.84052, 215.0),
    ("efficientnet_b7", "efficientnet", 0.84122, 230.0),
    ("efficientnet_v2_l", "efficientnet", 0.84152, 255.0),
)

# name, family, MNLI accuracy (fraction), per-item latency (ms/query).
_TEXT_ZOO: Tuple[Tuple[str, str, float, float], ...] = (
    ("bert_tiny", "bert", 0.7020, 7.0),
    ("bert_mini", "bert", 0.7480, 14.0),
    ("bert_small", "bert", 0.7760, 26.0),
    ("bert_medium", "bert", 0.7980, 50.0),
    ("bert_base", "bert", 0.8400, 130.0),
)


def _build(
    rows: Sequence[Tuple[str, str, float, float]], overhead_ms: float, task: str
) -> ModelSet:
    models = [
        ModelProfile(
            name=name,
            accuracy=acc,
            latency=LinearLatencyModel(
                overhead_ms=overhead_ms, per_item_ms=per_item, std_ms=_STD_MS
            ),
            family=family,
        )
        for name, family, acc, per_item in rows
    ]
    return ModelSet(models, task=task)


def build_image_model_set() -> ModelSet:
    """The 26-model ImageNet classification zoo (paper Fig. 3)."""
    return _build(_IMAGE_ZOO, _IMAGE_OVERHEAD_MS, task="image")


def build_text_model_set() -> ModelSet:
    """The 5-model BERT text classification zoo (paper Fig. 9)."""
    return _build(_TEXT_ZOO, _TEXT_OVERHEAD_MS, task="text")


def build_three_model_image_set() -> ModelSet:
    """Appendix E's reduced model set: the minimum-latency model
    (shufflenet_v2_x0_5), a medium-latency model (efficientnet_b2), and a
    long-latency model (efficientnet_v2_s)."""
    return build_image_model_set().subset(
        ["shufflenet_v2_x0_5", "efficientnet_b2", "efficientnet_v2_s"]
    )


def build_synthetic_model_set(
    base: Optional[ModelSet] = None,
    target_count: int = 60,
    accuracy_step: float = 0.005,
) -> ModelSet:
    """The high-model-count scenario of §7.3.2.

    The paper constructs a synthetic set of ``M = 60`` models by linearly
    interpolating the Pareto front of the original 9 image models in 0.5 %
    accuracy increments, such that the synthetic set is a strict superset of
    the 9.  This builder does the same: it walks the front's accuracy range
    in ``accuracy_step`` increments, interpolates per-item latency linearly
    between neighbouring front models, and pads or trims to hit exactly
    ``target_count`` models (padding halves the step in the widest segments
    first).
    """
    if base is None:
        base = build_image_model_set()
    front = list(base.pareto_front())
    if len(front) < 2:
        raise ProfileError("need at least two Pareto models to interpolate")
    if target_count < len(front):
        raise ProfileError(
            f"target_count {target_count} below Pareto front size {len(front)}"
        )
    front.sort(key=lambda m: m.accuracy)

    # Candidate interpolated accuracies across the front's range.
    lo, hi = front[0].accuracy, front[-1].accuracy
    existing = {round(m.accuracy, 6) for m in front}
    candidates: List[float] = []
    acc = lo + accuracy_step
    while acc < hi - 1e-12:
        if round(acc, 6) not in existing:
            candidates.append(acc)
        acc += accuracy_step

    needed = target_count - len(front)
    if len(candidates) < needed:
        # Densify: add midpoints between consecutive candidate accuracies
        # until enough synthetic models exist.
        grid = sorted(set(candidates) | {lo, hi})
        while len(candidates) < needed:
            gaps = sorted(
                zip(grid, grid[1:]), key=lambda pair: pair[1] - pair[0], reverse=True
            )
            added = False
            for a, b in gaps:
                mid = (a + b) / 2.0
                if round(mid, 6) not in existing and mid not in candidates:
                    candidates.append(mid)
                    grid = sorted(set(grid) | {mid})
                    added = True
                    break
            if not added:  # pragma: no cover - defensive
                raise ProfileError("unable to densify synthetic accuracy grid")
        candidates.sort()
    candidates = candidates[:needed]

    synthetic: List[ModelProfile] = list(front)
    for acc in candidates:
        per_item = _interpolate_per_item(front, acc)
        synthetic.append(
            ModelProfile(
                name=f"synthetic_acc_{acc * 100:.2f}",
                accuracy=acc,
                latency=LinearLatencyModel(
                    overhead_ms=_IMAGE_OVERHEAD_MS,
                    per_item_ms=per_item,
                    std_ms=_STD_MS,
                ),
                family="synthetic",
            )
        )
    synthetic.sort(key=lambda m: m.accuracy)
    return ModelSet(synthetic, task=base.task)


def _interpolate_per_item(front: Sequence[ModelProfile], accuracy: float) -> float:
    """Per-item latency at ``accuracy``, linear between front neighbours."""
    for left, right in zip(front, front[1:]):
        if left.accuracy <= accuracy <= right.accuracy:
            span = right.accuracy - left.accuracy
            frac = 0.5 if span == 0 else (accuracy - left.accuracy) / span
            return (
                left.latency.per_item_ms
                + frac * (right.latency.per_item_ms - left.latency.per_item_ms)
            )
    raise ProfileError(f"accuracy {accuracy} outside the Pareto front range")
