"""Model-set serialization and measured-profile fitting.

The paper's artifact ships profiles as JSON files (accuracy dictionaries
plus per-batch latency samples).  This module provides the equivalent
persistence layer plus the bridge back from measured tables to the
parametric form the zoo uses:

- :func:`save_model_set` / :func:`load_model_set` — JSON round-trip of a
  full :class:`~repro.profiles.models.ModelSet`;
- :func:`fit_linear_model` — least-squares fit of a
  :class:`~repro.profiles.latency.LinearLatencyModel` to a measured
  :class:`~repro.profiles.latency.LatencyProfile`, so users who profile
  real hardware (batch-latency tables) can plug straight into policy
  generation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import ProfileError
from repro.profiles.latency import LatencyProfile, LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet

__all__ = ["save_model_set", "load_model_set", "fit_linear_model"]

_FORMAT_VERSION = 1


def save_model_set(model_set: ModelSet, path: Union[str, Path]) -> None:
    """Write a model set as JSON (artifact-style profile store)."""
    payload = {
        "version": _FORMAT_VERSION,
        "task": model_set.task,
        "models": [
            {
                "name": m.name,
                "family": m.family,
                "accuracy": m.accuracy,
                "latency": {
                    "overhead_ms": m.latency.overhead_ms,
                    "per_item_ms": m.latency.per_item_ms,
                    "std_ms": m.latency.std_ms,
                },
            }
            for m in model_set
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def load_model_set(path: Union[str, Path]) -> ModelSet:
    """Read a model set written by :func:`save_model_set`."""
    try:
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != _FORMAT_VERSION:
            raise ProfileError(
                f"unsupported model-set format version {payload.get('version')!r}"
            )
        models = [
            ModelProfile(
                name=str(raw["name"]),
                accuracy=float(raw["accuracy"]),
                family=str(raw.get("family", "")),
                latency=LinearLatencyModel(
                    overhead_ms=float(raw["latency"]["overhead_ms"]),
                    per_item_ms=float(raw["latency"]["per_item_ms"]),
                    std_ms=float(raw["latency"]["std_ms"]),
                ),
            )
            for raw in payload["models"]
        ]
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise ProfileError(f"malformed model-set file {path}: {exc}") from exc
    return ModelSet(models, task=str(payload.get("task", "custom")))


def fit_linear_model(
    profile: LatencyProfile, std_ms: float = 10.0
) -> LinearLatencyModel:
    """Least-squares fit ``overhead + per_item * b`` to a measured profile.

    Fits against the *p95* table (what a profiler measures) and then
    removes the p95 offset implied by ``std_ms`` so the fitted model's own
    p95 reproduces the measurements.  The overhead is clamped at zero —
    measured tables whose batch-1 point dips below the trend would
    otherwise fit a (meaningless) negative overhead.
    """
    batches = np.arange(1, profile.max_batch_size + 1, dtype=np.float64)
    p95 = np.array([profile.latency_ms(int(b)) for b in batches])
    if batches.shape[0] == 1:
        # One point: attribute everything to per-item cost.
        per_item = float(p95[0])
        overhead = 0.0
    else:
        slope, intercept = np.polyfit(batches, p95, deg=1)
        per_item = float(max(slope, 1e-6))
        overhead = float(max(intercept, 0.0))
    # The p95 of Normal(mean, std) sits z95 * std above the mean; pull the
    # fitted line down so the parametric p95 matches the measured table.
    z95 = 1.6448536269514722
    candidate = LinearLatencyModel(
        overhead_ms=overhead, per_item_ms=per_item, std_ms=std_ms
    )
    # Effective std may be capped for small models; use the cap at batch 1.
    offset = z95 * candidate.effective_std_ms(1)
    adjusted_overhead = max(overhead - offset, 0.0)
    return LinearLatencyModel(
        overhead_ms=adjusted_overhead, per_item_ms=per_item, std_ms=std_ms
    )
