"""Query arrival substrate: distributions, traces, and arrival processes.

The paper (§3.1.1) parameterizes RAMSIS with a *query arrival distribution*
``PF(k, T)`` — the probability of ``k`` queries arriving at the central queue
during a time interval of length ``T``.  This subpackage provides:

- :mod:`repro.arrivals.distributions` — Poisson (the paper's default), Gamma,
  and deterministic counting distributions behind one interface.
- :mod:`repro.arrivals.traces` — query-load traces (QPS over fixed intervals),
  including a synthesizer for a Twitter-shaped production trace (§7).
- :mod:`repro.arrivals.processes` — sampling of concrete arrival timestamps
  from a trace plus an inter-arrival pattern.
"""

from repro.arrivals.analysis import (
    ArrivalPatternSummary,
    dispersion_index,
    find_bursts,
    find_lulls,
    interarrival_cv,
    summarize,
)
from repro.arrivals.distributions import (
    ArrivalDistribution,
    DeterministicArrivals,
    GammaArrivals,
    PoissonArrivals,
)
from repro.arrivals.processes import ArrivalProcess, sample_arrival_times
from repro.arrivals.traces import (
    LoadTrace,
    synthesize_twitter_trace,
)

__all__ = [
    "ArrivalDistribution",
    "PoissonArrivals",
    "GammaArrivals",
    "DeterministicArrivals",
    "LoadTrace",
    "synthesize_twitter_trace",
    "ArrivalProcess",
    "sample_arrival_times",
    "ArrivalPatternSummary",
    "interarrival_cv",
    "dispersion_index",
    "find_lulls",
    "find_bursts",
    "summarize",
]
