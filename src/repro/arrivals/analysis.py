"""Arrival-pattern analytics: quantifying bursts and lulls (§2.1).

The paper's premise is that inference query traces exhibit *stochastic
inter-arrival patterns* — variance in inter-arrival times at constant load,
with intermittent bursts and lulls that load-granular MS&S schemes cannot
exploit.  This module provides the measurements that make the premise
inspectable on any timestamp array:

- :func:`interarrival_cv` — coefficient of variation of the gaps
  (1 for Poisson, < 1 smoother, > 1 burstier);
- :func:`dispersion_index` — variance-to-mean ratio of windowed counts
  (again 1 for Poisson);
- :func:`find_lulls` / :func:`find_bursts` — the §2.2 opportunities: gaps
  much longer than the mean, and windows with far more arrivals than
  expected;
- :func:`summarize` — one dataclass with all of the above, used by the
  trace example and the workload tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = [
    "ArrivalPatternSummary",
    "interarrival_cv",
    "dispersion_index",
    "find_lulls",
    "find_bursts",
    "summarize",
]


def _gaps(arrival_times_ms: np.ndarray) -> np.ndarray:
    times = np.asarray(arrival_times_ms, dtype=np.float64)
    if times.ndim != 1 or times.shape[0] < 2:
        raise ValueError("need at least two arrival timestamps")
    if np.any(np.diff(times) < 0):
        raise ValueError("arrival timestamps must be sorted")
    return np.diff(times)


def interarrival_cv(arrival_times_ms: np.ndarray) -> float:
    """Coefficient of variation (std/mean) of the inter-arrival gaps.

    Exponential gaps (Poisson process) give 1; Erlang-K gives 1/sqrt(K);
    heavy-tailed/bursty processes exceed 1.
    """
    gaps = _gaps(arrival_times_ms)
    mean = float(gaps.mean())
    if mean == 0.0:
        return 0.0
    return float(gaps.std(ddof=1) / mean)


def dispersion_index(
    arrival_times_ms: np.ndarray, window_ms: float = 1_000.0
) -> float:
    """Variance-to-mean ratio of counts in fixed windows (Fano factor).

    1 for Poisson; < 1 under-dispersed (regular); > 1 over-dispersed
    (bursty).  Needs at least five full windows for a stable estimate.
    """
    times = np.asarray(arrival_times_ms, dtype=np.float64)
    if times.shape[0] < 2:
        raise ValueError("need at least two arrival timestamps")
    if window_ms <= 0:
        raise ValueError("window_ms must be > 0")
    span = float(times[-1] - times[0])
    bins = int(span // window_ms)
    if bins < 5:
        raise ValueError(
            f"trace spans only {bins} windows of {window_ms} ms; "
            "use a smaller window"
        )
    edges = times[0] + np.arange(bins + 1) * window_ms
    counts, _ = np.histogram(times, bins=edges)
    mean = float(counts.mean())
    if mean == 0.0:
        return 0.0
    return float(counts.var(ddof=1) / mean)


def find_lulls(
    arrival_times_ms: np.ndarray, threshold: float = 3.0
) -> List[Tuple[float, float]]:
    """Gaps longer than ``threshold`` times the mean gap.

    Returns ``(start_ms, end_ms)`` spans — the §2.2 windows during which a
    slower, more accurate model can be safely selected.
    """
    times = np.asarray(arrival_times_ms, dtype=np.float64)
    gaps = _gaps(times)
    mean = float(gaps.mean())
    indices = np.nonzero(gaps > threshold * mean)[0]
    return [(float(times[i]), float(times[i + 1])) for i in indices]


def find_bursts(
    arrival_times_ms: np.ndarray,
    window_ms: float = 500.0,
    threshold: float = 2.0,
) -> List[Tuple[float, int]]:
    """Windows whose arrival count exceeds ``threshold`` times the mean.

    Returns ``(window_start_ms, count)`` — the arrival spikes that punish
    optimistic MS&S decisions (§2.1).
    """
    times = np.asarray(arrival_times_ms, dtype=np.float64)
    if times.shape[0] < 2:
        raise ValueError("need at least two arrival timestamps")
    span = float(times[-1] - times[0])
    bins = max(int(span // window_ms), 1)
    edges = times[0] + np.arange(bins + 1) * window_ms
    counts, _ = np.histogram(times, bins=edges)
    mean = counts.mean()
    out: List[Tuple[float, int]] = []
    for i, count in enumerate(counts):
        if count > threshold * mean:
            out.append((float(edges[i]), int(count)))
    return out


@dataclass(frozen=True)
class ArrivalPatternSummary:
    """All pattern statistics for one arrival realization."""

    num_arrivals: int
    duration_ms: float
    mean_rate_qps: float
    interarrival_cv: float
    dispersion_index: float
    num_lulls: int
    num_bursts: int
    longest_lull_ms: float

    @property
    def poisson_like(self) -> bool:
        """Both second-order statistics within 15% of the Poisson value."""
        return abs(self.interarrival_cv - 1.0) < 0.15 and (
            abs(self.dispersion_index - 1.0) < 0.15
        )


def summarize(
    arrival_times_ms: np.ndarray,
    window_ms: float = 1_000.0,
    lull_threshold: float = 3.0,
    burst_threshold: float = 2.0,
) -> ArrivalPatternSummary:
    """Compute the full :class:`ArrivalPatternSummary`."""
    times = np.asarray(arrival_times_ms, dtype=np.float64)
    gaps = _gaps(times)
    duration = float(times[-1] - times[0])
    lulls = find_lulls(times, threshold=lull_threshold)
    bursts = find_bursts(times, window_ms=window_ms / 2, threshold=burst_threshold)
    return ArrivalPatternSummary(
        num_arrivals=int(times.shape[0]),
        duration_ms=duration,
        mean_rate_qps=(times.shape[0] - 1) / duration * 1000.0 if duration else 0.0,
        interarrival_cv=interarrival_cv(times),
        dispersion_index=dispersion_index(times, window_ms=window_ms),
        num_lulls=len(lulls),
        num_bursts=len(bursts),
        longest_lull_ms=float(gaps.max()),
    )
