"""Sampling concrete query arrival timestamps from a trace + pattern.

The paper samples arrival times of each query via a Poisson process under
the trace's interval loads (§7 "Workloads"): within each trace interval the
process is homogeneous at the interval's QPS, i.e. the overall process is a
piecewise-constant-rate (inhomogeneous) renewal process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.arrivals.distributions import ArrivalDistribution, PoissonArrivals
from repro.arrivals.traces import LoadTrace

__all__ = ["ArrivalProcess", "sample_arrival_times"]


@dataclass(frozen=True)
class ArrivalProcess:
    """A load trace paired with an inter-arrival pattern family.

    The ``pattern`` argument supplies the *family* (Poisson, Gamma, ...);
    its load is re-parameterized per trace interval.
    """

    trace: LoadTrace
    pattern: ArrivalDistribution

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one realization of arrival timestamps (ms, sorted)."""
        return sample_arrival_times(self.trace, self.pattern, rng)

    def expected_queries(self) -> float:
        """Expected total number of arrivals."""
        return self.trace.expected_queries()


def sample_arrival_times(
    trace: LoadTrace,
    pattern: ArrivalDistribution | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Sample arrival timestamps (in ms) across ``trace``.

    Within each trace interval the inter-arrival pattern runs at the
    interval's query load; gaps are drawn until the interval ends and the
    residual gap carries over into the next interval scaled by the rate
    ratio, so a long lull straddling an interval boundary is preserved.

    Parameters
    ----------
    trace:
        The piecewise-constant load trace.
    pattern:
        Inter-arrival pattern family; defaults to Poisson at the trace's
        mean load (the actual rate is re-set per interval).
    rng:
        NumPy random generator; defaults to a fresh seeded generator.

    Returns
    -------
    Sorted array of arrival timestamps in milliseconds, all within
    ``[0, trace.duration_ms)``.
    """
    if pattern is None:
        pattern = PoissonArrivals(max(trace.mean_qps, 1e-9))
    if rng is None:
        rng = np.random.default_rng(0)

    arrivals: List[np.ndarray] = []
    # `pending_fraction` carries the *fraction of a gap* still to elapse
    # across an interval boundary, so rate changes rescale the residual.
    pending_fraction = _draw_gap_fraction(rng, pattern)
    for start_ms, end_ms, qps in trace.intervals():
        if qps <= 0.0:
            continue
        interval_pattern = pattern.with_load(qps)
        mean_gap = interval_pattern.mean_interarrival_ms
        t = start_ms + pending_fraction * mean_gap
        if t >= end_ms:
            pending_fraction = (t - end_ms) / mean_gap
            continue
        # Draw gaps in blocks until the interval is exhausted.  `t` is always
        # the timestamp of the *next* arrival to place.
        expected = max(int((end_ms - t) / mean_gap * 1.3) + 16, 16)
        times: List[float] = []
        while True:
            gaps = interval_pattern.sample_interarrivals(rng, expected)
            # Arrival i of this block lands at t + sum(gaps[:i]).
            block = t + np.concatenate(([0.0], np.cumsum(gaps[:-1])))
            inside = block < end_ms
            times.extend(block[inside].tolist())
            if not inside.all():
                first_outside = float(block[~inside][0])
                pending_fraction = (first_outside - end_ms) / mean_gap
                break
            t = float(block[-1] + gaps[-1])
            if t >= end_ms:
                pending_fraction = (t - end_ms) / mean_gap
                break
            expected = max(expected // 2, 16)
        arrivals.append(np.asarray(times, dtype=np.float64))

    if not arrivals:
        return np.empty(0, dtype=np.float64)
    return np.concatenate(arrivals)


def _draw_gap_fraction(
    rng: np.random.Generator, pattern: ArrivalDistribution
) -> float:
    """Initial gap offset, as a fraction of the mean inter-arrival time."""
    gap = float(pattern.sample_interarrivals(rng, 1)[0])
    return gap / pattern.mean_interarrival_ms
