"""Query arrival distributions ``PF(k, T)``.

RAMSIS (§3.1.1) consumes an arrival distribution that gives the probability
of ``k`` query arrivals at the central queue during a window of length ``T``
milliseconds.  The transition-probability derivation (§4.4) additionally
assumes the arrival process has *independent and stationary increments*,
which holds exactly for the Poisson process.  For the Gamma and deterministic
processes implemented here the counting probabilities are those of an
ordinary renewal process started at the window boundary; treating their
increments as independent (as the kernel construction does) is the same
approximation the paper invokes when it suggests Gamma arrivals.

All rates are expressed as query load in **queries per second (QPS)**; all
window lengths ``T`` are in **milliseconds**, matching the library-wide time
convention.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from repro._util import qps_to_per_ms, validate_positive

__all__ = [
    "ArrivalDistribution",
    "PoissonArrivals",
    "GammaArrivals",
    "DeterministicArrivals",
]

#: Tail mass below which count supports are truncated when building kernels.
_TAIL_EPSILON = 1e-12


class ArrivalDistribution(abc.ABC):
    """Counting distribution of query arrivals in a time window.

    Subclasses implement :meth:`pmf_vector` (vectorized probabilities of
    0..kmax arrivals in a window) and :meth:`sample_interarrivals` (used by
    the simulator and the wall-clock runtime to draw concrete arrival
    timestamps).
    """

    def __init__(self, load_qps: float) -> None:
        validate_positive("load_qps", load_qps)
        self._load_qps = float(load_qps)

    @property
    def load_qps(self) -> float:
        """Mean query load in queries per second."""
        return self._load_qps

    @property
    def rate_per_ms(self) -> float:
        """Mean arrival rate in queries per millisecond."""
        return qps_to_per_ms(self._load_qps)

    @property
    def mean_interarrival_ms(self) -> float:
        """Mean time between consecutive arrivals, in milliseconds."""
        return 1.0 / self.rate_per_ms

    # ------------------------------------------------------------------
    # Counting probabilities
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pmf_vector(self, kmax: int, window_ms: float) -> np.ndarray:
        """Probabilities of ``0..kmax`` arrivals in a window of ``window_ms``.

        Must return a float array of length ``kmax + 1``.  ``window_ms == 0``
        must yield the degenerate distribution at ``k == 0``.
        """

    def pmf(self, k: int, window_ms: float) -> float:
        """Probability of exactly ``k`` arrivals in ``window_ms``."""
        if k < 0:
            return 0.0
        return float(self.pmf_vector(k, window_ms)[k])

    def pmf_matrix(self, kmax: int, windows_ms: np.ndarray) -> np.ndarray:
        """``(len(windows), kmax + 1)`` matrix of counting pmfs.

        Row ``i`` equals ``pmf_vector(kmax, windows_ms[i])`` bit-for-bit —
        kernel builders batch their per-slack-bin pmf computations through
        this method, and the bank-equivalence tests rely on the identity.
        Subclasses override with closed-form batched implementations; the
        base implementation simply stacks :meth:`pmf_vector` rows.
        """
        windows = np.asarray(windows_ms, dtype=np.float64)
        if windows.ndim != 1:
            raise ValueError(f"windows_ms must be 1-D, got shape {windows.shape}")
        return np.stack([self.pmf_vector(kmax, float(w)) for w in windows])

    def cdf_vector(self, kmax: int, window_ms: float) -> np.ndarray:
        """Cumulative probabilities ``P[N <= k]`` for ``k = 0..kmax``."""
        return np.cumsum(self.pmf_vector(kmax, window_ms))

    def cdf(self, k: int, window_ms: float) -> float:
        """Probability of at most ``k`` arrivals in ``window_ms``."""
        if k < 0:
            return 0.0
        return float(self.cdf_vector(k, window_ms)[k])

    def support_bound(self, window_ms: float, epsilon: float = _TAIL_EPSILON) -> int:
        """Smallest ``k`` such that ``P[N > k] <= epsilon``.

        Kernel builders use this to truncate the otherwise-infinite sums of
        the paper's Eq. 2 without losing more than ``epsilon`` mass.
        """
        if window_ms <= 0.0:
            return 0
        mean_count = self.rate_per_ms * window_ms
        # Start from a generous Gaussian bound, then refine with the CDF.
        guess = int(math.ceil(mean_count + 12.0 * math.sqrt(mean_count + 1.0))) + 8
        for _ in range(8):
            cdf = self.cdf_vector(guess, window_ms)
            above = np.nonzero(cdf >= 1.0 - epsilon)[0]
            if above.size:
                return int(above[0])
            # Numerically saturated: the cumulative sum cannot reach
            # 1 - epsilon due to float64 rounding (large means), yet the
            # support is covered.  Take the first index within epsilon of
            # the achieved total instead of doubling forever.
            if cdf[-1] >= 1.0 - 1e6 * epsilon:
                near = np.nonzero(cdf >= cdf[-1] - epsilon)[0]
                return int(near[0]) if near.size else guess
            guess *= 2
        return guess

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` consecutive inter-arrival gaps, in milliseconds."""

    # ------------------------------------------------------------------
    # Derived distributions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def with_load(self, load_qps: float) -> "ArrivalDistribution":
        """A distribution of the same family at a different query load."""

    def split(self, num_workers: int) -> "ArrivalDistribution":
        """Marginal per-worker arrival distribution under an even split.

        The default implementation keeps the family and divides the load,
        which models a *random* (Bernoulli) split.  This is exact for the
        Poisson process and conservative (burstier than reality) for a
        round-robin split; see :meth:`PoissonArrivals.split_round_robin`
        for the exact round-robin marginal.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        return self.with_load(self._load_qps / num_workers)

    def split_round_robin(self, num_workers: int) -> "ArrivalDistribution":
        """Marginal per-worker arrival process under round-robin balancing.

        Taking every ``K``-th event of a renewal process sums ``K``
        consecutive gaps, which is far more regular than a random split —
        the paper's exact §4.4.2 derivation embeds exactly this effect.
        Subclasses with a closed-form thinned process override this; the
        base implementation falls back to the (conservative) random split.
        """
        return self.split(num_workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(load_qps={self._load_qps:g})"


class PoissonArrivals(ArrivalDistribution):
    """Poisson arrival process — the paper's default inter-arrival pattern.

    ``PF(k, T) = exp(-lambda T) (lambda T)^k / k!`` with ``lambda`` the
    arrival rate.  The Poisson process is the unique renewal process with
    independent and stationary increments, so the transition-kernel
    factorization of §4.4 is exact for this class.
    """

    def pmf_vector(self, kmax: int, window_ms: float) -> np.ndarray:
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        out = np.zeros(kmax + 1, dtype=np.float64)
        mu = self.rate_per_ms * max(window_ms, 0.0)
        if mu == 0.0:
            out[0] = 1.0
            return out
        # Stable recurrence in log space via cumulative sums.
        ks = np.arange(kmax + 1, dtype=np.float64)
        log_pmf = ks * math.log(mu) - mu - _log_factorial(kmax)
        np.exp(log_pmf, out=out)
        return out

    def pmf_matrix(self, kmax: int, windows_ms: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows_ms, dtype=np.float64)
        if windows.ndim != 1:
            raise ValueError(f"windows_ms must be 1-D, got shape {windows.shape}")
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        out = np.zeros((windows.size, kmax + 1), dtype=np.float64)
        mus = self.rate_per_ms * np.maximum(windows, 0.0)
        # Per-row scalar logs keep every row bit-identical to pmf_vector
        # (math.log and np.log may differ in the last ulp).
        log_mus = np.array(
            [math.log(mu) if mu > 0.0 else 0.0 for mu in mus]
        )
        ks = np.arange(kmax + 1, dtype=np.float64)
        log_pmf = (
            ks[None, :] * log_mus[:, None]
            - mus[:, None]
            - _log_factorial(kmax)[None, :]
        )
        np.exp(log_pmf, out=out)
        zero = mus == 0.0
        if zero.any():
            out[zero] = 0.0
            out[zero, 0] = 1.0
        return out

    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.exponential(scale=self.mean_interarrival_ms, size=count)

    def with_load(self, load_qps: float) -> "PoissonArrivals":
        return PoissonArrivals(load_qps)

    def split_round_robin(self, num_workers: int) -> "ArrivalDistribution":
        """Exact marginal per-worker process under round-robin balancing.

        Taking every ``K``-th event of a Poisson process with rate
        ``lambda`` yields a renewal process with Erlang(``K``, ``lambda``)
        inter-arrivals, i.e. a Gamma renewal process with shape ``K`` and
        mean rate ``lambda / K``.  Less bursty than :meth:`split`.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if num_workers == 1:
            return self
        return GammaArrivals(self._load_qps / num_workers, shape=float(num_workers))


def _log_factorial(kmax: int) -> np.ndarray:
    """``log(k!)`` for ``k = 0..kmax`` via cumulative log sums."""
    if kmax == 0:
        return np.zeros(1)
    logs = np.concatenate(([0.0], np.log(np.arange(1, kmax + 1, dtype=np.float64))))
    return np.cumsum(logs)


class GammaArrivals(ArrivalDistribution):
    """Gamma renewal arrival process (§3.1.1 mentions Gamma as an option).

    Inter-arrival gaps are i.i.d. Gamma(shape, scale) with the scale chosen
    so the mean rate matches ``load_qps``.  ``shape == 1`` recovers the
    Poisson process; ``shape > 1`` is more regular (less bursty) and
    ``shape < 1`` burstier.

    The counting pmf uses the ordinary-renewal identity
    ``P[N(T) = k] = F_k(T) - F_{k+1}(T)`` where ``F_k`` is the CDF of the
    sum of ``k`` gaps — itself Gamma(``k * shape``, scale).
    """

    def __init__(self, load_qps: float, shape: float = 2.0) -> None:
        super().__init__(load_qps)
        validate_positive("shape", shape)
        self._shape = float(shape)
        #: scale in ms so that mean gap = shape * scale = 1 / rate_per_ms
        self._scale_ms = self.mean_interarrival_ms / self._shape

    @property
    def shape(self) -> float:
        """Gamma shape parameter of the inter-arrival gaps."""
        return self._shape

    def pmf_vector(self, kmax: int, window_ms: float) -> np.ndarray:
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        out = np.zeros(kmax + 1, dtype=np.float64)
        if window_ms <= 0.0:
            out[0] = 1.0
            return out
        from scipy.special import gammainc  # local import keeps start-up light

        # F_k(T) = regularized lower incomplete gamma of (k * shape, T / scale)
        ks = np.arange(1, kmax + 2, dtype=np.float64) * self._shape
        x = window_ms / self._scale_ms
        cdfs = gammainc(ks, x)
        out[0] = 1.0 - cdfs[0]
        out[1:] = cdfs[:-1] - cdfs[1:]
        np.clip(out, 0.0, 1.0, out=out)
        return out

    def pmf_matrix(self, kmax: int, windows_ms: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows_ms, dtype=np.float64)
        if windows.ndim != 1:
            raise ValueError(f"windows_ms must be 1-D, got shape {windows.shape}")
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        from scipy.special import gammainc

        out = np.zeros((windows.size, kmax + 1), dtype=np.float64)
        live = windows > 0.0
        out[~live, 0] = 1.0
        if live.any():
            ks = np.arange(1, kmax + 2, dtype=np.float64) * self._shape
            xs = windows[live] / self._scale_ms
            cdfs = gammainc(ks[None, :], xs[:, None])  # elementwise ufunc
            block = np.zeros((int(live.sum()), kmax + 1), dtype=np.float64)
            block[:, 0] = 1.0 - cdfs[:, 0]
            block[:, 1:] = cdfs[:, :-1] - cdfs[:, 1:]
            np.clip(block, 0.0, 1.0, out=block)
            out[live] = block
        return out

    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.gamma(shape=self._shape, scale=self._scale_ms, size=count)

    def with_load(self, load_qps: float) -> "GammaArrivals":
        return GammaArrivals(load_qps, shape=self._shape)

    def split_round_robin(self, num_workers: int) -> "GammaArrivals":
        """Every K-th event of a Gamma renewal process sums K gaps —
        again Gamma, with shape multiplied by K."""
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        return GammaArrivals(
            self._load_qps / num_workers, shape=self._shape * num_workers
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GammaArrivals(load_qps={self._load_qps:g}, shape={self._shape:g})"


class DeterministicArrivals(ArrivalDistribution):
    """Evenly spaced arrivals — a zero-variance inter-arrival pattern.

    Useful in tests and as the limiting "no burstiness" case: with
    deterministic arrivals a load-granular MS&S scheme loses nothing by
    ignoring the inter-arrival pattern, so RAMSIS's advantage should vanish.
    """

    def pmf_vector(self, kmax: int, window_ms: float) -> np.ndarray:
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        out = np.zeros(kmax + 1, dtype=np.float64)
        gap = self.mean_interarrival_ms
        count = int(max(window_ms, 0.0) // gap)
        out[min(count, kmax)] = 1.0 if count <= kmax else 0.0
        if count > kmax:
            # All mass beyond the requested support; report a zero vector so
            # callers relying on `support_bound` notice the truncation.
            out[:] = 0.0
        return out

    def pmf_matrix(self, kmax: int, windows_ms: np.ndarray) -> np.ndarray:
        windows = np.asarray(windows_ms, dtype=np.float64)
        if windows.ndim != 1:
            raise ValueError(f"windows_ms must be 1-D, got shape {windows.shape}")
        if kmax < 0:
            raise ValueError(f"kmax must be >= 0, got {kmax}")
        out = np.zeros((windows.size, kmax + 1), dtype=np.float64)
        gap = self.mean_interarrival_ms
        counts = (np.maximum(windows, 0.0) // gap).astype(np.int64)
        inside = counts <= kmax  # rows past the support stay all-zero
        out[np.nonzero(inside)[0], counts[inside]] = 1.0
        return out

    def sample_interarrivals(self, rng: np.random.Generator, count: int) -> np.ndarray:
        del rng  # deterministic by definition
        return np.full(count, self.mean_interarrival_ms, dtype=np.float64)

    def with_load(self, load_qps: float) -> "DeterministicArrivals":
        return DeterministicArrivals(load_qps)


def resolve_distribution(
    name: str, load_qps: float, shape: Optional[float] = None
) -> ArrivalDistribution:
    """Factory mapping a distribution name to an instance.

    Recognized names: ``"poisson"``, ``"gamma"``, ``"deterministic"``.
    """
    lowered = name.strip().lower()
    if lowered == "poisson":
        return PoissonArrivals(load_qps)
    if lowered == "gamma":
        return GammaArrivals(load_qps, shape=shape if shape is not None else 2.0)
    if lowered == "deterministic":
        return DeterministicArrivals(load_qps)
    raise ValueError(f"unknown arrival distribution {name!r}")
