"""Query-load traces.

The paper evaluates on a 24-hour production Twitter trace scaled down to
five minutes (§7 "Workloads"): a text file listing the average queries per
second (QPS) for consecutive ten-second intervals, ranging from 1,617 to
3,905 QPS, with diurnal structure and unexpected spikes.

The original archive.org dataset is not available offline, so
:func:`synthesize_twitter_trace` deterministically generates a trace with
the same data shape (QPS per 10-second interval), the same QPS envelope,
compressed diurnal humps, and injected spikes.  Everything downstream —
simulator, baselines, benchmarks — consumes only the interval-QPS
representation, exactly like the paper's artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Tuple, Union

import numpy as np

from repro.errors import TraceError

__all__ = ["LoadTrace", "synthesize_twitter_trace"]


@dataclass(frozen=True)
class LoadTrace:
    """A piecewise-constant query-load trace.

    Attributes
    ----------
    interval_ms:
        Length of each interval in milliseconds (the Twitter trace uses
        10-second intervals, i.e. ``10_000``).
    qps:
        Average query load during each interval, in queries per second.
    name:
        Human-readable identifier used in reports.
    """

    interval_ms: float
    qps: Tuple[float, ...]
    name: str = "trace"

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise TraceError(f"interval_ms must be > 0, got {self.interval_ms}")
        if not self.qps:
            raise TraceError("trace must contain at least one interval")
        if any(q < 0 for q in self.qps):
            raise TraceError("trace QPS values must be non-negative")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def duration_ms(self) -> float:
        """Total trace duration in milliseconds."""
        return self.interval_ms * len(self.qps)

    @property
    def peak_qps(self) -> float:
        """Highest interval load."""
        return max(self.qps)

    @property
    def min_qps(self) -> float:
        """Lowest interval load."""
        return min(self.qps)

    @property
    def mean_qps(self) -> float:
        """Time-average load across the trace."""
        return sum(self.qps) / len(self.qps)

    def expected_queries(self) -> float:
        """Expected number of query arrivals across the whole trace."""
        return sum(q * self.interval_ms / 1000.0 for q in self.qps)

    def load_at(self, t_ms: float) -> float:
        """Query load in effect at absolute trace time ``t_ms``."""
        if t_ms < 0 or t_ms >= self.duration_ms:
            raise TraceError(
                f"time {t_ms} ms outside trace duration {self.duration_ms} ms"
            )
        return self.qps[int(t_ms // self.interval_ms)]

    def intervals(self) -> Iterator[Tuple[float, float, float]]:
        """Yield ``(start_ms, end_ms, qps)`` per interval, in order."""
        for i, q in enumerate(self.qps):
            yield (i * self.interval_ms, (i + 1) * self.interval_ms, q)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def constant(qps: float, duration_ms: float, name: str = "constant") -> "LoadTrace":
        """A single-interval constant-load trace (§7.2's workloads)."""
        return LoadTrace(interval_ms=duration_ms, qps=(qps,), name=name)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def scaled(self, factor: float, name: str | None = None) -> "LoadTrace":
        """Scale every interval's QPS by ``factor``.

        Used to run paper-shaped workloads on smaller clusters while
        keeping per-worker load in the paper's regime (DESIGN.md §6).
        """
        if factor <= 0:
            raise TraceError(f"scale factor must be > 0, got {factor}")
        return LoadTrace(
            interval_ms=self.interval_ms,
            qps=tuple(q * factor for q in self.qps),
            name=name or f"{self.name}*{factor:g}",
        )

    def truncated(self, duration_ms: float) -> "LoadTrace":
        """Keep only the leading ``duration_ms`` worth of intervals."""
        count = max(1, int(math.ceil(duration_ms / self.interval_ms)))
        return LoadTrace(
            interval_ms=self.interval_ms,
            qps=self.qps[:count],
            name=f"{self.name}[:{count}]",
        )

    # ------------------------------------------------------------------
    # Serialization — same layout as the paper's artifact trace file:
    # one QPS value per line.
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as one QPS value per line (artifact format)."""
        lines = [f"{q:.6f}" for q in self.qps]
        Path(path).write_text("\n".join(lines) + "\n")

    @staticmethod
    def load(
        path: Union[str, Path], interval_ms: float = 10_000.0, name: str | None = None
    ) -> "LoadTrace":
        """Read a trace saved by :meth:`save` (or the original artifact file)."""
        path = Path(path)
        values: List[float] = []
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            stripped = raw.strip()
            if not stripped or stripped.startswith("#"):
                continue
            try:
                values.append(float(stripped))
            except ValueError as exc:
                raise TraceError(f"{path}:{lineno}: not a number: {stripped!r}") from exc
        if not values:
            raise TraceError(f"{path}: empty trace file")
        return LoadTrace(
            interval_ms=interval_ms, qps=tuple(values), name=name or path.stem
        )


def synthesize_twitter_trace(
    duration_s: float = 300.0,
    interval_s: float = 10.0,
    min_qps: float = 1617.0,
    max_qps: float = 3905.0,
    num_spikes: int = 3,
    seed: int = 2018,
) -> LoadTrace:
    """Deterministically synthesize a Twitter-shaped production trace.

    The paper's workload (§7) is a 24-hour Twitter trace compressed to five
    minutes: diurnal humps plus unexpected load spikes, with interval loads
    between 1,617 and 3,905 QPS.  This generator reproduces that shape:

    - a compressed diurnal curve (one slow daily hump over the trace) with
      a secondary harmonic,
    - multiplicative noise,
    - ``num_spikes`` sharp spikes at pseudo-random offsets,
    - an exact affine renormalization onto ``[min_qps, max_qps]``.

    The result is fully deterministic for a given ``seed``.
    """
    if duration_s <= 0 or interval_s <= 0:
        raise TraceError("duration_s and interval_s must be > 0")
    if min_qps <= 0 or max_qps <= min_qps:
        raise TraceError("require 0 < min_qps < max_qps")

    count = int(round(duration_s / interval_s))
    if count < 1:
        raise TraceError("trace must span at least one interval")
    rng = np.random.default_rng(seed)
    phase = np.linspace(0.0, 2.0 * math.pi, count, endpoint=False)

    # Compressed diurnal pattern: main daily hump + a morning/evening harmonic.
    base = 0.55 + 0.35 * np.sin(phase - 0.7) + 0.10 * np.sin(2.0 * phase + 0.4)
    noise = rng.normal(loc=1.0, scale=0.035, size=count)
    curve = base * noise

    # Unexpected spikes: short bursts of +25-60% on 1-2 intervals each.
    for _ in range(num_spikes):
        at = int(rng.integers(0, count))
        width = int(rng.integers(1, 3))
        boost = 1.0 + float(rng.uniform(0.25, 0.6))
        curve[at : at + width] *= boost

    lo, hi = float(curve.min()), float(curve.max())
    normalized = (curve - lo) / (hi - lo)
    qps = min_qps + normalized * (max_qps - min_qps)
    return LoadTrace(
        interval_ms=interval_s * 1000.0,
        qps=tuple(float(q) for q in qps),
        name=f"twitter-synth-{seed}",
    )
