"""ModelSwitching baseline (§7 "Baseline MS&S Policies").

ModelSwitching [57] measures each model's *response latency* (queueing +
inference) under anticipated query loads in an offline profiling step, then
online selects the most accurate model whose 99th-percentile response
latency under the anticipated load stays within the SLO.  It shares the
baselines' scheduling strategy: central queue, eager workers, adaptive
batching with an SLO/2 latency budget.

The paper profiles response latency on its real testbed over a load grid
(400-4,000 QPS in steps of 100) for every resource configuration.  Here the
same measurement is taken against the simulator: each (model, load) cell
pins the model with :class:`~repro.selectors.fixed.FixedModelSelector`,
replays a constant-load Poisson trace, and records the p99 response
latency.  Profiles are cached in a :class:`ResponseLatencyTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.policy import Action
from repro.errors import CapacityError
from repro.profiles.models import ModelProfile, ModelSet
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext
from repro.selectors.fixed import FixedModelSelector

__all__ = [
    "ResponseLatencyTable",
    "profile_response_latency",
    "ModelSwitchingSelector",
]


@dataclass
class ResponseLatencyTable:
    """Offline-profiled p99 response latency per (model, load) cell.

    ``loads_qps`` is the profiled load grid (ascending).  Lookups for an
    arbitrary anticipated load use the next grid point **at or above** it —
    the conservative rounding a production profiler would use.
    """

    loads_qps: Tuple[float, ...]
    p99_ms: Dict[str, Tuple[float, ...]] = field(default_factory=dict)

    def p99_at(self, model_name: str, load_qps: float) -> float:
        """p99 response latency of ``model_name`` at ``load_qps``.

        Loads above the grid return the top cell's value — by construction
        the profiling grid covers the relevant range, and past saturation
        the p99 only grows, so this stays conservative *within* the grid.
        """
        series = self.p99_ms[model_name]
        for load, value in zip(self.loads_qps, series):
            if load >= load_qps:
                return value
        return series[-1]

    def models(self) -> List[str]:
        """Profiled model names."""
        return sorted(self.p99_ms)


def profile_response_latency(
    model_set: ModelSet,
    loads_qps: Sequence[float],
    num_workers: int,
    slo_ms: float,
    max_batch_size: int = 32,
    duration_ms: float = 10_000.0,
    seed: int = 7,
    pareto_only: bool = True,
) -> ResponseLatencyTable:
    """Measure the ModelSwitching offline profile against the simulator.

    Only Pareto-front models are profiled by default: a dominated model is
    never the most accurate feasible choice.  Each cell replays
    ``duration_ms`` of constant-load Poisson arrivals with the model
    pinned and adaptive batching, and records the p99 response latency.
    """
    # Imported here: the simulator depends on the selector *interface*, and
    # this profiler closes the loop by driving the simulator.
    from repro.sim.latency_model import DeterministicLatency
    from repro.sim.simulator import Simulation, SimulationConfig

    loads = tuple(sorted(float(q) for q in loads_qps))
    if not loads:
        raise CapacityError("profiling requires a non-empty load grid")
    models = model_set.pareto_front() if pareto_only else model_set
    table = ResponseLatencyTable(loads_qps=loads)
    for model in models:
        series: List[float] = []
        for load in loads:
            trace = LoadTrace.constant(load, duration_ms, name="profile")
            sim = Simulation(
                SimulationConfig(
                    model_set=model_set,
                    slo_ms=slo_ms,
                    num_workers=num_workers,
                    max_batch_size=max_batch_size,
                    latency_model=DeterministicLatency(),
                    seed=seed,
                )
            )
            metrics = sim.run(
                FixedModelSelector(model.name),
                trace,
                pattern=PoissonArrivals(load),
            )
            series.append(metrics.p99_response_ms)
        table.p99_ms[model.name] = tuple(series)
    return table


class ModelSwitchingSelector(ModelSelector):
    """Most accurate model whose profiled p99 response latency meets the SLO."""

    queue_scope = QueueScope.CENTRAL
    name = "ModelSwitching"

    def __init__(self, table: ResponseLatencyTable) -> None:
        self._table = table

    def bind(self, context: SelectorContext) -> None:
        super().bind(context)
        budget = context.slo_ms / 2.0
        cap = context.max_batch_size
        self._ranked: List[Tuple[float, ModelProfile, int]] = []
        for name in self._table.models():
            model = context.model_set.get(name)
            max_batch = model.max_batch_within(budget, cap)
            if max_batch is None:
                max_batch = 1  # too slow for adaptive batching; serve singly
            self._ranked.append((model.accuracy, model, max_batch))
        if not self._ranked:
            raise CapacityError("response-latency table is empty")
        self._ranked.sort(key=lambda row: -row[0])

    def model_for_load(self, load_qps: float) -> Tuple[ModelProfile, int]:
        """Most accurate (model, max batch) whose p99 fits the SLO."""
        slo = self.context.slo_ms
        fallback: Optional[Tuple[ModelProfile, int]] = None
        for _, model, max_batch in self._ranked:
            fallback = (model, max_batch)
            if self._table.p99_at(model.name, load_qps) <= slo:
                return model, max_batch
        assert fallback is not None
        return fallback  # nothing fits; fastest model, never drop

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        model, max_batch = self.model_for_load(anticipated_load_qps)
        return Action(model=model.name, batch_size=min(queue_length, max_batch))
