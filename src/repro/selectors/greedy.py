"""Greedy deadline-aware baseline (§8 "MS&S for Inference Latency Variance").

MDInference [33] and ALERT [48] greedily select the most accurate model
given the *currently arrived* queries and their deadlines — without
anticipating future arrivals.  The paper argues this is insufficient under
varying load and stochastic inter-arrival patterns: an optimistic decision
for one batch can starve the next burst.  Implemented here so the claim is
testable (see benchmarks/bench_ablation_greedy.py).
"""

from __future__ import annotations

from repro.core.policy import Action
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext

__all__ = ["GreedyDeadlineSelector"]


class GreedyDeadlineSelector(ModelSelector):
    """Most accurate model that meets the current earliest deadline."""

    queue_scope = QueueScope.PER_WORKER
    name = "Greedy"

    def bind(self, context: SelectorContext) -> None:
        super().bind(context)
        # Fastest-first; the scan below keeps the most accurate feasible.
        self._models = sorted(
            context.model_set.pareto_front(), key=lambda m: m.latency_ms(1)
        )

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        best = None
        for model in self._models:
            if model.latency_ms(queue_length) <= earliest_slack_ms:
                if best is None or model.accuracy > best.accuracy:
                    best = model
        if best is None:
            # Deadline unmeetable: serve late on the fastest model (§4.3.1).
            return Action(
                model=self._models[0].name, batch_size=queue_length, is_late=True
            )
        return Action(model=best.name, batch_size=queue_length)
