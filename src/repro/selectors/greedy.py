"""Greedy deadline-aware baseline (§8 "MS&S for Inference Latency Variance").

MDInference [33] and ALERT [48] greedily select the most accurate model
given the *currently arrived* queries and their deadlines — without
anticipating future arrivals.  The paper argues this is insufficient under
varying load and stochastic inter-arrival patterns: an optimistic decision
for one batch can starve the next burst.  Implemented here so the claim is
testable (see benchmarks/bench_ablation_greedy.py).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.policy import Action
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext

__all__ = ["GreedyDeadlineSelector"]


class GreedyDeadlineSelector(ModelSelector):
    """Most accurate model that meets the current earliest deadline."""

    queue_scope = QueueScope.PER_WORKER
    name = "Greedy"

    def bind(self, context: SelectorContext) -> None:
        super().bind(context)
        # Fastest-first; the scan below keeps the most accurate feasible.
        self._models = sorted(
            context.model_set.pareto_front(), key=lambda m: m.latency_ms(1)
        )
        # Actions are frozen, so one instance per (model, queue length,
        # lateness) is shared across decisions — the cache skips dataclass
        # construction on the online hot path.
        self._action_cache: Dict[Tuple[str, int, bool], Action] = {}

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        best = None
        for model in self._models:
            if model.latency_ms(queue_length) <= earliest_slack_ms:
                if best is None or model.accuracy > best.accuracy:
                    best = model
        if best is None:
            # Deadline unmeetable: serve late on the fastest model (§4.3.1).
            key = (self._models[0].name, queue_length, True)
        else:
            key = (best.name, queue_length, False)
        action = self._action_cache.get(key)
        if action is None:
            action = Action(model=key[0], batch_size=queue_length, is_late=key[2])
            self._action_cache[key] = action
        return action
