"""Jellyfish+ baseline (§7 "Baseline MS&S Policies").

Jellyfish [32] assumes a single worker per SLO; Jellyfish+ extends it to
multiple workers.  Given an anticipated query load it selects the most
accurate model such that:

- the model's aggregate average throughput across workers exceeds the load,
  and
- the model's inference latency is below **half** the latency SLO — the
  conservative headroom Jellyfish/Nexus reserve for worst-case central
  queue wait.

Workers eagerly grab batches from the central queue up to an adaptive
maximum batch size — the largest batch whose profiled latency still fits
the SLO/2 budget (Clipper-style adaptive batching [7]).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.policy import Action
from repro.errors import CapacityError
from repro.profiles.models import ModelProfile
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext

__all__ = ["JellyfishPlusSelector"]


class JellyfishPlusSelector(ModelSelector):
    """Load-granular most-accurate-model selection with SLO/2 headroom."""

    queue_scope = QueueScope.CENTRAL
    name = "Jellyfish+"

    def bind(self, context: SelectorContext) -> None:
        super().bind(context)
        budget = context.slo_ms / 2.0
        cap = context.max_batch_size
        self._candidates: List[Tuple[float, ModelProfile, int, float]] = []
        for model in context.model_set.pareto_front():
            max_batch = model.max_batch_within(budget, cap)
            if max_batch is None:
                continue  # cannot serve even one query within SLO/2
            throughput = (
                model.peak_throughput_qps(budget, cap) * context.num_workers
            )
            self._candidates.append((model.accuracy, model, max_batch, throughput))
        if not self._candidates:
            raise CapacityError(
                f"no model can serve a query within SLO/2 = {budget} ms"
            )
        # Most accurate first so the first feasible candidate wins.
        self._candidates.sort(key=lambda row: -row[0])
        # Pre-built (throughput, actions-by-batch, max_batch) rows for
        # select(): Action is frozen, so sharing one instance per
        # (model, batch) across decisions is safe and skips the dataclass
        # construction on the online hot path.
        self._fast_rows: List[Tuple[float, Tuple[Action, ...], int]] = [
            (
                throughput,
                tuple(
                    Action(model=model.name, batch_size=b)
                    for b in range(1, max_batch + 1)
                ),
                max_batch,
            )
            for _, model, max_batch, throughput in self._candidates
        ]

    def model_for_load(self, load_qps: float) -> Tuple[ModelProfile, int]:
        """Most accurate (model, adaptive max batch) sustaining the load."""
        fallback: Optional[Tuple[ModelProfile, int]] = None
        for _, model, max_batch, throughput in self._candidates:
            fallback = (model, max_batch)  # least accurate seen so far
            if throughput >= load_qps:
                return model, max_batch
        # Load exceeds every model's throughput: serve with the fastest
        # (the paper's systems do not drop queries).
        assert fallback is not None
        return fallback

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        # model_for_load inlined over the pre-built rows: first feasible
        # candidate wins, else the last (least accurate) is the fallback.
        for row in self._fast_rows:
            if row[0] >= anticipated_load_qps:
                break
        actions, max_batch = row[1], row[2]
        batch = queue_length if queue_length < max_batch else max_batch
        return actions[batch - 1]
