"""Model selectors: RAMSIS and the baselines it is evaluated against (§7).

Every selector implements :class:`repro.selectors.base.ModelSelector` —
given a queue state, the current time, and the anticipated load, return a
``(model, batch size)`` decision:

- :class:`~repro.selectors.ramsis.RamsisSelector` — looks up the
  pre-computed MS policy for the anticipated load (§3.2.2);
- :class:`~repro.selectors.jellyfish.JellyfishPlusSelector` — Jellyfish [32]
  extended to multiple workers: most accurate model whose aggregate
  throughput sustains the load with inference latency under SLO/2;
- :class:`~repro.selectors.modelswitching.ModelSwitchingSelector` —
  ModelSwitching [57]: most accurate model whose offline-profiled p99
  *response* latency under the anticipated load meets the SLO;
- :class:`~repro.selectors.infaas.InfaasAdaptedSelector` — Appendix H's
  adaptation of INFaaS [38]: the lowest-latency model meeting an accuracy
  target;
- :class:`~repro.selectors.greedy.GreedyDeadlineSelector` — the
  MDInference/ALERT-style greedy policy (§8): most accurate model that
  meets the current earliest deadline, ignoring future arrivals;
- :class:`~repro.selectors.fixed.FixedModelSelector` — a pinned model, used
  by the ModelSwitching offline profiler and as an experiment control.
"""

from repro.selectors.base import ModelSelector, SelectorContext
from repro.selectors.fixed import FixedModelSelector
from repro.selectors.greedy import GreedyDeadlineSelector
from repro.selectors.infaas import InfaasAdaptedSelector
from repro.selectors.jellyfish import JellyfishPlusSelector
from repro.selectors.modelswitching import (
    ModelSwitchingSelector,
    ResponseLatencyTable,
    profile_response_latency,
)
from repro.selectors.ramsis import RamsisSelector
from repro.selectors.recording import DecisionRecord, RecordingSelector

__all__ = [
    "DecisionRecord",
    "RecordingSelector",
    "ModelSelector",
    "SelectorContext",
    "RamsisSelector",
    "JellyfishPlusSelector",
    "ModelSwitchingSelector",
    "ResponseLatencyTable",
    "profile_response_latency",
    "InfaasAdaptedSelector",
    "GreedyDeadlineSelector",
    "FixedModelSelector",
]
