"""Model-selector interface shared by RAMSIS and the baselines.

A selector is consulted whenever a worker is free and has pending queries.
It receives the worker-queue state (length + earliest slack), the current
simulation time, and the anticipated query load from the shared load
monitor, and returns an :class:`~repro.core.policy.Action`.

``queue_scope`` declares the scheduling discipline a selector is designed
for: RAMSIS-style selectors operate on per-worker queues filled by the load
balancer (§3.2), while the load-granular baselines let idle workers eagerly
grab batches from the central queue (§7 "Baseline MS&S Policies").
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass

from repro.core.policy import Action
from repro.profiles.models import ModelSet

__all__ = ["QueueScope", "SelectorContext", "ModelSelector"]


class QueueScope(enum.Enum):
    """Which queue a selector draws batches from."""

    PER_WORKER = "per_worker"
    CENTRAL = "central"


@dataclass(frozen=True)
class SelectorContext:
    """Run-wide facts handed to selectors before a simulation starts."""

    model_set: ModelSet
    slo_ms: float
    num_workers: int
    max_batch_size: int


class ModelSelector(abc.ABC):
    """Maps a queue state to a model-selection decision."""

    #: Scheduling discipline the selector expects (default: per-worker).
    queue_scope: QueueScope = QueueScope.PER_WORKER

    #: Short name used in experiment reports.
    name: str = "selector"

    def bind(self, context: SelectorContext) -> None:
        """Receive run-wide context; called once before serving starts."""
        self._context = context

    @property
    def context(self) -> SelectorContext:
        """The bound run context (raises if :meth:`bind` was skipped)."""
        try:
            return self._context
        except AttributeError:
            raise RuntimeError(
                f"{type(self).__name__} used before bind(); the simulator "
                "calls bind() automatically"
            ) from None

    @abc.abstractmethod
    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        """Decide ``(model, batch <= queue_length)`` for the queue state."""
