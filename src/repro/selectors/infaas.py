"""INFaaS-adapted baseline (Appendix H).

INFaaS [38] takes both an accuracy SLO and a latency SLO and selects the
lowest-cost (typically lowest-latency) model that meets both — a different
objective from RAMSIS's maximize-accuracy-under-latency-SLO.  Appendix H
adapts it to the paper's evaluation by sweeping accuracy targets over the
set of model accuracies; for each target the selector picks the
minimum-latency model that reaches the target and can sustain the load.
As in the appendix, its minimize-latency objective makes it select the
minimally accurate feasible model, so it never beats RAMSIS or the
baselines — reproduced by benchmarks/bench_apph_infaas.py.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.policy import Action
from repro.errors import CapacityError
from repro.profiles.models import ModelProfile
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext

__all__ = ["InfaasAdaptedSelector"]


class InfaasAdaptedSelector(ModelSelector):
    """Lowest-latency model meeting an accuracy target under the load."""

    queue_scope = QueueScope.CENTRAL
    name = "INFaaS"

    def __init__(self, accuracy_target: float) -> None:
        if not 0.0 <= accuracy_target <= 1.0:
            raise CapacityError(
                f"accuracy_target must be in [0, 1], got {accuracy_target}"
            )
        self._target = accuracy_target

    @property
    def accuracy_target(self) -> float:
        """The accuracy SLO being swept."""
        return self._target

    def bind(self, context: SelectorContext) -> None:
        super().bind(context)
        budget = context.slo_ms / 2.0
        cap = context.max_batch_size
        self._candidates: List[Tuple[float, ModelProfile, int, float]] = []
        for model in context.model_set.pareto_front():
            max_batch = model.max_batch_within(budget, cap)
            if max_batch is None:
                continue
            throughput = (
                model.peak_throughput_qps(budget, cap) * context.num_workers
            )
            self._candidates.append(
                (model.latency_ms(1), model, max_batch, throughput)
            )
        if not self._candidates:
            raise CapacityError(
                f"no model can serve a query within SLO/2 = {budget} ms"
            )
        self._candidates.sort(key=lambda row: row[0])  # lowest latency first

    def model_for_load(self, load_qps: float) -> Tuple[ModelProfile, int]:
        """Cheapest model meeting accuracy target + load, else fastest."""
        for _, model, max_batch, throughput in self._candidates:
            if model.accuracy >= self._target and throughput >= load_qps:
                return model, max_batch
        fastest = self._candidates[0]
        return fastest[1], fastest[2]

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        model, max_batch = self.model_for_load(anticipated_load_qps)
        return Action(model=model.name, batch_size=min(queue_length, max_batch))
