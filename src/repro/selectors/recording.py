"""A selector wrapper that records every MS&S decision.

Used by the Fig. 2 motivation experiment and available as a debugging tool:
wrap any selector and get the full decision log (time, queue state, action)
after a run — the paper's simulator "records MS&S decisions" the same way
(§6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.policy import Action
from repro.selectors.base import ModelSelector, SelectorContext

__all__ = ["DecisionRecord", "RecordingSelector"]


@dataclass(frozen=True)
class DecisionRecord:
    """One recorded MS&S decision."""

    now_ms: float
    queue_length: int
    earliest_slack_ms: float
    anticipated_load_qps: float
    action: Action


class RecordingSelector(ModelSelector):
    """Delegates to an inner selector and logs each decision."""

    def __init__(self, inner: ModelSelector) -> None:
        self._inner = inner
        self.queue_scope = inner.queue_scope
        self.name = f"{inner.name}+rec"
        self.decisions: List[DecisionRecord] = []

    def bind(self, context: SelectorContext) -> None:
        super().bind(context)
        self._inner.bind(context)
        self.decisions = []

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        action = self._inner.select(
            queue_length, earliest_slack_ms, now_ms, anticipated_load_qps
        )
        self.decisions.append(
            DecisionRecord(
                now_ms=now_ms,
                queue_length=queue_length,
                earliest_slack_ms=earliest_slack_ms,
                anticipated_load_qps=anticipated_load_qps,
                action=action,
            )
        )
        return action

    def models_used(self) -> List[str]:
        """Distinct models selected, in first-use order."""
        seen: List[str] = []
        for record in self.decisions:
            if record.action.model not in seen:
                seen.append(record.action.model)
        return seen
