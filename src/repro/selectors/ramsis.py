"""The RAMSIS online model selector (§3.2.2).

Per-worker model selectors service queries from their worker queue in
deadline order according to the offline-generated MS policies.  Given the
anticipated load from the monitor, the selector picks the lowest-load
pre-computed policy that meets it; if none does and a generator is
attached, a new policy is generated on the fly.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.core.policy import Action, Policy
from repro.core.policy_set import PolicySet
from repro.selectors.base import ModelSelector, QueueScope

__all__ = ["RamsisSelector"]


class RamsisSelector(ModelSelector):
    """Policy-set-driven selector for per-worker queues.

    Parameters
    ----------
    policies:
        Either one :class:`Policy` (pinned — used by the constant-load
        experiments where the load is known) or a :class:`PolicySet` for
        load-adaptive selection.
    on_policy_change:
        Optional ``(policy, now_ms)`` hook invoked when the effective
        policy changes — once up front with the initial policy (at
        ``now_ms = 0``) and then on every switch at decision time.  The
        live guarantee auditor uses it to re-arm its drift detector and
        swap the audited §5.1 bounds.
    """

    queue_scope = QueueScope.PER_WORKER
    name = "RAMSIS"

    def __init__(
        self,
        policies: Union[Policy, PolicySet],
        on_policy_change: Optional[Callable[[Policy, float], None]] = None,
    ) -> None:
        if isinstance(policies, Policy):
            self._set: Optional[PolicySet] = None
            self._pinned: Optional[Policy] = policies
        else:
            self._set = policies
            self._pinned = None
        self._on_policy_change = on_policy_change
        self._active: Optional[Policy] = None
        if on_policy_change is not None and self._pinned is not None:
            self._active = self._pinned
            on_policy_change(self._pinned, 0.0)

    @property
    def active_policy(self) -> Optional[Policy]:
        """The policy most recently used to serve a decision."""
        return self._active if self._active is not None else self._pinned

    def current_policy(self, anticipated_load_qps: float) -> Policy:
        """The policy in effect for the anticipated load."""
        if self._pinned is not None:
            return self._pinned
        assert self._set is not None
        return self._set.policy_for(anticipated_load_qps)

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        # Inlined current_policy(): one decision per served batch makes
        # this the online hot path.
        policy = self._pinned
        if policy is None:
            assert self._set is not None
            policy = self._set.policy_for(anticipated_load_qps)
        if policy is not self._active:
            self._active = policy
            if self._on_policy_change is not None:
                self._on_policy_change(policy, now_ms)
        return policy.action_for(queue_length, earliest_slack_ms)
