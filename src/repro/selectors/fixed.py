"""A selector pinned to one model.

Used by the ModelSwitching offline profiler (each model's response latency
is measured with that model pinned) and as an experiment control.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import Action
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext

__all__ = ["FixedModelSelector"]


class FixedModelSelector(ModelSelector):
    """Always select ``model_name`` with adaptive batching.

    ``batch_budget_ms`` caps the batch like the baselines do (largest batch
    whose profiled latency fits the budget); defaults to SLO/2, matching
    the baselines' shared scheduling strategy.
    """

    queue_scope = QueueScope.CENTRAL
    name = "Fixed"

    def __init__(
        self, model_name: str, batch_budget_ms: Optional[float] = None
    ) -> None:
        self._model_name = model_name
        self._budget_override = batch_budget_ms

    def bind(self, context: SelectorContext) -> None:
        super().bind(context)
        model = context.model_set.get(self._model_name)
        budget = (
            self._budget_override
            if self._budget_override is not None
            else context.slo_ms / 2.0
        )
        max_batch = model.max_batch_within(budget, context.max_batch_size)
        # A model too slow for the budget still serves one query at a time
        # (queries are never dropped).
        self._max_batch = max_batch if max_batch is not None else 1
        self._model = model

    def select(
        self,
        queue_length: int,
        earliest_slack_ms: float,
        now_ms: float,
        anticipated_load_qps: float,
    ) -> Action:
        return Action(
            model=self._model.name,
            batch_size=min(queue_length, self._max_batch),
        )
