"""repro — a reproduction of RAMSIS (EuroSys '24).

*Model Selection for Latency-Critical Inference Serving*,
Mendoza, Romero, Trippel — Markov-decision-process-based model selection
and scheduling for inference serving systems that accounts for stochastic
query inter-arrival patterns, not just load.

Quick start::

    from repro import (
        PoissonArrivals, WorkerMDPConfig, generate_policy,
        build_image_model_set,
    )

    models = build_image_model_set()
    config = WorkerMDPConfig.default_poisson(
        models, slo_ms=150.0, load_qps=40.0, num_workers=1,
    )
    result = generate_policy(config)
    print(result.guarantees.expected_accuracy)

See README.md for the architecture overview and DESIGN.md for the mapping
between paper sections and modules.
"""

from repro.arrivals import (
    ArrivalDistribution,
    DeterministicArrivals,
    GammaArrivals,
    LoadTrace,
    PoissonArrivals,
    synthesize_twitter_trace,
)
from repro.core import (
    Action,
    BatchingMode,
    Discretization,
    Policy,
    PolicyGenerator,
    PolicySet,
    TimeGrid,
    TransitionView,
    WorkerMDP,
    WorkerMDPConfig,
    build_worker_mdp,
    evaluate_policy,
    generate_policy,
    policy_iteration,
    value_iteration,
)
from repro.profiles import (
    LatencyProfile,
    LinearLatencyModel,
    ModelProfile,
    ModelSet,
    build_image_model_set,
    build_synthetic_model_set,
    build_text_model_set,
    build_three_model_image_set,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # arrivals
    "ArrivalDistribution",
    "PoissonArrivals",
    "GammaArrivals",
    "DeterministicArrivals",
    "LoadTrace",
    "synthesize_twitter_trace",
    # profiles
    "LatencyProfile",
    "LinearLatencyModel",
    "ModelProfile",
    "ModelSet",
    "build_image_model_set",
    "build_text_model_set",
    "build_synthetic_model_set",
    "build_three_model_image_set",
    # core
    "Action",
    "BatchingMode",
    "Discretization",
    "TransitionView",
    "TimeGrid",
    "WorkerMDPConfig",
    "WorkerMDP",
    "build_worker_mdp",
    "Policy",
    "PolicySet",
    "PolicyGenerator",
    "generate_policy",
    "evaluate_policy",
    "value_iteration",
    "policy_iteration",
]
