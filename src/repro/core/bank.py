"""Stacked policy-bank solver (``solver="stacked"``).

A policy bank solves the *same* worker MDP at many query loads (§6): the
grid, models, rewards, action validity, and partial-drain geometry are
identical across cells — only the arrival distribution (hence the
transition kernels and discount-by-duration terms) changes with load.
:class:`StackedBankMDP` exploits that by solving the whole load grid as
one batched tensor program instead of ``L`` independent solves:

- **kernel construction** batches the equilibrium-renewal quadrature
  across the load axis (the gammainc/CDF evaluations are elementwise in
  the load-dependent scale, while the §4.4 window geometry depends only
  on grid × latency), then seeds each cell's builder caches so per-cell
  assembly is a pure gather;
- **value iteration** runs one batched Bellman sweep per iteration over
  ``(L, ...)`` layouts with per-load convergence masks — converged loads
  freeze (their matmuls are skipped and their value slices stop
  updating), so every load observes exactly the trajectory and sweep
  count of its independent solve;
- **stationary analysis** interleaves the per-load power iterations with
  the same freeze masking, batching the normalization/residual
  elementwise work across loads.

Exactness contract
------------------
Results are **float-identical** to independent per-load tensor solves
(hence to the loop oracle), and ``Policy.save`` output is byte-identical
— the same guarantee the tensor backend gives against the loop backend.
The discipline that makes this hold: every matmul/einsum *reduction* is
invoked per load with exactly the per-load backend's operand shapes and
strides (batching a matmul across loads would dispatch a different BLAS
kernel and reassociate sums), while every *elementwise* op (add,
multiply, compare, max-reduce over in-row axes, gammainc, clip) batches
across the load axis — ufuncs are per-element, so batching them cannot
change a single bit.  ``tests/test_solver_equivalence.py`` asserts the
contract across views, batching modes, and random load grids;
``benchmarks/bench_policy_bank.py`` gates the bank-solve speedup floor
over the process-pool fan-out in CI via ``BENCH_policy_bank.json``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BatchingMode, TransitionView, WorkerMDPConfig
from repro.core.generator import GenerationResult, _annotate
from repro.core.guarantees import (
    PolicyGuarantees,
    _policy_action_table,
    evaluate_policy,
)
from repro.core.policy import Policy
from repro.core.solvers import SolveStats
from repro.core.tensor import TensorizedWorkerMDP
from repro.core.transitions import (
    DeterministicGaps,
    EquilibriumRenewalKernelBuilder,
    GammaGaps,
    _service_windows,
    gaps_for_distribution,
)
from repro.errors import ConfigurationError, SolverError
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["StackedBankMDP", "solve_stacked_bank", "STACKED_AUTO_MIN_CELLS"]

#: Pending-cell count at which ``solver="auto"`` picks the stacked bank
#: over serial per-load solves in :meth:`PolicyGenerator.generate_many`
#: (an explicit ``max_workers > 1`` process-pool request takes
#: precedence).  Below this, per-cell fixed costs dominate and the
#: stacked layout has nothing to amortize.
STACKED_AUTO_MIN_CELLS = 4


# ----------------------------------------------------------------------
# Batched renewal-gap evaluation (construction-time only)
# ----------------------------------------------------------------------
def _bc(arr: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape a ``(L,)`` per-load array to broadcast over ``ndim`` axes."""
    return arr.reshape(arr.shape + (1,) * ndim)


class _GammaGapStack:
    """:class:`GammaGaps` evaluated for all loads at once.

    Requires a shared ``shape`` across loads (always true for one arrival
    family swept over load: round-robin thinning fixes the shape and load
    only scales the gap).  Every method is elementwise in the per-load
    scale/mean, so each ``[i]`` slice of a result is bitwise identical to
    the corresponding per-load :class:`GammaGaps` call.
    """

    def __init__(self, gaps: Sequence[GammaGaps]) -> None:
        self.shape = gaps[0].shape
        self.scale_ms = np.array([g.scale_ms for g in gaps])
        self.mean_ms = np.array([g.mean_ms for g in gaps])

    def gap_cdf(self, u: np.ndarray) -> np.ndarray:
        from scipy.special import gammainc

        x = np.maximum(u, 0.0)[None] / _bc(self.scale_ms, u.ndim)
        return gammainc(self.shape, x)

    def kfold_cdf(self, k: int, t: np.ndarray) -> np.ndarray:
        from scipy.special import gammainc

        x = np.maximum(t, 0.0)[None] / _bc(self.scale_ms, t.ndim)
        return gammainc(k * self.shape, x)

    def equilibrium_cdf(self, t: float) -> np.ndarray:
        from scipy.special import gammainc

        if t <= 0.0:
            return np.zeros(self.scale_ms.size)
        x = t / self.scale_ms
        integral = (
            t - t * gammainc(self.shape, x)
            + self.mean_ms * gammainc(self.shape + 1.0, x)
        )
        return np.minimum(integral / self.mean_ms, 1.0)

    def equilibrium_density(self, u: np.ndarray) -> np.ndarray:
        return (1.0 - self.gap_cdf(u)) / _bc(self.mean_ms, u.ndim)


class _DeterministicGapStack:
    """:class:`DeterministicGaps` evaluated for all loads at once."""

    def __init__(self, gaps: Sequence[DeterministicGaps]) -> None:
        self.gap_ms = np.array([g.gap_ms for g in gaps])
        self.mean_ms = self.gap_ms

    def gap_cdf(self, u: np.ndarray) -> np.ndarray:
        return (u[None] >= _bc(self.gap_ms, u.ndim)).astype(np.float64)

    def kfold_cdf(self, k: int, t: np.ndarray) -> np.ndarray:
        return (t[None] >= _bc(k * self.gap_ms, t.ndim)).astype(np.float64)

    def equilibrium_cdf(self, t: float) -> np.ndarray:
        return np.minimum(max(t, 0.0) / self.gap_ms, 1.0)

    def equilibrium_density(self, u: np.ndarray) -> np.ndarray:
        return (1.0 - self.gap_cdf(u)) / _bc(self.mean_ms, u.ndim)


@dataclass
class _KernelSeed:
    """Precomputed builder-cache contents for one load cell."""

    service_rows: Dict[float, np.ndarray]
    arrival_counts: Dict[float, np.ndarray]


class _SeededCellMDP(TensorizedWorkerMDP):
    """A tensor cell whose renewal-kernel caches are pre-seeded.

    The builder caches rows/counts by ``round(latency, 9)``; installing
    the batched-construction results before row assembly turns every
    ``service_row``/``arrival_counts`` call into a cache hit, so the cell
    builds without re-running any quadrature.
    """

    def __init__(self, config: WorkerMDPConfig, seed: _KernelSeed) -> None:
        self._kernel_seed = seed
        super().__init__(config)

    def _build_split_rows(self) -> np.ndarray:
        self._split._service_cache.update(self._kernel_seed.service_rows)
        self._split._count_cache.update(self._kernel_seed.arrival_counts)
        return super()._build_split_rows()


def _count_pmf_stack(stack, remaining: np.ndarray, n_max: int) -> np.ndarray:
    """Load-batched ``EquilibriumRenewalKernelBuilder._count_pmf_at``.

    Returns ``(L, n_max, remaining.size)``; slice ``[i]`` is bitwise
    identical to the per-load call (the k-fold CDFs and the adjacent
    differences are elementwise per load).
    """
    loads = stack.mean_ms.size
    cdfs = np.empty((loads, n_max, remaining.size), dtype=np.float64)
    for k in range(1, n_max + 1):
        cdfs[:, k - 1] = stack.kfold_cdf(k, remaining)
    pmf = np.empty_like(cdfs)
    pmf[:, 0] = 1.0 - cdfs[:, 0]
    pmf[:, 1:] = cdfs[:, :-1] - cdfs[:, 1:]
    return np.clip(pmf, 0.0, 1.0)


def _stacked_kernel_seeds(
    template: TensorizedWorkerMDP, configs: Sequence[WorkerMDPConfig]
) -> Optional[List[_KernelSeed]]:
    """Batched renewal-kernel construction for every non-template load.

    Only the ``ROUND_ROBIN_MARGINAL`` view with a single gap family
    (shared-shape Gamma, or deterministic) batches; other views return
    ``None`` and each cell builds its kernels independently (stacked
    Bellman sweeps still apply).  The per-latency math mirrors
    ``EquilibriumRenewalKernelBuilder.service_row``/``arrival_counts``
    with all elementwise steps batched over loads and every reduction
    (the window einsum, the count matvec, row sums) invoked per load on
    per-load-shaped operands, so each seeded row is bitwise identical to
    what the cell's own builder would have computed.
    """
    if template.config.view is not TransitionView.ROUND_ROBIN_MARGINAL:
        return None
    if not configs:
        return []
    try:
        gaps = [gaps_for_distribution(c.per_worker_arrivals()) for c in configs]
    except TypeError:
        return None
    first = gaps[0]
    if isinstance(first, GammaGaps):
        if any(
            not isinstance(g, GammaGaps) or g.shape != first.shape
            for g in gaps
        ):
            return None
        stack = _GammaGapStack(gaps)
    elif isinstance(first, DeterministicGaps):
        if any(not isinstance(g, DeterministicGaps) for g in gaps):
            return None
        stack = _DeterministicGapStack(gaps)
    else:  # pragma: no cover - gaps_for_distribution is exhaustive
        return None

    grid = template.grid
    space = template.space
    n_max = space.max_queue
    j_count = len(grid)
    loads = len(configs)
    grid_values = grid.as_array()

    # Unique latencies in the builders' cache-key space, keeping the
    # *first* raw latency per rounded key in the exact order construction
    # encounters them — a later latency sharing a key is served the first
    # one's cached row, and the seed must reproduce that collision.
    service_lats: Dict[float, float] = {}
    for m in range(template.num_models):
        for n in range(1, n_max + 1):
            lat = template.latency_ms(m, n)
            service_lats.setdefault(round(lat, 9), lat)
    count_lats: Dict[float, float] = {}
    if template.config.batching is BatchingMode.VARIABLE:
        for m in range(template.num_models):
            for b in range(1, n_max):
                lat = template.latency_ms(m, b)
                if not (lat <= grid_values).any():
                    continue
                count_lats.setdefault(round(lat, 9), lat)

    quad = EquilibriumRenewalKernelBuilder._QUAD_POINTS
    nodes, weights = np.polynomial.legendre.leggauss(quad)
    nodes_c, weights_c = np.polynomial.legendre.leggauss(
        EquilibriumRenewalKernelBuilder._COUNT_QUAD_POINTS
    )

    service_rows: Dict[float, np.ndarray] = {}
    for key, lat in service_lats.items():
        rows = np.zeros((loads, space.size), dtype=np.float64)
        rows[:, space.EMPTY] = 1.0 - stack.equilibrium_cdf(lat)
        lo, width, _ = _service_windows(grid, lat)
        live = np.nonzero(width > 0.0)[0]
        if live.size:
            half = 0.5 * width[live]
            u = lo[live][:, None] + half[:, None] * (nodes[None, :] + 1.0)
            w = weights[None, :] * half[:, None]
            f_e = stack.equilibrium_density(u)  # (L, live, Q)
            pmf = _count_pmf_stack(stack, (lat - u).ravel(), n_max)
            wfe = w * f_e
            for i in range(loads):
                occupied = rows[i, 2:].reshape(n_max, j_count)
                occupied[:, live] = np.einsum(
                    "nlq,lq->nl",
                    pmf[i].reshape(n_max, live.size, quad),
                    wfe[i],
                )
        totals = rows.sum(axis=1)
        over = totals > 1.0
        if over.any():
            rows[over] /= totals[over, None]
            totals[over] = 1.0
        rows[:, space.FULL] = np.maximum(0.0, 1.0 - totals)
        service_rows[key] = rows

    count_rows: Dict[float, np.ndarray] = {}
    for key, lat in count_lats.items():
        counts = np.zeros((loads, n_max + 1), dtype=np.float64)
        counts[:, 0] = 1.0 - stack.equilibrium_cdf(lat)
        if lat > 0.0:
            half = 0.5 * lat
            u = half * (nodes_c + 1.0)
            w = weights_c * half
            f_e = stack.equilibrium_density(u)  # (L, Qc)
            pmf = _count_pmf_stack(stack, lat - u, n_max)  # (L, N, Qc)
            wfe = w * f_e
            for i in range(loads):
                counts[i, 1:] = pmf[i] @ wfe[i]
        np.clip(counts, 0.0, 1.0, out=counts)
        totals = counts.sum(axis=1)
        over = totals > 1.0
        if over.any():
            counts[over] /= totals[over, None]
        count_rows[key] = counts

    return [
        _KernelSeed(
            service_rows={k: v[i] for k, v in service_rows.items()},
            arrival_counts={k: v[i] for k, v in count_rows.items()},
        )
        for i in range(loads)
    ]


# ----------------------------------------------------------------------
# The stacked bank
# ----------------------------------------------------------------------
class StackedBankMDP:
    """One load grid's worth of worker MDPs, solved as a single program.

    Construction builds one :class:`TensorizedWorkerMDP` per load (the
    non-template cells with pre-seeded kernel caches where the view
    batches), validates that every cell shares the load-invariant
    structure, and stacks the load-dependent arrays into ``(L, ...)``
    layouts consumed by :meth:`solve`.
    """

    def __init__(self, configs: Sequence[WorkerMDPConfig]) -> None:
        if not configs:
            raise ConfigurationError(
                "stacked bank needs at least one load cell"
            )
        template = TensorizedWorkerMDP(configs[0])
        seeds = _stacked_kernel_seeds(template, configs[1:])
        if seeds is None:
            rest: List[TensorizedWorkerMDP] = [
                TensorizedWorkerMDP(c) for c in configs[1:]
            ]
        else:
            rest = [
                _SeededCellMDP(c, seed)
                for c, seed in zip(configs[1:], seeds)
            ]
        self._cells: List[TensorizedWorkerMDP] = [template, *rest]
        self._validate()
        self._stack()

    @property
    def cells(self) -> List[TensorizedWorkerMDP]:
        """The per-load tensor MDPs (used for extraction and evaluation)."""
        return self._cells

    def _validate(self) -> None:
        first = self._cells[0]
        cfg = first.config
        for cell in self._cells[1:]:
            c = cell.config
            same = (
                cell.space.size == first.space.size
                and cell.num_models == first.num_models
                and cell.max_queue == first.max_queue
                and c.view is cfg.view
                and c.batching is cfg.batching
                and c.drop_late == cfg.drop_late
                and c.duration_aware_discount == cfg.duration_aware_discount
                and c.discount == cfg.discount
                and cell.grid.slo_ms == first.grid.slo_ms
                and np.array_equal(
                    cell.grid.as_array(), first.grid.as_array()
                )
                and np.array_equal(cell._latency, first._latency)
                and np.array_equal(cell._valid, first._valid)
                and np.array_equal(cell._reward, first._reward)
                and len(cell._plan_counts) == len(first._plan_counts)
                and np.array_equal(cell._plan_jmap, first._plan_jmap)
                and np.array_equal(cell._plan_valid, first._plan_valid)
            )
            if not same:
                raise ConfigurationError(
                    "stacked bank cells must share every load-invariant "
                    "input (models, grid, SLO, batching, view, extensions) "
                    "and differ only in the arrival load"
                )

    def _stack(self) -> None:
        cells = self._cells
        first = cells[0]
        cfg = first.config
        self._space = first.space
        self._grid = first.grid
        loads = len(cells)
        n_max = first.max_queue
        j_count = len(first.grid)
        m_count = first.num_models
        size = first.space.size
        self._n_max = n_max
        self._j_count = j_count

        self._split_view = cfg.view is not TransitionView.EXACT_ROUND_ROBIN
        self._drop_late = cfg.drop_late
        self._drop_gamma = (
            1.0 if cfg.duration_aware_discount else cfg.discount
        )
        self._variable = cfg.batching is BatchingMode.VARIABLE
        self._idx_one = first.space.index(1, first.grid.slo_index)

        # Load-invariant structure (validated equal across cells).
        self._reward = first._reward  # (M, N, J)
        self._valid = first._valid  # (M, N, J)
        self._no_valid = ~first._valid.any(axis=0)  # (N, J)

        # Load-dependent stacks.  Kernel row banks stay per-cell array
        # references: reductions run per load on the cell's own operands.
        self._gamma_action = np.stack([c._gamma_action for c in cells])
        self._gamma_empty = np.array([c._gamma_empty for c in cells])
        self._gamma_full = self._gamma_action[:, 0, n_max - 1].copy()
        if self._split_view:
            self._rows_list = [c._rows for c in cells]
        else:
            self._rows_by_phase_list = [c._rows_by_phase for c in cells]
            self._phase_weights_list = [c._phase_weights for c in cells]
            self._full_phase_list = [c._full_phase for c in cells]
            self._ev_phase = np.empty(
                (loads, m_count, n_max, self._rows_by_phase_list[0].shape[2])
            )
            self._ev_state = np.empty((loads, m_count, n_max, j_count))
            self._ev_full = np.empty(loads)

        # Sweep buffers.
        self._ev = np.empty((loads, m_count, n_max))
        self._prod = np.empty((loads, m_count, n_max))
        self._q = np.empty((loads, m_count, n_max, j_count))
        self._best = np.empty((loads, n_max, j_count))
        self._new_values = np.empty((loads, size))

        # Variable-batching partial-drain plan, stacked.
        self._p_count = len(first._plan_counts)
        if self._variable and self._p_count:
            self._plan_b = first._plan_b
            self._plan_dead = first._plan_dead
            self._plan_gamma = np.stack([c._plan_gamma for c in cells])
            self._plan_reward = np.stack([c._plan_reward for c in cells])
            self._plan_residual = np.stack(
                [c._plan_residual for c in cells]
            )
            self._plan_counts_list = [c._plan_counts for c in cells]
            block = self._p_count * n_max * j_count
            self._take_stack = (
                first._plan_take[None]
                + (np.arange(loads, dtype=np.intp) * block)[
                    :, None, None, None
                ]
            )
            self._fold_vpad = np.empty((loads, 2 * n_max + 1, j_count))
            self._fold_ev = np.empty(
                (loads, self._p_count, n_max, j_count)
            )
            self._fold_q = np.empty_like(self._fold_ev)

    # ------------------------------------------------------------------
    # One batched Bellman sweep
    # ------------------------------------------------------------------
    def _sweep(
        self,
        values: np.ndarray,
        new_values: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Write one optimality backup of every active load.

        Frozen (converged) loads skip their reductions; the batched
        elementwise passes still touch their stale rows, but those rows
        are never read back — ``solve`` only copies active slices.
        """
        space = self._space
        n_max = self._n_max

        # Expected continuation value of full-drain actions: the one
        # per-load reduction, invoked with the per-load backend's exact
        # operand shapes so the BLAS kernel (and its summation order)
        # matches the independent solve bit for bit.
        ev = self._ev
        if self._split_view:
            for i in active:
                np.matmul(self._rows_list[i], values[i], out=ev[i])
            # q[l, m, n, j] = reward[m, n, j] + gamma[l, m, n] * ev[l, m, n]
            # — the same two IEEE ops per element as the per-load backup
            # (the j axis broadcasts the identical product).
            np.multiply(self._gamma_action, ev, out=self._prod)
            np.add(
                self._reward[None],
                self._prod[:, :, :, None],
                out=self._q,
            )
            ev_full = ev[:, 0, n_max - 1]
        else:
            for i in active:
                np.matmul(
                    self._rows_by_phase_list[i],
                    values[i],
                    out=self._ev_phase[i],
                )
                self._ev_state[i] = np.einsum(
                    "mnk,njk->mnj",
                    self._ev_phase[i],
                    self._phase_weights_list[i],
                )
                self._ev_full[i] = float(
                    self._ev_phase[i][0, n_max - 1]
                    @ self._full_phase_list[i]
                )
            np.multiply(
                self._gamma_action[:, :, :, None],
                self._ev_state,
                out=self._q,
            )
            np.add(self._reward[None], self._q, out=self._q)
            ev_full = self._ev_full

        # Masked max over actions — bitwise equal to the per-load
        # ``np.where(valid, q, -inf).max(axis=0)``.
        np.max(
            self._q,
            axis=1,
            where=self._valid[None],
            initial=-np.inf,
            out=self._best,
        )

        # Forced fallback (§4.3.1) where nothing is valid.
        if self._drop_late:
            fb = self._drop_gamma * values[:, space.EMPTY]
            np.copyto(
                self._best, fb[:, None, None], where=self._no_valid[None]
            )
        elif self._split_view:
            # prod[l, 0, n] is exactly the per-load fallback product
            # gamma[0, n] * ev[0, n].
            np.copyto(
                self._best,
                self._prod[:, 0, :, None],
                where=self._no_valid[None],
            )
        else:
            fb = self._gamma_action[:, 0, :, None] * self._ev_state[:, 0]
            np.copyto(self._best, fb, where=self._no_valid[None])

        if self._variable and self._p_count:
            self._fold_partial_stack(values, active)

        new_values[:, 2:] = self._best.reshape(len(self._cells), -1)
        new_values[:, space.EMPTY] = (
            self._gamma_empty * values[:, self._idx_one]
        )
        if self._drop_late:
            new_values[:, space.FULL] = (
                self._drop_gamma * values[:, space.EMPTY]
            )
        else:
            new_values[:, space.FULL] = self._gamma_full * ev_full

    def _fold_partial_stack(
        self, values: np.ndarray, active: np.ndarray
    ) -> None:
        """Load-batched mirror of the tensor backend's partial-drain fold."""
        space = self._space
        n_max = self._n_max
        loads = len(self._cells)
        v_full = values[:, space.FULL]

        vpad = self._fold_vpad
        vpad[:, :n_max] = values[:, 2:].reshape(loads, n_max, self._j_count)
        vpad[:, n_max:] = v_full[:, None, None]
        windows = np.lib.stride_tricks.sliding_window_view(
            vpad, n_max + 1, axis=1
        )  # (L, N + 1, J, N + 1); per-load slice has the per-load strides

        ev_stack = self._fold_ev
        for i in active:
            counts = self._plan_counts_list[i]
            win = windows[i]
            for p, b in enumerate(self._plan_b):
                np.matmul(
                    win[: n_max - b], counts[p], out=ev_stack[i, p, b:]
                )
        ev_stack += (
            self._plan_residual[:, :, None, None]
            * v_full[:, None, None, None]
        )
        q_cand = self._fold_q
        np.take(ev_stack, self._take_stack, out=q_cand)
        q_cand *= self._plan_gamma[:, :, None, None]
        q_cand += self._plan_reward[:, :, None, None]
        np.copyto(q_cand, -np.inf, where=self._plan_dead[None])
        np.maximum(q_cand.max(axis=1), self._best, out=self._best)

    # ------------------------------------------------------------------
    # Batched value iteration with per-load convergence masks
    # ------------------------------------------------------------------
    def solve(
        self,
        tolerance: float = 1e-7,
        max_iterations: int = 20_000,
        initials: Optional[Sequence[Optional[np.ndarray]]] = None,
    ) -> List[SolveStats]:
        """Value-iterate every load to its sup-norm fixed point.

        All loads start together and sweep in lockstep; a load whose
        residual drops below ``tolerance`` freezes (its slice stops
        updating and its reductions are skipped), so its recorded
        ``iterations`` equals the independent solve's sweep count.
        Raises :class:`SolverError` naming the unconverged loads when the
        ceiling is hit.
        """
        if tolerance <= 0:
            raise SolverError(f"tolerance must be > 0, got {tolerance}")
        if max_iterations < 1:
            raise SolverError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        loads = len(self._cells)
        if initials is not None and len(initials) != loads:
            raise ConfigurationError(
                f"got {len(initials)} warm-start vectors for {loads} cells"
            )
        size = self._space.size
        values = np.zeros((loads, size), dtype=np.float64)
        warm = np.zeros(loads, dtype=bool)
        if initials is not None:
            for i, init in enumerate(initials):
                if init is not None:
                    values[i] = init
                    warm[i] = True
        stats: List[Optional[SolveStats]] = [None] * loads
        frozen = np.zeros(loads, dtype=bool)
        new_values = self._new_values
        start = time.perf_counter()
        for sweep in range(1, max_iterations + 1):
            active = np.nonzero(~frozen)[0]
            self._sweep(values, new_values, active)
            # Row-wise sup-norm over the whole stack: per-row max-abs along
            # axis 1 is element-for-element the same IEEE ops as the
            # per-load ``np.max(np.abs(new - old))``, so residuals match
            # the independent solves bitwise.  Frozen rows are stale in
            # ``new_values`` — their entries are computed but never read.
            resid = np.max(np.abs(new_values - values), axis=1)
            values[active] = new_values[active]
            for i in active:
                if resid[i] < tolerance:
                    frozen[i] = True
                    stats[i] = SolveStats(
                        values=values[i].copy(),
                        iterations=sweep,
                        residual=float(resid[i]),
                        runtime_s=time.perf_counter() - start,
                        converged=True,
                        warm_started=bool(warm[i]),
                    )
            if frozen.all():
                return stats  # type: ignore[return-value]
        missing = ", ".join(
            f"{self._cells[i].config.load_qps:g}"
            for i in np.nonzero(~frozen)[0]
        )
        raise SolverError(
            f"stacked bank value iteration did not converge after "
            f"{max_iterations} sweeps (unconverged load(s): {missing} qps)"
        )

    # ------------------------------------------------------------------
    # Batched stationary analysis (§5.1)
    # ------------------------------------------------------------------
    def stationary_distributions(
        self,
        policies: Sequence[Policy],
        tolerance: float = 1e-10,
        max_iterations: int = 100_000,
    ) -> List[np.ndarray]:
        """Stationary distribution of every cell's policy-induced chain.

        Power iteration over the block-diagonal stack of chains: one
        per-load matrix-vector application per step (the reduction whose
        summation order must match the independent solve), with the
        normalization and residual passes batched across loads and the
        same per-load freeze masking as :meth:`solve` — each returned
        vector is bitwise identical to
        :func:`repro.core.guarantees.stationary_distribution`.
        """
        cells = self._cells
        if len(policies) != len(cells):
            raise ConfigurationError(
                f"got {len(policies)} policies for {len(cells)} cells"
            )
        rows_list = [
            cell.policy_rows(_policy_action_table(cell, policy))
            for cell, policy in zip(cells, policies)
        ]
        loads = len(cells)
        size = self._space.size
        dist = np.full((loads, size), 1.0 / size)
        upd = np.empty_like(dist)
        result = np.empty_like(dist)
        frozen = np.zeros(loads, dtype=bool)
        for _ in range(max_iterations):
            active = np.nonzero(~frozen)[0]
            for i in active:
                upd[i] = dist[i] @ rows_list[i]
            totals = upd.sum(axis=1)
            if (totals[active] <= 0).any():
                raise SolverError(
                    "stationary iteration lost all probability mass"
                )
            np.divide(upd, totals[:, None], out=upd)
            resid = np.max(np.abs(upd - dist), axis=1)
            for i in active:
                if resid[i] < tolerance:
                    frozen[i] = True
                    result[i] = upd[i]
                else:
                    dist[i] = upd[i]
            if frozen.all():
                return [result[i] for i in range(loads)]
        raise SolverError(
            f"power iteration did not converge within {max_iterations} steps"
        )

    def evaluate(
        self, policies: Sequence[Policy], tolerance: float = 1e-10
    ) -> List[PolicyGuarantees]:
        """§5.1 guarantees for every cell, sharing the batched stationary
        solve; identical to per-load :func:`evaluate_policy` calls."""
        dists = self.stationary_distributions(policies, tolerance=tolerance)
        return [
            evaluate_policy(
                cell, policy, tolerance=tolerance, dist=dists[i]
            )
            for i, (cell, policy) in enumerate(zip(self._cells, policies))
        ]


# ----------------------------------------------------------------------
# Bank-level entry point
# ----------------------------------------------------------------------
def solve_stacked_bank(
    configs: Sequence[WorkerMDPConfig],
    tolerance: float = 1e-7,
    initials: Optional[Sequence[Optional[np.ndarray]]] = None,
    with_guarantees: bool = True,
    tracer: Optional[Tracer] = None,
) -> List[GenerationResult]:
    """Solve a whole load grid as one stacked tensor program.

    The bank-level analogue of :func:`repro.core.generator.generate_policy`:
    one call builds the stacked bank, value-iterates every load with
    convergence masks, extracts per-load policies, and (by default)
    computes the §5.1 guarantees through the batched stationary solve.
    Every returned :class:`GenerationResult` is byte-identical — policy,
    guarantees, iteration count — to an independent ``generate_policy``
    call for that cell; ``runtime_s`` divides the bank's wall clock
    evenly across cells (per-cell attribution has no meaning inside one
    batched solve).

    ``initials`` optionally warm-starts individual loads (aligned with
    ``configs``); an enabled ``tracer`` records the build / solve /
    evaluate phases on the ``generator`` track.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    start = time.perf_counter()
    with tracer.span(
        "stacked_bank", track="generator", args={"cells": len(configs)}
    ):
        with tracer.span("build_stacked_bank", track="generator"):
            bank = StackedBankMDP(configs)
        with tracer.span("stacked_value_iteration", track="generator"):
            stats = bank.solve(tolerance=tolerance, initials=initials)
        policies = [
            cell.extract_policy(s.values)
            for cell, s in zip(bank.cells, stats)
        ]
        if with_guarantees:
            with tracer.span("stacked_evaluate", track="generator"):
                guarantees = bank.evaluate(policies)
            policies = [
                _annotate(policy, g)
                for policy, g in zip(policies, guarantees)
            ]
        else:
            nan = float("nan")
            guarantees = [
                PolicyGuarantees(
                    expected_accuracy=nan,
                    expected_violation_rate=nan,
                    per_epoch_accuracy=nan,
                    per_epoch_violation_rate=nan,
                    full_state_probability=nan,
                    idle_probability=nan,
                )
                for _ in configs
            ]
    per_cell = (time.perf_counter() - start) / len(configs)
    return [
        GenerationResult(
            policy=policy,
            guarantees=g,
            iterations=s.iterations,
            runtime_s=per_cell,
            residuals=s.residuals,
            values=s.values,
        )
        for policy, g, s in zip(policies, guarantees, stats)
    ]
