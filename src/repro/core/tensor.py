"""Tensorized MDP solver backend (``solver="tensor"``).

:class:`TensorizedWorkerMDP` is a drop-in :class:`~repro.core.mdp.WorkerMDP`
whose Bellman sweeps are stacked tensor contractions instead of per-action /
per-state Python loops:

- the **optimality backup** stacks every variable-batching partial-drain
  action into one candidate tensor and resolves the greedy choice with a
  single first-maximum ``argmax`` reduction (the FSRL-style dense
  ``Q[a, s] = r[a, s] + gamma[a, s] * (P[a] @ v)[s]`` layout, specialized
  to this MDP's factored kernels);
- **policy evaluation** (:meth:`backup_policy`) assembles the
  policy-induced chain once per action table — reward, discount, and
  transition-row arrays — so every subsequent expectation sweep is one
  ``r + g * (P_pi @ v)`` matrix-vector product instead of ``|S|`` Python
  row constructions;
- the same cached ``P_pi`` feeds the §5.1 stationary analysis
  (:func:`repro.core.guarantees.stationary_distribution`), whose power
  iteration is a pure matrix-vector loop on it.

Exactness contract
------------------
The existing loop implementation stays available (``solver="loop"``) as
the reference oracle, and the tensor backend is **float-identical** to it
on the value-iteration path: every candidate Q value is produced by the
same NumPy kernel calls on the same operands (batched matmuls are only
reused where slicing a larger product is bitwise equal to the smaller
one), and the stacked argmax keeps the loop's first-strict-maximum
tie-breaking.  ``tests/test_solver_equivalence.py`` asserts exact
(``==``) value-function agreement and byte-identical ``Policy.save``
output across views, batching modes, and extensions;
``benchmarks/bench_state_space.py`` gates the speedup floor in CI.

Policy evaluation swaps per-state ``dot`` calls for one ``gemv``, which
reassociates the reductions — policy iteration therefore agrees with the
loop backend at the greedy-table level (asserted) rather than bitwise.

The chain matrices are dense by default; when SciPy is available and the
policy-induced chain is sparse enough, :meth:`policy_rows_operator`
returns a CSR operator instead so stationary sweeps on banded kernels
scale past dense ``|S|^2`` cost (opt-in, never used on gated paths).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.mdp import _FALLBACK, WorkerMDP

try:  # pragma: no cover - exercised only where scipy is installed
    from scipy import sparse as _sparse
except Exception:  # pragma: no cover - scipy is optional at runtime
    _sparse = None

__all__ = ["TensorizedWorkerMDP"]

#: Nonzero fraction below which the sparse chain operator pays off.
_SPARSE_DENSITY_CUTOFF = 0.25


class TensorizedWorkerMDP(WorkerMDP):
    """A :class:`WorkerMDP` with tensorized solve-path hot loops.

    Construction (kernels, rewards, partial-drain plan) is inherited
    unchanged — both backends solve the *same* arrays — so the only
    differences are how each Bellman sweep traverses them.
    """

    def __init__(self, config) -> None:
        super().__init__(config)
        self._stack_partial_plan()
        # Policy-evaluation cache: one assembled chain per action table.
        self._pe_table: Optional[Dict[int, Tuple[int, int]]] = None
        self._pe_rows: Optional[np.ndarray] = None
        self._pe_reward: Optional[np.ndarray] = None
        self._pe_discount: Optional[np.ndarray] = None
        self._fold_want_greedy = False

    @property
    def solver(self) -> str:
        return "tensor"

    # ------------------------------------------------------------------
    # Stacked partial-drain plan
    # ------------------------------------------------------------------
    def _stack_partial_plan(self) -> None:
        """Stack the per-action partial-drain plan into batched arrays.

        The loop backend iterates ``_partial_plan`` entries one by one;
        here everything except the per-entry value contraction (whose
        matmul call must stay bitwise identical to the oracle's) is
        hoisted into ``(P, ...)`` arrays consumed by one batched pass.
        """
        plan = self._partial_plan
        n_max, j_count = self._max_queue, len(self._grid)
        p_count = len(plan)
        self._plan_m = np.array([e[0] for e in plan], dtype=np.intp)
        self._plan_b = np.array([e[1] for e in plan], dtype=np.intp)
        self._plan_valid = (
            np.array([e[2] for e in plan], dtype=bool)
            if plan
            else np.zeros((0, j_count), dtype=bool)
        )
        self._plan_counts = [e[3] for e in plan]
        self._plan_residual = np.array([e[4] for e in plan], dtype=np.float64)
        self._plan_jmap = (
            np.array([e[5] for e in plan], dtype=np.intp)
            if plan
            else np.zeros((0, j_count), dtype=np.intp)
        )
        self._plan_reward = np.array([e[6] for e in plan], dtype=np.float64)
        self._plan_gamma = np.array([e[7] for e in plan], dtype=np.float64)
        # region[p, n-1]: does entry p's action (b < n) apply in queue n?
        region = np.zeros((p_count, n_max), dtype=bool)
        for p, b in enumerate(self._plan_b):
            region[p, b:] = True
        # Valid candidate cells: queue-region x slack-validity.
        self._plan_mask = region[:, :, None] & self._plan_valid[:, None, :]
        self._plan_dead = ~self._plan_mask
        # Flat gather indices: q_cand[p, n, j] reads ev_stack[p, n,
        # jmap[p, j]], resolved once into one fancy-index vector so each
        # sweep is a single ``take`` instead of ``take_along_axis`` index
        # construction.
        base = (
            np.arange(p_count, dtype=np.intp)[:, None, None] * n_max
            + np.arange(n_max, dtype=np.intp)[None, :, None]
        ) * j_count
        self._plan_take = np.ascontiguousarray(
            base + self._plan_jmap[:, None, :]
        )
        # Greedy lookup tables with the incoming full-drain best at slot 0.
        self._plan_m_lut = np.concatenate(([0], self._plan_m))
        self._plan_b_lut = np.concatenate(([0], self._plan_b))
        # Reusable sweep buffers.  ``_fold_ev`` rows below each entry's
        # ``b`` are never written and never read (masked to -inf), so the
        # buffer is allocated once and left unzeroed between sweeps.
        self._fold_vpad = np.empty((2 * n_max + 1, j_count), dtype=np.float64)
        self._fold_ev = np.empty((p_count, n_max, j_count), dtype=np.float64)

    # ------------------------------------------------------------------
    # Optimality backup: stacked candidates + first-max argmax
    # ------------------------------------------------------------------
    def backup(self, values: np.ndarray, want_greedy: bool = False):
        self._fold_want_greedy = want_greedy
        return super().backup(values, want_greedy)

    def _fold_partial_actions(
        self,
        values: np.ndarray,
        best_q: np.ndarray,
        best_m: np.ndarray,
        best_b: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stacked-candidate replacement for the oracle's per-action loop.

        Bitwise identical to the sequential fold: each entry's expected
        continuation value uses the *same* windowed matmul (slicing a
        batched ``@`` is bitwise equal to the smaller product), scalar
        reward/discount broadcasting performs the same per-element float
        ops, and ``argmax`` takes the first maximum — exactly the strict
        ``>`` update order of the loop with the incoming full-drain best
        as candidate 0.
        """
        plan_size = len(self._plan_counts)
        if plan_size == 0:
            return best_q, best_m, best_b
        space = self._space
        n_max = self._max_queue
        v_full = values[space.FULL]

        vpad = self._fold_vpad
        vpad[:n_max] = space.occupied_view(values)
        vpad[n_max:] = v_full
        windows = np.lib.stride_tricks.sliding_window_view(
            vpad, n_max + 1, axis=0
        )

        # ev_stack[p, b_p + i] = E[V(next) | leftover base i + 1] — the one
        # per-entry kernel call, aligned to queue rows at assignment time
        # and written straight into the reusable buffer.
        ev_stack = self._fold_ev
        for p, b in enumerate(self._plan_b):
            np.matmul(
                windows[: n_max - b], self._plan_counts[p], out=ev_stack[p, b:]
            )
        # Overflow tail mass, batched (exact: adds 0.0 where residual is 0).
        ev_stack += self._plan_residual[:, None, None] * v_full
        # Leftover-slack requantization: one flat gather for every entry.
        q_cand = ev_stack.take(self._plan_take)
        q_cand *= self._plan_gamma[:, None, None]
        q_cand += self._plan_reward[:, None, None]
        np.copyto(q_cand, -np.inf, where=self._plan_dead)

        if not self._fold_want_greedy:
            # Plain max: same result as the loop's sequential strict-``>``
            # fold (float max is exact and order-independent).
            return (
                np.maximum(q_cand.max(axis=0), best_q, out=best_q),
                best_m,
                best_b,
            )
        cand = np.concatenate([best_q[None], q_cand], axis=0)
        winner = cand.argmax(axis=0)
        best_q = np.take_along_axis(cand, winner[None], axis=0)[0]
        keep = winner == 0
        best_m = np.where(keep, best_m, self._plan_m_lut[winner])
        best_b = np.where(keep, best_b, self._plan_b_lut[winner])
        return best_q, best_m, best_b

    # ------------------------------------------------------------------
    # Policy evaluation: assemble the chain once, then matrix-vector sweeps
    # ------------------------------------------------------------------
    def _policy_eval_arrays(
        self, action_table: Dict[int, Tuple[int, int]]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reward / discount / transition arrays of the induced chain.

        Cached against the action table — policy iteration evaluates the
        same table for hundreds of sweeps, so assembly cost is paid once
        per improvement round instead of once per sweep per state.
        """
        if self._pe_table is not None and action_table == self._pe_table:
            return self._pe_reward, self._pe_discount, self._pe_rows
        space = self._space
        size = space.size
        rows = self.policy_rows(action_table)
        reward = np.zeros(size, dtype=np.float64)
        discount = np.empty(size, dtype=np.float64)
        discount[space.EMPTY] = self._gamma_empty
        for state_id in range(size):
            if state_id == space.EMPTY:
                continue
            n, _ = space.decode(state_id)
            action = action_table.get(state_id, (_FALLBACK, n))
            reward[state_id] = self.reward_of(state_id, action)
            discount[state_id] = self.discount_of(state_id, action)
        self._pe_table = dict(action_table)
        self._pe_rows = rows
        self._pe_reward = reward
        self._pe_discount = discount
        return reward, discount, rows

    def backup_policy(
        self, values: np.ndarray, action_table: Dict[int, Tuple[int, int]]
    ) -> np.ndarray:
        """One expectation backup as a single matrix-vector product."""
        reward, discount, rows = self._policy_eval_arrays(action_table)
        return reward + discount * (rows @ values)

    def policy_rows(
        self, table: Dict[int, Tuple[int, int]]
    ) -> np.ndarray:
        """Chain rows for ``table``, served from the evaluation cache.

        Falls through to the (shared, oracle-identical) assembly in
        :class:`WorkerMDP` on a cache miss, so the stationary analysis and
        policy evaluation read the same array without reassembling it.
        """
        if self._pe_table is not None and table == self._pe_table:
            return self._pe_rows
        return super().policy_rows(table)

    def policy_rows_operator(self, table: Dict[int, Tuple[int, int]]):
        """The induced chain as a sparse operator when that pays off.

        Returns a ``scipy.sparse.csr_matrix`` when SciPy is installed and
        the chain's density is below ``_SPARSE_DENSITY_CUTOFF`` (banded
        kernels at fine discretizations), else the dense row matrix.
        Sparse matvecs reassociate sums, so this is never used on the
        float-``==``-gated paths — it serves large-scale occupancy
        studies where the dense ``|S|^2`` sweep does not fit the budget.
        """
        rows = self.policy_rows(table)
        if _sparse is None:
            return rows
        density = np.count_nonzero(rows) / rows.size
        if density >= _SPARSE_DENSITY_CUTOFF:
            return rows
        return _sparse.csr_matrix(rows)
