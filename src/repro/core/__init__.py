"""RAMSIS core: MDP formulation, solvers, policies, and guarantees.

This package implements the paper's primary contribution (§3-§5):

- :mod:`repro.core.discretization` — slack-time grids: Model-based
  Discretization (MD, §4.2.1) and Fixed Length Discretization (FLD, §4.2.2).
- :mod:`repro.core.config` — :class:`WorkerMDPConfig`, the offline inputs.
- :mod:`repro.core.mdp` — the per-worker MDP: state space, action validity,
  rewards (§4.1-§4.3).
- :mod:`repro.core.transitions` — transition kernels from the arrival
  distribution + load balancing strategy (§4.4, Appendix I).
- :mod:`repro.core.solvers` — value iteration and policy iteration (§4.1).
- :mod:`repro.core.policy` — model-selection policies + JSON serialization.
- :mod:`repro.core.guarantees` — stationary analysis: expected accuracy and
  expected SLO violation rate (§5.1).
- :mod:`repro.core.policy_set` — load-indexed policy sets with the 1 %
  adjacent-accuracy refinement rule (§6 "Query Load Adaptation").
- :mod:`repro.core.generator` — the high-level offline entry point.
- :mod:`repro.core.bank` — the stacked policy-bank solver: one batched
  tensor program for a whole load grid, bitwise-equal to per-load solves.
"""

from repro.core.bank import StackedBankMDP, solve_stacked_bank
from repro.core.config import BatchingMode, Discretization, TransitionView, WorkerMDPConfig
from repro.core.discretization import TimeGrid
from repro.core.generator import PolicyGenerator, generate_policy
from repro.core.guarantees import PolicyGuarantees, evaluate_policy
from repro.core.mdp import WorkerMDP, build_worker_mdp, resolve_solver
from repro.core.tensor import TensorizedWorkerMDP
from repro.core.naive import NaiveWorkerMDP
from repro.core.policy import Action, Policy
from repro.core.policy_set import PolicySet
from repro.core.solvers import SolveStats, policy_iteration, value_iteration
from repro.core.validation import ChainStats, simulate_chain

__all__ = [
    "BatchingMode",
    "Discretization",
    "TransitionView",
    "WorkerMDPConfig",
    "TimeGrid",
    "WorkerMDP",
    "TensorizedWorkerMDP",
    "build_worker_mdp",
    "resolve_solver",
    "Action",
    "Policy",
    "PolicySet",
    "PolicyGenerator",
    "generate_policy",
    "StackedBankMDP",
    "solve_stacked_bank",
    "PolicyGuarantees",
    "evaluate_policy",
    "SolveStats",
    "value_iteration",
    "policy_iteration",
    "NaiveWorkerMDP",
    "ChainStats",
    "simulate_chain",
]
