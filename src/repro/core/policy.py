"""Model-selection policies: the offline phase's output (§3.1.3).

A :class:`Policy` maps every worker-queue state ``(n, T_j)`` to a model
selection action ``(model, batch size)``.  Online (§3.2.2), the per-worker
model selector quantizes the live queue state (queue length + earliest
slack) onto the policy's grid and looks the action up — an O(log |grid|)
operation, so the online decision overhead is negligible, as the paper
requires.

Serialization follows the paper artifact's layout: a JSON dictionary
mapping states to actions, with metadata describing the load, SLO, and
generation knobs the policy was specialized for.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.core.discretization import TimeGrid
from repro.errors import PolicyError

__all__ = ["Action", "PolicyMetadata", "Policy"]


@dataclass(frozen=True)
class Action:
    """One model-selection decision: run ``batch_size`` queries on ``model``.

    ``is_late`` marks the forced fallback of §4.3.1 — no action can meet the
    earliest deadline, so the lowest-latency model serves the whole queue
    ("better served late than never").
    """

    model: str
    batch_size: int
    is_late: bool = False

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise PolicyError(f"batch_size must be >= 1, got {self.batch_size}")
        if not self.model:
            raise PolicyError("action model name must be non-empty")


@dataclass(frozen=True)
class PolicyMetadata:
    """Provenance of a generated policy: what it is specialized for."""

    task: str
    slo_ms: float
    load_qps: float
    num_workers: int
    arrival_family: str = "poisson"
    discretization: str = "FLD"
    fld_resolution: Optional[int] = 100
    batching: str = "max"
    view: str = "split"
    discount: float = 0.98
    expected_accuracy: Optional[float] = None
    expected_violation_rate: Optional[float] = None


class Policy:
    """A per-worker model-selection policy over the discretized state space.

    Parameters
    ----------
    grid:
        The slack-time grid states are quantized onto.
    max_queue:
        ``N_w`` — queue lengths above this map to the full-queue action.
    actions:
        Mapping ``(n, j) -> Action`` covering every occupied state, i.e.
        ``n`` in ``1..max_queue`` and ``j`` in ``0..len(grid)-1``.
    metadata:
        Generation provenance; used by :class:`repro.core.policy_set.PolicySet`
        for load-based selection.
    """

    def __init__(
        self,
        grid: TimeGrid,
        max_queue: int,
        actions: Mapping[Tuple[int, int], Action],
        metadata: PolicyMetadata,
    ) -> None:
        if max_queue < 1:
            raise PolicyError(f"max_queue must be >= 1, got {max_queue}")
        expected_states = max_queue * len(grid)
        missing = [
            (n, j)
            for n in range(1, max_queue + 1)
            for j in range(len(grid))
            if (n, j) not in actions
        ]
        if missing:
            raise PolicyError(
                f"policy covers {len(actions)}/{expected_states} states; "
                f"first missing: {missing[0]}"
            )
        self._grid = grid
        self._max_queue = max_queue
        self._actions: Dict[Tuple[int, int], Action] = dict(actions)
        self._metadata = metadata
        # Cached for action_for's inlined grid lookup (the online hot path).
        self._grid_values = grid.values
        self._grid_top = len(grid.values) - 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def grid(self) -> TimeGrid:
        """Slack-time grid of this policy's state space."""
        return self._grid

    @property
    def max_queue(self) -> int:
        """``N_w`` of this policy's state space."""
        return self._max_queue

    @property
    def metadata(self) -> PolicyMetadata:
        """Generation provenance."""
        return self._metadata

    @property
    def load_qps(self) -> float:
        """Query load the policy was generated for."""
        return self._metadata.load_qps

    def action_at(self, n: int, j: int) -> Action:
        """Action for discretized state ``(n, j)``."""
        try:
            return self._actions[(n, j)]
        except KeyError:
            raise PolicyError(f"no action for state ({n}, {j})") from None

    def states(self) -> Dict[Tuple[int, int], Action]:
        """Copy of the full state -> action table."""
        return dict(self._actions)

    # ------------------------------------------------------------------
    # Online lookup (§3.2.2)
    # ------------------------------------------------------------------
    def action_for(self, queue_length: int, earliest_slack_ms: float) -> Action:
        """Decision for a live queue state.

        ``queue_length`` is the number of queued queries;
        ``earliest_slack_ms`` the remaining time before the earliest queued
        deadline (negative when already missed).  Queue lengths beyond
        ``N_w`` use the full-queue state's action with the batch widened to
        drain the whole queue, matching §4.2.3's truncation semantics.
        """
        if queue_length < 1:
            raise PolicyError("action_for requires a non-empty queue")
        # Inlined TimeGrid.floor_index (one lookup per MS&S decision).
        if earliest_slack_ms <= 0.0:
            j = 0
        else:
            j = bisect_right(self._grid_values, earliest_slack_ms) - 1
            if j < 0:
                j = 0
            elif j > self._grid_top:
                j = self._grid_top
        if queue_length > self._max_queue:
            base = self._actions[(self._max_queue, 0)]
            return Action(model=base.model, batch_size=queue_length, is_late=True)
        return self._actions[(queue_length, j)]

    # ------------------------------------------------------------------
    # Serialization (artifact-compatible: state dict -> action dict)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """JSON-serializable representation."""
        return {
            "metadata": asdict(self._metadata),
            "grid": {"values": list(self._grid.values), "slo_ms": self._grid.slo_ms},
            "max_queue": self._max_queue,
            "policy": {
                f"{n},{j}": {
                    "model": a.model,
                    "batch_size": a.batch_size,
                    "is_late": a.is_late,
                }
                for (n, j), a in sorted(self._actions.items())
            },
        }

    @staticmethod
    def from_json_dict(data: Mapping[str, object]) -> "Policy":
        """Inverse of :meth:`to_json_dict`."""
        try:
            grid_info = data["grid"]
            grid = TimeGrid(
                values=tuple(float(v) for v in grid_info["values"]),  # type: ignore[index]
                slo_ms=float(grid_info["slo_ms"]),  # type: ignore[index]
            )
            metadata = PolicyMetadata(**data["metadata"])  # type: ignore[arg-type]
            max_queue = int(data["max_queue"])  # type: ignore[arg-type]
            actions: Dict[Tuple[int, int], Action] = {}
            for key, raw in data["policy"].items():  # type: ignore[union-attr]
                n_str, j_str = key.split(",")
                actions[(int(n_str), int(j_str))] = Action(
                    model=str(raw["model"]),
                    batch_size=int(raw["batch_size"]),
                    is_late=bool(raw.get("is_late", False)),
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise PolicyError(f"malformed policy JSON: {exc}") from exc
        return Policy(grid=grid, max_queue=max_queue, actions=actions, metadata=metadata)

    def save(self, path: Union[str, Path]) -> None:
        """Write the policy as JSON (artifact layout).

        Keys are emitted sorted so equal policies serialize to identical
        bytes — the content-addressed policy cache and the parallel-vs-
        serial equivalence checks hash this representation.
        """
        Path(path).write_text(json.dumps(self.to_json_dict(), indent=1, sort_keys=True))

    @staticmethod
    def load(path: Union[str, Path]) -> "Policy":
        """Read a policy written by :meth:`save`."""
        return Policy.from_json_dict(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m = self._metadata
        return (
            f"Policy(task={m.task!r}, slo={m.slo_ms:g}ms, load={m.load_qps:g}qps, "
            f"K={m.num_workers}, states={len(self._actions)})"
        )
