"""Exact MDP solution methods (§4.1).

RAMSIS uses value iteration by default; policy iteration is provided as the
paper notes other exact methods may be used.  Both operate on any object
exposing the :class:`WorkerMDP` backup protocol::

    mdp.initial_values() -> np.ndarray
    mdp.backup(values, want_greedy=...) -> BackupResult
    mdp.backup_policy(values, action_table) -> np.ndarray  (policy iteration)

so small dense MDPs used in the test suite can exercise the same solvers.

The *implementation* of those backups is selected when the MDP is built:
``build_worker_mdp(config, solver="auto"|"tensor"|"loop")`` returns either
the reference loop backend or the tensorized one
(:mod:`repro.core.tensor`), and the solvers here are backend-agnostic —
value iteration is float-identical across backends (asserted by
``tests/test_solver_equivalence.py``), policy iteration agrees at the
greedy-table level.  Both raise :class:`~repro.errors.SolverError` with
residual diagnostics when their iteration ceilings are hit, so a
non-converging solve at a too-tight tolerance fails loudly instead of
spinning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.obs.trace import Tracer

__all__ = ["SolveStats", "value_iteration", "policy_iteration"]


@dataclass(frozen=True)
class SolveStats:
    """Outcome of one solver run.

    ``residuals`` is the per-sweep sup-norm residual history, recorded
    when the caller asked for it (``record_residuals=True`` or an enabled
    tracer); ``None`` otherwise so the hot path stays allocation-free.
    For value iteration on a ``gamma``-discounted MDP the sequence obeys
    ``residuals[k+1] <= gamma * residuals[k]`` (Bellman contraction), the
    property the convergence plots and regression tests check.
    """

    values: np.ndarray
    iterations: int
    residual: float
    runtime_s: float
    converged: bool
    residuals: Optional[Tuple[float, ...]] = None
    #: True when the solve was seeded with an ``initial`` value vector
    #: (warm start) instead of the MDP's zero vector.
    warm_started: bool = False


def value_iteration(
    mdp,
    tolerance: float = 1e-7,
    max_iterations: int = 20_000,
    initial: Optional[np.ndarray] = None,
    tracer: Optional[Tracer] = None,
    record_residuals: bool = False,
) -> SolveStats:
    """Iterate Bellman optimality backups to a sup-norm fixed point.

    The returned values are within ``tolerance / (1 - gamma)`` of optimal
    in sup norm (standard contraction bound).  Raises :class:`SolverError`
    if the residual has not dropped below ``tolerance`` after
    ``max_iterations`` sweeps.

    With ``record_residuals`` (or an enabled ``tracer``) the per-sweep
    residual history is kept on :attr:`SolveStats.residuals`; the tracer
    additionally receives one ``vi_sweep`` event per sweep on the
    ``solver`` track (timestamped in wall-clock ms since solve start)
    plus one ``bellman_sweep`` wall-clock span per backup — the phase
    the profiler (:class:`repro.obs.profile.PhaseProfiler`) aggregates.
    """
    if tolerance <= 0:
        raise SolverError(f"tolerance must be > 0, got {tolerance}")
    if max_iterations < 1:
        raise SolverError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    tracing = tracer is not None and tracer.enabled
    history: Optional[list] = [] if (record_residuals or tracing) else None
    values = mdp.initial_values() if initial is None else initial.copy()
    start = time.perf_counter()
    residual = np.inf
    for iteration in range(1, max_iterations + 1):
        if tracing:
            # One wall-clock phase per Bellman backup, nested under the
            # generator's value_iteration span — the phase profiler's
            # per-sweep hotspot unit.  Skipped entirely when untraced so
            # the hot path stays free of context-manager overhead.
            with tracer.span(
                "bellman_sweep", track="solver", args={"iteration": iteration}
            ):
                new_values = mdp.backup(values).values
        else:
            new_values = mdp.backup(values).values
        residual = float(np.max(np.abs(new_values - values)))
        values = new_values
        if history is not None:
            history.append(residual)
            if tracing:
                tracer.instant(
                    "vi_sweep",
                    "solver",
                    (time.perf_counter() - start) * 1000.0,
                    category="solver",
                    args={"iteration": iteration, "residual": residual},
                )
        if residual < tolerance:
            return SolveStats(
                values=values,
                iterations=iteration,
                residual=residual,
                runtime_s=time.perf_counter() - start,
                converged=True,
                residuals=None if history is None else tuple(history),
                warm_started=initial is not None,
            )
    # Non-convergence ceiling: surface enough residual diagnostics to tell
    # a too-tight tolerance (residual plateaued near float noise) from a
    # genuinely diverging model (residual flat or growing).
    tail = (
        ""
        if history is None
        else f"; last residuals {[f'{r:.3e}' for r in history[-3:]]}"
    )
    raise SolverError(
        f"value iteration did not converge after {max_iterations} sweeps "
        f"(residual {residual:.3e} > tolerance {tolerance:.3e}{tail})"
    )


def policy_iteration(
    mdp,
    evaluation_sweeps: int = 200,
    evaluation_tolerance: float = 1e-9,
    max_iterations: int = 200,
    tracer: Optional[Tracer] = None,
) -> Tuple[SolveStats, Dict[int, Tuple[int, int]]]:
    """Modified policy iteration: greedy improvement + iterative evaluation.

    Policy evaluation runs fixed-policy expectation backups until the value
    change drops below ``evaluation_tolerance`` (or ``evaluation_sweeps``
    backups, whichever first); improvement is one greedy backup.  Terminates
    when the greedy action table stops changing.  An enabled ``tracer``
    receives one ``pi_round`` event per improvement round.
    """
    if max_iterations < 1:
        raise SolverError(
            f"max_iterations must be >= 1, got {max_iterations}"
        )
    if evaluation_sweeps < 1:
        raise SolverError(
            f"evaluation_sweeps must be >= 1, got {evaluation_sweeps}"
        )
    tracing = tracer is not None and tracer.enabled
    values = mdp.initial_values()
    start = time.perf_counter()
    action_table: Dict[int, Tuple[int, int]] = {}
    changed = -1
    delta = float("inf")
    for iteration in range(1, max_iterations + 1):
        result = mdp.backup(values, want_greedy=True)
        new_table = result.greedy
        values = result.values
        changed = sum(
            1 for s, a in new_table.items() if action_table.get(s) != a
        )
        if tracing:
            tracer.instant(
                "pi_round",
                "solver",
                (time.perf_counter() - start) * 1000.0,
                category="solver",
                args={"iteration": iteration, "actions_changed": changed},
            )
        if new_table == action_table and iteration > 1:
            return (
                SolveStats(
                    values=values,
                    iterations=iteration,
                    residual=0.0,
                    runtime_s=time.perf_counter() - start,
                    converged=True,
                ),
                action_table,
            )
        action_table = new_table
        for _ in range(evaluation_sweeps):
            new_values = mdp.backup_policy(values, action_table)
            delta = float(np.max(np.abs(new_values - values)))
            values = new_values
            if delta < evaluation_tolerance:
                break
    # Non-stabilization ceiling with residual diagnostics: how far the last
    # evaluation was from its fixed point and how many greedy actions were
    # still flipping when the budget ran out.
    raise SolverError(
        f"policy iteration did not stabilize after {max_iterations} rounds "
        f"(last evaluation delta {delta:.3e}, "
        f"{changed} greedy action(s) still changing)"
    )
