"""Probabilistic accuracy and latency guarantees (§5.1).

Given a worker MDP and a policy over it, RAMSIS computes the stationary
distribution of the policy-induced Markov chain via power iteration and
derives:

- the **expected latency SLO violation rate** — an upper bound on the
  online violation rate, because (1) quantized slack under-estimates real
  slack, so ``SLOSatisfied`` has false negatives but no false positives,
  and (2) a missed earliest deadline pessimistically counts the whole
  batch as missed (§5.1 intuitions);
- the **expected accuracy** — a lower bound on online accuracy per
  satisfied query, for the same reasons.

Two weightings are reported:

- ``per_query`` (default headline numbers): decision epochs are weighted
  by the number of queries they serve, which is what the paper's online
  metrics (*Accuracy Per Satisfied Query*, *Latency SLO Violation Rate*)
  measure;
- ``per_epoch``: the paper's §5.1 formulas verbatim, summing over states
  without batch weighting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.mdp import WorkerMDP, _FALLBACK
from repro.core.policy import Policy
from repro.errors import ConfigurationError, SolverError

__all__ = [
    "PolicyGuarantees",
    "OccupancyDistribution",
    "stationary_distribution",
    "stationary_occupancy",
    "total_variation",
    "evaluate_policy",
]


@dataclass(frozen=True)
class PolicyGuarantees:
    """Stationary summary statistics of a policy on its worker MDP."""

    expected_accuracy: float
    expected_violation_rate: float
    per_epoch_accuracy: float
    per_epoch_violation_rate: float
    full_state_probability: float
    idle_probability: float

    def meets(self, accuracy_floor: float, violation_ceiling: float) -> bool:
        """True when the guarantees satisfy both thresholds (the §5.1
        resource-scaling use case)."""
        return (
            self.expected_accuracy >= accuracy_floor
            and self.expected_violation_rate <= violation_ceiling
        )


def _policy_action_table(
    mdp: WorkerMDP, policy: Policy
) -> Dict[int, Tuple[int, int]]:
    """Encode a :class:`Policy` into the MDP's (model index, batch) table."""
    names = {name: i for i, name in enumerate(mdp.model_names)}
    table: Dict[int, Tuple[int, int]] = {}
    for n in range(1, mdp.max_queue + 1):
        for j in range(len(mdp.grid)):
            action = policy.action_at(n, j)
            m = _FALLBACK if action.is_late else names[action.model]
            table[mdp.space.index(n, j)] = (m, action.batch_size)
    table[mdp.space.FULL] = (_FALLBACK, mdp.max_queue)
    return table


def _chain_operator(
    mdp: WorkerMDP, table: Dict[int, Tuple[int, int]], operator: str
):
    """The induced chain, either dense rows or a CSR step operator.

    ``operator="dense"`` (the default everywhere) returns the ``(S, S)``
    row matrix; power iteration on it is the float-``==``-gated path.
    ``"sparse"``/``"auto"`` ask for the so-far-unexploited
    :meth:`TensorizedWorkerMDP.policy_rows_operator` CSR form — banded
    kernels at fine discretizations sit well below its density cutoff —
    returned pre-transposed so each step is one ``P^T @ dist`` sparse
    matvec.  Sparse matvecs reassociate sums, so this path is opt-in and
    agrees with dense to ``allclose``, never bitwise; ``"auto"`` falls
    back to dense when SciPy is missing, the backend has no operator
    (loop), or the chain is too dense, while ``"sparse"`` raises.
    """
    if operator not in ("dense", "sparse", "auto"):
        raise ConfigurationError(
            f"unknown chain operator {operator!r}; "
            "expected 'dense', 'sparse', or 'auto'"
        )
    rows = mdp.policy_rows(table)
    if operator == "dense":
        return rows, None
    maker = getattr(mdp, "policy_rows_operator", None)
    candidate = None if maker is None else maker(table)
    if candidate is None or isinstance(candidate, np.ndarray):
        if operator == "sparse":
            raise ConfigurationError(
                "sparse chain operator unavailable (SciPy missing, loop "
                "backend, or chain density above the sparsity cutoff); "
                "use operator='auto' to fall back to dense"
            )
        return rows, None
    return rows, candidate.T.tocsr()


def stationary_distribution(
    mdp: WorkerMDP,
    policy: Policy,
    tolerance: float = 1e-10,
    max_iterations: int = 100_000,
    operator: str = "dense",
) -> np.ndarray:
    """Stationary state distribution of the policy-induced chain.

    Power iteration on the chain's transition operator, matrix-free: each
    step accumulates probability mass through the per-state transition rows
    (§5.1 cites power iteration [40]).  Raises :class:`SolverError` when
    the chain fails to mix within ``max_iterations`` steps.

    ``operator`` selects the step operator (see :func:`_chain_operator`):
    the dense default is bit-reproducible and feeds every gated path;
    ``"sparse"``/``"auto"`` opt in to the CSR operator for large sparse
    chains, trading bitwise agreement for an ``allclose`` one.
    """
    table = _policy_action_table(mdp, policy)
    size = mdp.space.size

    # Pre-assemble the induced chain once; the tensor backend serves this
    # from its policy-evaluation cache, so stationary analysis and policy
    # evaluation share one array.  Power iteration below is then a pure
    # matrix-vector loop regardless of backend.
    rows, sparse_op = _chain_operator(mdp, table, operator)

    dist = np.full(size, 1.0 / size)
    for _ in range(max_iterations):
        updated = dist @ rows if sparse_op is None else sparse_op @ dist
        total = updated.sum()
        if total <= 0:
            raise SolverError("stationary iteration lost all probability mass")
        updated /= total
        if float(np.max(np.abs(updated - dist))) < tolerance:
            return updated
        dist = updated
    raise SolverError(
        f"power iteration did not converge within {max_iterations} steps"
    )


@dataclass(frozen=True)
class OccupancyDistribution:
    """Stationary per-worker state occupancy of a policy-induced chain.

    ``probs`` maps occupied states keyed ``"n,j"`` (the policy-JSON key
    convention) to their stationary probability; the special empty and
    full-queue states are reported separately.  The online auditor
    compares its empirical decision-epoch occupancy against
    :meth:`decision_conditional`.
    """

    probs: Mapping[str, float]
    empty_probability: float
    full_probability: float

    def decision_conditional(self) -> Dict[str, float]:
        """The distribution conditioned on decision states (non-empty).

        Online decision epochs only ever observe occupied states and the
        full-queue state — the empty state's sole transition is the
        arrival action — so this is the prediction an empirical
        decision-epoch histogram estimates.
        """
        mass = sum(self.probs.values()) + self.full_probability
        if mass <= 0.0:
            raise SolverError("stationary occupancy has no decision mass")
        out = {key: p / mass for key, p in self.probs.items() if p > 0.0}
        if self.full_probability > 0.0:
            out["full"] = self.full_probability / mass
        return out


def stationary_occupancy(
    mdp: WorkerMDP,
    policy: Policy,
    tolerance: float = 1e-10,
    operator: str = "dense",
) -> OccupancyDistribution:
    """The §5.1 stationary distribution keyed by ``(n, T_j)`` state.

    Same power iteration as :func:`stationary_distribution`, repackaged
    for consumers that need per-state probabilities (the live auditor's
    total-variation check) rather than the summary expectations.
    ``operator="sparse"``/``"auto"`` opts large occupancy studies into
    the CSR chain operator (see :func:`_chain_operator`).
    """
    dist = stationary_distribution(
        mdp, policy, tolerance=tolerance, operator=operator
    )
    space = mdp.space
    probs: Dict[str, float] = {}
    for n in range(1, mdp.max_queue + 1):
        for j in range(len(mdp.grid)):
            probs[f"{n},{j}"] = float(dist[space.index(n, j)])
    return OccupancyDistribution(
        probs=probs,
        empty_probability=float(dist[space.EMPTY]),
        full_probability=float(dist[space.FULL]),
    )


def total_variation(p: Mapping[str, float], q: Mapping[str, float]) -> float:
    """Total-variation distance ``0.5 * sum |p - q|`` over the key union."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def evaluate_policy(
    mdp: WorkerMDP,
    policy: Policy,
    tolerance: float = 1e-10,
    dist: Optional[np.ndarray] = None,
) -> PolicyGuarantees:
    """Compute §5.1's expected accuracy and violation rate for a policy.

    ``dist`` optionally supplies a precomputed stationary distribution
    (the stacked bank solves all loads' chains in one batched power
    iteration and hands each cell its slice); when omitted, the chain is
    solved here.
    """
    table = _policy_action_table(mdp, policy)
    if dist is None:
        dist = stationary_distribution(mdp, policy, tolerance=tolerance)
    space = mdp.space
    size = space.size

    # Static per-state action attributes (batch, accuracy, satisfied).
    batch = np.zeros(size, dtype=np.float64)
    accuracy_arr = np.zeros(size, dtype=np.float64)
    satisfied_arr = np.zeros(size, dtype=bool)
    for state_id in range(1, size):
        n, j = space.decode(state_id)
        m, b = table[state_id]
        if m == _FALLBACK:
            batch[state_id] = n
            continue
        slack = 0.0 if state_id == space.FULL else mdp.grid[j]
        batch[state_id] = b
        accuracy_arr[state_id] = mdp.accuracy_of(m)
        satisfied_arr[state_id] = mdp.latency_ms(m, b) <= slack

    # Cumulative sums reproduce the sequential per-state accumulation
    # bit-for-bit (skipped states contribute an exact 0.0).
    live = dist > 0.0
    live[space.EMPTY] = False
    sat = live & satisfied_arr

    def _acc(contrib: np.ndarray) -> float:
        return float(np.cumsum(contrib)[-1])

    served_weight = _acc(np.where(live, dist * batch, 0.0))
    epoch_weight = _acc(np.where(live, dist, 0.0))
    satisfied_weight = _acc(np.where(sat, dist * batch, 0.0))
    accuracy_weight = _acc(np.where(sat, dist * batch * accuracy_arr, 0.0))
    epoch_satisfied = _acc(np.where(sat, dist, 0.0))
    epoch_accuracy = _acc(np.where(sat, dist * accuracy_arr, 0.0))

    if served_weight <= 0.0:
        raise SolverError("policy never serves queries in steady state")
    violation = 1.0 - satisfied_weight / served_weight
    accuracy = accuracy_weight / satisfied_weight if satisfied_weight > 0 else 0.0
    per_epoch_violation = 1.0 - epoch_satisfied / epoch_weight
    per_epoch_accuracy = (
        epoch_accuracy / epoch_satisfied if epoch_satisfied > 0 else 0.0
    )
    return PolicyGuarantees(
        expected_accuracy=accuracy,
        expected_violation_rate=violation,
        per_epoch_accuracy=per_epoch_accuracy,
        per_epoch_violation_rate=per_epoch_violation,
        full_state_probability=float(dist[space.FULL]),
        idle_probability=float(dist[space.EMPTY]),
    )
