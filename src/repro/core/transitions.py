"""Worker-MDP transition probabilities (§4.4, Appendix I).

A service action ``a = (m, b)`` taken in state ``s = (n, T_j)`` occupies the
worker for the profiled latency ``l = l_w(m, b)``.  The next state is
determined by (I) how many queries arrive at the worker during ``l`` and
(II) *when* the first of them arrives — the first arrival after the decision
defines the earliest deadline, hence the slack bin, of the next state.

The paper decomposes ``l`` into intervals (Fig. 4):

- **B** ``[0, T_B)``: before the first arrival's slack window — zero worker
  arrivals allowed;
- **C** ``[T_B, T_B + T_C)``: the window in which the first worker arrival
  must land for the next slack to quantize to bin ``j'``;
- **D** ``[T_B + T_C, l]``: the remainder, absorbing the rest of the
  arrivals.

For a next state ``(n', T_{j'})`` the window is the set of first-arrival
times ``u`` with ``T_{j'} <= SLO - (l - u) < T_{j'+1}``, intersected with
``[0, l]``; exactly the paper's ``T_B = max(0, l + T_{j'} - SLO)`` etc.

Two views are implemented (see :class:`repro.core.config.TransitionView`):

- :class:`SplitViewKernelBuilder` — the worker's arrival process is the
  arrival family at ``load / K``.  Exact for ``K = 1``: with one worker the
  round-robin phase is degenerate and the interval-A conditioning of Eq. 2
  cancels between numerator and denominator, so transition rows do not
  depend on the current slack at all — only on ``(m, b, n)``.
- :class:`ExactRoundRobinKernelBuilder` — the paper's Eq. 2 in full: the
  worker receives every K-th central-queue arrival, transition rows are
  conditioned on the round-robin *phase* ``r = k_A % K``, and the phase
  distribution is inferred from interval A (the time the earliest queued
  query has already spent waiting).

Shortest-queue-first balancing (Appendix I) reuses the split-view builder
with the conditional per-worker rate of Gupta et al. [18]; see
:func:`repro.balancers.sqf_worker_rate_qps`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arrivals.distributions import ArrivalDistribution
from repro.core.discretization import TimeGrid

__all__ = [
    "StateSpace",
    "SplitViewKernelBuilder",
    "EquilibriumRenewalKernelBuilder",
    "ExactRoundRobinKernelBuilder",
    "RenewalGaps",
    "GammaGaps",
    "DeterministicGaps",
    "gaps_for_distribution",
]

#: Probability mass below which kernel entries are treated as exactly zero.
_MASS_EPSILON = 1e-12


@dataclass(frozen=True)
class StateSpace:
    """Index layout of a worker MDP's states.

    - index 0: the empty-queue state (``n = 0``; slack unconstrained) —
      the paper's ``(0, T_j)`` states collapse to one because the only
      action there is the arrival action (§4.3.4, Eq. 1);
    - index 1: the special full-queue state ``(phi, 0)`` (§4.2.3);
    - indices ``2 ..``: occupied states ``(n, j)`` for ``n`` in
      ``1..max_queue`` and ``j`` in ``0..len(grid)-1``, row-major in ``n``.
    """

    max_queue: int
    grid_size: int

    EMPTY: int = 0
    FULL: int = 1

    @property
    def size(self) -> int:
        """Total number of states."""
        return 2 + self.max_queue * self.grid_size

    def index(self, n: int, j: int) -> int:
        """State id of occupied state ``(n, j)``."""
        if not 1 <= n <= self.max_queue:
            raise ValueError(f"queue length {n} outside [1, {self.max_queue}]")
        if not 0 <= j < self.grid_size:
            raise ValueError(f"grid index {j} outside [0, {self.grid_size})")
        return 2 + (n - 1) * self.grid_size + j

    def decode(self, state_id: int) -> Tuple[int, int]:
        """Inverse of :meth:`index`; EMPTY decodes to ``(0, -1)`` and FULL
        to ``(max_queue, 0)`` (its §4.2.3 transition-equivalent)."""
        if state_id == self.EMPTY:
            return (0, -1)
        if state_id == self.FULL:
            return (self.max_queue, 0)
        offset = state_id - 2
        if not 0 <= offset < self.max_queue * self.grid_size:
            raise ValueError(f"state id {state_id} out of range")
        return (offset // self.grid_size + 1, offset % self.grid_size)

    def occupied_view(self, vector: np.ndarray) -> np.ndarray:
        """Reshape the occupied block of a state vector to ``(N, J)``."""
        return vector[2:].reshape(self.max_queue, self.grid_size)


def _service_windows(
    grid: TimeGrid, latency_ms: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per next-slack-bin interval lengths ``(T_B, T_C, T_D)``.

    Bin ``j'`` corresponds to first-arrival times in
    ``[T_j' + l - SLO, T_{j'+1} + l - SLO)`` clamped to ``[0, l]``.
    """
    values = grid.as_array()
    uppers = np.array([grid.upper(j) for j in range(len(grid))])
    lo = np.clip(values + latency_ms - grid.slo_ms, 0.0, latency_ms)
    hi = np.clip(uppers + latency_ms - grid.slo_ms, 0.0, latency_ms)
    # Bin 0 also absorbs *negative* slack: when the service outlasts the
    # SLO (a forced late action, §4.3.1), arrivals in [0, l - SLO) have
    # already missed their deadlines and quantize to slack 0.
    lo[0] = 0.0
    hi = np.maximum(hi, lo)
    return lo, hi - lo, latency_ms - hi


class SplitViewKernelBuilder:
    """Transition rows under the per-worker split view.

    Rows are keyed by the service latency ``l`` and, for partial-batch
    (variable batching) actions, by the leftover-queue geometry; they do not
    depend on the current state's slack (see module docstring).
    """

    def __init__(
        self,
        grid: TimeGrid,
        worker_arrivals: ArrivalDistribution,
        max_queue: int,
    ) -> None:
        self._grid = grid
        self._arrivals = worker_arrivals
        self._space = StateSpace(max_queue=max_queue, grid_size=len(grid))
        self._service_cache: Dict[float, np.ndarray] = {}
        self._count_cache: Dict[float, np.ndarray] = {}

    @property
    def space(self) -> StateSpace:
        """The state space the kernels are laid out over."""
        return self._space

    # ------------------------------------------------------------------
    # Full-drain rows (maximal batching, Eq. 2 with b = n)
    # ------------------------------------------------------------------
    def service_row(self, latency_ms: float) -> np.ndarray:
        """Transition row after draining the whole queue in ``latency_ms``.

        Returns a probability vector over the full state space:
        ``P[EMPTY]`` is zero arrivals, occupied entries follow the
        B/C/D window decomposition, and ``P[FULL]`` absorbs the truncated
        tail (Eq. 3).
        """
        key = round(float(latency_ms), 9)
        cached = self._service_cache.get(key)
        if cached is not None:
            return cached

        space = self._space
        row = np.zeros(space.size, dtype=np.float64)
        n_max = space.max_queue
        row[space.EMPTY] = self._arrivals.pmf(0, latency_ms)

        t_b, t_c, t_d = _service_windows(self._grid, latency_ms)
        occupied = space.occupied_view(row)  # (N, J) view into `row`
        live = np.nonzero(t_c > 0.0)[0]
        if live.size:
            # One batched pmf evaluation per window family; each matrix row
            # is bit-identical to the per-bin pmf_vector call it replaces.
            p_b0s = self._arrivals.pmf_matrix(0, t_b[live])[:, 0]
            pmf_cs = self._arrivals.pmf_matrix(n_max, t_c[live])
            pmf_ds = self._arrivals.pmf_matrix(n_max, t_d[live])
            for i, j in enumerate(live):
                p_b0 = p_b0s[i]
                if p_b0 <= _MASS_EPSILON:
                    continue
                conv = np.convolve(pmf_cs[i], pmf_ds[i])[: n_max + 1]
                # k_C >= 1: subtract the k_C = 0 term of the convolution.
                probs = p_b0 * (conv - pmf_cs[i][0] * pmf_ds[i])
                occupied[:, j] = np.maximum(probs[1:], 0.0)

        total = row.sum()
        row[space.FULL] = max(0.0, 1.0 - total)
        self._service_cache[key] = row
        return row

    # ------------------------------------------------------------------
    # Partial-drain rows (variable batching, b < n)
    # ------------------------------------------------------------------
    def arrival_counts(self, latency_ms: float) -> np.ndarray:
        """``P[k arrivals during latency_ms]`` for ``k = 0..max_queue``;
        the implicit tail mass is the overflow-to-FULL probability."""
        key = round(float(latency_ms), 9)
        cached = self._count_cache.get(key)
        if cached is not None:
            return cached
        counts = self._arrivals.pmf_vector(self._space.max_queue, latency_ms)
        self._count_cache[key] = counts
        return counts

    def partial_row(
        self, latency_ms: float, leftover: int, leftover_slack_ms: float
    ) -> np.ndarray:
        """Transition row when ``leftover >= 1`` queries remain queued.

        The earliest remaining deadline is the conservative closure
        ``T_j - l`` (DESIGN.md §3): it lower-bounds the true leftover slack
        and is never later than any new arrival's deadline, so the next
        state's slack bin is deterministic; only the arrival count is
        random.
        """
        if leftover < 1:
            raise ValueError("partial_row requires leftover >= 1")
        space = self._space
        row = np.zeros(space.size, dtype=np.float64)
        j_left = self._grid.floor_index(leftover_slack_ms)
        counts = self.arrival_counts(latency_ms)
        for k in range(space.max_queue - leftover + 1):
            row[space.index(leftover + k, j_left)] = counts[k]
        row[space.FULL] = max(0.0, 1.0 - row.sum())
        return row


class RenewalGaps:
    """Inter-arrival gap distribution of a worker's renewal arrival process.

    The equilibrium-renewal kernel builder needs three primitives:

    - ``gap_cdf(u)``: CDF of one gap;
    - ``kfold_cdf(k, t)``: CDF of the sum of ``k`` i.i.d. gaps (``k >= 1``);
    - ``mean_ms``: the mean gap.

    Subclasses provide vectorized implementations.
    """

    mean_ms: float

    def gap_cdf(self, u: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def kfold_cdf(self, k: int, t: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def equilibrium_cdf(self, t: float) -> float:
        """CDF of the forward recurrence time (time to the next arrival
        seen from an arbitrary time point): ``(1/mean) int_0^t (1-F)``.

        Default implementation by fixed Gauss-Legendre quadrature;
        subclasses override with closed forms.
        """
        if t <= 0.0:
            return 0.0
        nodes, weights = np.polynomial.legendre.leggauss(48)
        u = 0.5 * t * (nodes + 1.0)
        integrand = 1.0 - self.gap_cdf(u)
        return float((0.5 * t) * (weights @ integrand) / self.mean_ms)

    def equilibrium_density(self, u: np.ndarray) -> np.ndarray:
        """Density of the forward recurrence time: ``(1 - F(u)) / mean``."""
        return (1.0 - self.gap_cdf(np.asarray(u, dtype=np.float64))) / self.mean_ms


class GammaGaps(RenewalGaps):
    """Gamma(shape, scale) gaps — Erlang when ``shape`` is an integer.

    Round-robin thinning of a Poisson process with ``K`` workers yields
    Erlang(``K``) worker gaps; thinning a Gamma(``a``) renewal process
    yields Gamma(``a * K``) gaps.  ``shape = 1`` is the Poisson worker.
    """

    def __init__(self, shape: float, scale_ms: float) -> None:
        if shape <= 0 or scale_ms <= 0:
            raise ValueError("shape and scale_ms must be > 0")
        self.shape = float(shape)
        self.scale_ms = float(scale_ms)
        self.mean_ms = self.shape * self.scale_ms

    def gap_cdf(self, u: np.ndarray) -> np.ndarray:
        from scipy.special import gammainc

        x = np.maximum(np.asarray(u, dtype=np.float64), 0.0) / self.scale_ms
        return gammainc(self.shape, x)

    def kfold_cdf(self, k: int, t: np.ndarray) -> np.ndarray:
        from scipy.special import gammainc

        if k < 1:
            raise ValueError("kfold_cdf requires k >= 1")
        x = np.maximum(np.asarray(t, dtype=np.float64), 0.0) / self.scale_ms
        return gammainc(k * self.shape, x)

    def equilibrium_cdf(self, t: float) -> float:
        # int_0^t (1 - F) = t - t F(t) + shape*scale*F_{shape+1}(t); / mean.
        from scipy.special import gammainc

        if t <= 0.0:
            return 0.0
        x = t / self.scale_ms
        integral = (
            t
            - t * float(gammainc(self.shape, x))
            + self.mean_ms * float(gammainc(self.shape + 1.0, x))
        )
        return min(integral / self.mean_ms, 1.0)


class DeterministicGaps(RenewalGaps):
    """Fixed inter-arrival gaps — the zero-burstiness limit."""

    def __init__(self, gap_ms: float) -> None:
        if gap_ms <= 0:
            raise ValueError("gap_ms must be > 0")
        self.gap_ms = float(gap_ms)
        self.mean_ms = self.gap_ms

    def gap_cdf(self, u: np.ndarray) -> np.ndarray:
        return (np.asarray(u, dtype=np.float64) >= self.gap_ms).astype(np.float64)

    def kfold_cdf(self, k: int, t: np.ndarray) -> np.ndarray:
        if k < 1:
            raise ValueError("kfold_cdf requires k >= 1")
        return (np.asarray(t, dtype=np.float64) >= k * self.gap_ms).astype(
            np.float64
        )

    def equilibrium_cdf(self, t: float) -> float:
        return min(max(t, 0.0) / self.gap_ms, 1.0)


def gaps_for_distribution(distribution: ArrivalDistribution) -> RenewalGaps:
    """Gap model of a per-worker arrival distribution.

    Poisson maps to exponential gaps (Gamma shape 1), Gamma to Gamma gaps,
    deterministic to fixed gaps.
    """
    from repro.arrivals.distributions import (
        DeterministicArrivals,
        GammaArrivals,
        PoissonArrivals,
    )

    if isinstance(distribution, GammaArrivals):
        return GammaGaps(
            shape=distribution.shape,
            scale_ms=distribution.mean_interarrival_ms / distribution.shape,
        )
    if isinstance(distribution, PoissonArrivals):
        return GammaGaps(shape=1.0, scale_ms=distribution.mean_interarrival_ms)
    if isinstance(distribution, DeterministicArrivals):
        return DeterministicGaps(distribution.mean_interarrival_ms)
    raise TypeError(
        f"no renewal-gap model for {type(distribution).__name__}; "
        "use the POISSON_SPLIT or EXACT_ROUND_ROBIN view instead"
    )


class EquilibriumRenewalKernelBuilder:
    """Transition rows for a worker whose arrivals form a renewal process.

    Used by the ``ROUND_ROBIN_MARGINAL`` view: round-robin thinning of the
    central arrival process gives each worker a *renewal* process (Erlang
    gaps for a Poisson central queue), whose increments are **not**
    independent — the naive product form of Eq. 2 does not apply.  Instead,
    rows are computed from the renewal structure directly:

    - the first arrival after a decision epoch has the *equilibrium*
      (forward-recurrence) distribution ``f_e(u) = (1 - F(u)) / mean`` —
      the stationary-phase analogue of the paper's interval-A phase
      conditioning;
    - subsequent arrivals renew with ordinary gaps, so the count of further
      arrivals in the remaining ``l - u`` has pmf
      ``F_{k}(l-u) - F_{k+1}(l-u)``.

    ``P[n' = a, slack bin j']`` is the window integral
    ``int_W f_e(u) * (F_{a-1}(l-u) - F_a(l-u)) du`` evaluated with
    Gauss-Legendre quadrature per window (exact window geometry, smooth
    integrands).  For exponential gaps this reproduces the Poisson split
    view exactly (memorylessness), which the test suite asserts.
    """

    #: Gauss-Legendre points per slack window.
    _QUAD_POINTS = 8
    #: Gauss-Legendre points for whole-service count integrals.
    _COUNT_QUAD_POINTS = 64

    def __init__(
        self,
        grid: TimeGrid,
        gaps: RenewalGaps,
        max_queue: int,
    ) -> None:
        self._grid = grid
        self._gaps = gaps
        self._space = StateSpace(max_queue=max_queue, grid_size=len(grid))
        self._service_cache: Dict[float, np.ndarray] = {}
        self._count_cache: Dict[float, np.ndarray] = {}
        nodes, weights = np.polynomial.legendre.leggauss(self._QUAD_POINTS)
        self._nodes = nodes
        self._weights = weights
        nodes_c, weights_c = np.polynomial.legendre.leggauss(self._COUNT_QUAD_POINTS)
        self._nodes_c = nodes_c
        self._weights_c = weights_c

    @property
    def space(self) -> StateSpace:
        """The state space the kernels are laid out over."""
        return self._space

    def _count_pmf_at(self, remaining: np.ndarray) -> np.ndarray:
        """``pmf[a, i] = P[a further arrivals in remaining[i]]`` for
        ``a = 0..max_queue - 1`` (arrivals after the first one)."""
        n_max = self._space.max_queue
        cdfs = np.empty((n_max, remaining.size), dtype=np.float64)
        for k in range(1, n_max + 1):
            cdfs[k - 1] = self._gaps.kfold_cdf(k, remaining)
        pmf = np.empty_like(cdfs)
        pmf[0] = 1.0 - cdfs[0]
        pmf[1:] = cdfs[:-1] - cdfs[1:]
        return np.clip(pmf, 0.0, 1.0)

    def service_row(self, latency_ms: float) -> np.ndarray:
        """Transition row after a full drain taking ``latency_ms``."""
        key = round(float(latency_ms), 9)
        cached = self._service_cache.get(key)
        if cached is not None:
            return cached

        space = self._space
        row = np.zeros(space.size, dtype=np.float64)
        row[space.EMPTY] = 1.0 - self._gaps.equilibrium_cdf(latency_ms)

        lo, width, _ = _service_windows(self._grid, latency_ms)
        occupied = space.occupied_view(row)
        live = np.nonzero(width > 0.0)[0]
        if live.size:
            # Gauss-Legendre nodes for every live window at once: (L, Q).
            half = 0.5 * width[live]
            u = lo[live][:, None] + half[:, None] * (self._nodes[None, :] + 1.0)
            w = self._weights[None, :] * half[:, None]
            f_e = self._gaps.equilibrium_density(u)
            # (N, L, Q) count pmf over the remaining time after the first
            # arrival, flattened so each k-fold CDF is one vectorized call.
            pmf = self._count_pmf_at((latency_ms - u).ravel()).reshape(
                space.max_queue, live.size, self._QUAD_POINTS
            )
            occupied[:, live] = np.einsum("nlq,lq->nl", pmf, w * f_e)

        total = row.sum()
        if total > 1.0:
            # Quadrature overshoot (only possible for discontinuous gap
            # densities, e.g. deterministic gaps): renormalize.
            row /= total
            total = 1.0
        row[space.FULL] = max(0.0, 1.0 - total)
        self._service_cache[key] = row
        return row

    def arrival_counts(self, latency_ms: float) -> np.ndarray:
        """``P[k arrivals during latency_ms]`` for ``k = 0..max_queue``."""
        key = round(float(latency_ms), 9)
        cached = self._count_cache.get(key)
        if cached is not None:
            return cached
        n_max = self._space.max_queue
        counts = np.zeros(n_max + 1, dtype=np.float64)
        counts[0] = 1.0 - self._gaps.equilibrium_cdf(latency_ms)
        if latency_ms > 0.0:
            half = 0.5 * latency_ms
            u = half * (self._nodes_c + 1.0)
            w = self._weights_c * half
            f_e = self._gaps.equilibrium_density(u)
            pmf = self._count_pmf_at(latency_ms - u)  # (N, Qc)
            counts[1:] = pmf @ (w * f_e)
        np.clip(counts, 0.0, 1.0, out=counts)
        total = counts.sum()
        if total > 1.0:
            counts /= total  # quadrature overshoot; see service_row
        self._count_cache[key] = counts
        return counts

    def partial_row(
        self, latency_ms: float, leftover: int, leftover_slack_ms: float
    ) -> np.ndarray:
        """Transition row for a partial drain (see split-view analogue)."""
        if leftover < 1:
            raise ValueError("partial_row requires leftover >= 1")
        space = self._space
        row = np.zeros(space.size, dtype=np.float64)
        j_left = self._grid.floor_index(leftover_slack_ms)
        counts = self.arrival_counts(latency_ms)
        for k in range(space.max_queue - leftover + 1):
            row[space.index(leftover + k, j_left)] = counts[k]
        row[space.FULL] = max(0.0, 1.0 - row.sum())
        return row


class ExactRoundRobinKernelBuilder:
    """The paper's exact Eq. 2 for ``K`` round-robin workers.

    Rows are produced *per phase* ``r`` (central arrivals since this
    worker's last arrival, mod ``K``); the caller mixes them with the
    phase distribution inferred from interval A via :meth:`phase_weights`.
    """

    def __init__(
        self,
        grid: TimeGrid,
        central_arrivals: ArrivalDistribution,
        num_workers: int,
        max_queue: int,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._grid = grid
        self._arrivals = central_arrivals
        self._k = num_workers
        self._space = StateSpace(max_queue=max_queue, grid_size=len(grid))
        self._cache: Dict[float, np.ndarray] = {}

    @property
    def space(self) -> StateSpace:
        """The state space the kernels are laid out over."""
        return self._space

    @property
    def num_workers(self) -> int:
        """``K`` — the round-robin fan-out."""
        return self._k

    def phase_weights(self, n: int, slack_ms: float) -> np.ndarray:
        """Distribution of the round-robin phase ``r`` given state ``(n, T_j)``.

        Interval A (length ``SLO - T_j``) saw the ``n - 1`` worker arrivals
        after the earliest queued query, so the central queue received
        ``k_A in [(n-1)K, nK - 1]`` queries; ``r = k_A % K`` enumerates that
        range.  This is the denominator conditioning of Eq. 2.
        """
        t_a = max(self._grid.slo_ms - slack_ms, 0.0)
        k = self._k
        lo = (n - 1) * k
        pmf = self._arrivals.pmf_vector(lo + k - 1, t_a)
        weights = pmf[lo : lo + k].astype(np.float64, copy=True)
        total = weights.sum()
        if total <= _MASS_EPSILON:
            # Degenerate conditioning (deep in the distribution tail):
            # fall back to a uniform phase, which keeps rows well-defined.
            return np.full(k, 1.0 / k)
        return weights / total

    def phase_weights_table(self, n_max: int, slack_ms: float) -> np.ndarray:
        """``(n_max, K)`` phase distributions for every queue length at once.

        Row ``n - 1`` equals ``phase_weights(n, slack_ms)`` bit-for-bit:
        the counting pmfs are prefix-stable in ``kmax`` (element ``i`` of
        ``pmf_vector(kmax, t)`` does not depend on ``kmax``), so one long
        pmf evaluation replaces the ``n_max`` per-queue-length calls.
        """
        t_a = max(self._grid.slo_ms - slack_ms, 0.0)
        k = self._k
        big = self._arrivals.pmf_vector(n_max * k - 1, t_a)
        out = np.empty((n_max, k), dtype=np.float64)
        for n in range(1, n_max + 1):
            lo = (n - 1) * k
            weights = big[lo : lo + k].astype(np.float64, copy=True)
            total = weights.sum()
            if total <= _MASS_EPSILON:
                out[n - 1] = 1.0 / k
            else:
                out[n - 1] = weights / total
        return out

    def service_rows_by_phase(self, latency_ms: float) -> np.ndarray:
        """``(K, S)`` matrix of transition rows, one per phase ``r``."""
        key = round(float(latency_ms), 9)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        space = self._space
        k = self._k
        n_max = space.max_queue
        rows = np.zeros((k, space.size), dtype=np.float64)
        t_b, t_c, t_d = _service_windows(self._grid, latency_ms)

        for r in range(k):
            # n' = 0: at most K - r - 1 central arrivals during the service.
            rows[r, space.EMPTY] = self._arrivals.cdf(k - r - 1, latency_ms)

        n_arr = np.arange(1, n_max + 1)
        occupied = rows[:, 2:].reshape(k, n_max, len(self._grid))
        for j in range(len(self._grid)):
            if t_c[j] <= 0.0:
                continue
            sup_c = self._arrivals.support_bound(t_c[j])
            sup_d = self._arrivals.support_bound(t_d[j])
            need = (n_max + 1) * k  # largest window offset we will read
            pmf_c = self._arrivals.pmf_vector(max(sup_c, need), t_c[j])
            pmf_d = self._arrivals.pmf_vector(max(sup_d, 1), t_d[j])
            sup_b = min(
                self._arrivals.support_bound(t_b[j]), k - 1
            )  # k_B < K - r <= K
            pmf_b = self._arrivals.pmf_vector(sup_b, t_b[j])

            # The next-queue mass depends on (r, k_b) only through
            # c_min = K - r - k_b: the window [n'K - r - k_b, (n'+1)K - r -
            # k_b) rewrites to [(n'-1)K + c_min, n'K + c_min).  Compute one
            # mass vector over n' per distinct c_min (K of them instead of
            # K(K+1)/2 convolutions) and reuse it across phases.
            mass_by_cmin: Dict[int, Optional[np.ndarray]] = {}

            def mass_for(c_min: int) -> Optional[np.ndarray]:
                if c_min in mass_by_cmin:
                    return mass_by_cmin[c_min]
                masked = pmf_c.copy()
                masked[:c_min] = 0.0
                if masked.sum() <= _MASS_EPSILON:
                    mass_by_cmin[c_min] = None
                    return None
                g = np.convolve(masked, pmf_d)
                cum = np.concatenate(([0.0], np.cumsum(g)))
                top = len(cum) - 1
                lo_t = (n_arr - 1) * k + c_min  # >= c_min >= 1
                hi_idx = np.minimum(n_arr * k + c_min, top)
                mass = cum[hi_idx] - cum[np.minimum(lo_t, top)]
                mass[lo_t >= top] = 0.0
                mass_by_cmin[c_min] = mass
                return mass

            for r in range(k):
                for k_b in range(min(sup_b, k - r - 1) + 1):
                    p_b = pmf_b[k_b]
                    if p_b <= _MASS_EPSILON:
                        continue
                    mass = mass_for(k - r - k_b)
                    if mass is None:
                        continue
                    add = mass > 0.0
                    occupied[r, add, j] += p_b * mass[add]

        totals = rows.sum(axis=1)
        rows[:, space.FULL] = np.maximum(0.0, 1.0 - totals)
        self._cache[key] = rows
        return rows
