"""Monte-Carlo validation of worker MDPs and their guarantees.

The §5.1 expectations are only as good as the transition kernels they are
computed from.  :func:`simulate_chain` checks the kernels *directly*: it
replays one worker's decision process against a sampled arrival stream from
the same per-worker distribution the MDP was built on — no load balancer,
no cluster — and measures empirical state-visit frequencies, accuracy per
satisfied query, and violation rate.  Agreement with
:func:`repro.core.guarantees.evaluate_policy` validates the kernel
construction end to end; the test suite asserts it on every view.

This is deliberately *not* the ISS simulator: it exercises exactly the
abstraction the MDP models (single worker, renewal arrivals, policy-driven
decisions), so discrepancies localize to the kernel math rather than to
queueing or balancing effects.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.mdp import WorkerMDP
from repro.core.policy import Policy

__all__ = ["ChainStats", "simulate_chain"]


@dataclass(frozen=True)
class ChainStats:
    """Empirical statistics from one chain replay."""

    epochs: int
    queries_served: int
    accuracy_per_satisfied_query: float
    violation_rate: float
    state_frequency: Dict[Tuple[int, int], float]
    idle_fraction: float
    full_fraction: float


def simulate_chain(
    mdp: WorkerMDP,
    policy: Policy,
    num_epochs: int = 50_000,
    seed: int = 0,
    warmup_epochs: int = 500,
) -> ChainStats:
    """Replay ``policy`` on one worker against sampled renewal arrivals.

    Uses the MDP's own per-worker arrival distribution, continuous
    deadlines (no quantization — quantization only happens at decision
    time, like the online selector), and the profiled p95 latencies.
    """
    config = mdp.config
    arrivals = config.per_worker_arrivals()
    rng = np.random.default_rng(seed)
    slo = config.slo_ms

    # Pre-sample a long arrival stream (regenerated on exhaustion).
    def fresh_gaps() -> np.ndarray:
        return arrivals.sample_interarrivals(rng, 65_536)

    gaps = fresh_gaps()
    gap_index = 0
    next_arrival = float(gaps[0])

    def advance_arrival() -> None:
        nonlocal gap_index, gaps, next_arrival
        gap_index += 1
        if gap_index >= gaps.shape[0]:
            gaps = fresh_gaps()
            gap_index = 0
        next_arrival += float(gaps[gap_index])

    model_by_name = {m.name: m for m in config.effective_models()}
    fastest = config.effective_models().fastest()

    now = 0.0
    queue: list = []  # deadlines, ascending (FIFO with a single SLO)
    visits: Counter = Counter()
    idle_epochs = 0
    full_epochs = 0
    served = 0
    satisfied = 0
    accuracy_sum = 0.0
    drop_mode = config.drop_late

    for epoch in range(num_epochs):
        counting = epoch >= warmup_epochs
        if not queue:
            if counting:
                idle_epochs += 1
            # Arrival action: idle until the next arrival.
            now = max(now, next_arrival)
            queue.append(now + slo)
            advance_arrival()
            continue

        n = len(queue)
        slack = queue[0] - now
        if counting:
            if n > mdp.max_queue:
                full_epochs += 1
            else:
                visits[(n, mdp.grid.floor_index(slack))] += 1

        action = policy.action_for(n, slack)
        if action.is_late and drop_mode:
            if counting:
                served += n
            queue.clear()
            continue
        model = model_by_name.get(action.model, fastest)
        batch = min(action.batch_size, n)
        latency = model.latency_ms(batch)
        batch_deadlines = queue[:batch]
        del queue[:batch]
        now += latency
        if counting:
            for deadline in batch_deadlines:
                served += 1
                if now <= deadline:
                    satisfied += 1
                    accuracy_sum += model.accuracy
        # Admit the arrivals that landed during the service.
        while next_arrival <= now:
            queue.append(next_arrival + slo)
            advance_arrival()

    total_visits = sum(visits.values()) + idle_epochs + full_epochs
    frequency = {
        state: count / total_visits for state, count in visits.items()
    }
    return ChainStats(
        epochs=num_epochs - warmup_epochs,
        queries_served=served,
        accuracy_per_satisfied_query=(
            accuracy_sum / satisfied if satisfied else 0.0
        ),
        violation_rate=1.0 - (satisfied / served) if served else 0.0,
        state_frequency=frequency,
        idle_fraction=idle_epochs / total_visits if total_visits else 0.0,
        full_fraction=full_epochs / total_visits if total_visits else 0.0,
    )
