"""The per-worker model-selection MDP (§4).

:class:`WorkerMDP` assembles the state space (§4.2), action constraints
(§4.3), rewards (§4.1), and transition kernels (§4.4) for one worker, and
exposes vectorized Bellman backups that the solvers in
:mod:`repro.core.solvers` drive to convergence.

State layout (see :class:`repro.core.transitions.StateSpace`): one empty
state, one full-queue state, and ``N_w * |T_w|`` occupied states.

Action constraints implemented exactly as in the paper:

- **latency** (§4.3.1): ``(m, b)`` is valid in ``(n, T_j)`` iff
  ``l_w(m, b) <= T_j``; when no action qualifies, the forced fallback
  ``(m_min, n)`` runs the whole queue on the fastest model (late, reward 0);
- **batch size** (§4.3.2): maximal batching fixes ``b = n``; variable
  batching allows every ``1 <= b <= n``;
- **model** (§4.3.3): models off the accuracy-latency Pareto front are
  pruned before the MDP is built (config flag).

The reward is ``Accuracy(a) * SLOSatisfied(s, a)`` (§4.1); an optional
per-query weighting (``reward_per_query``) multiplies by the batch size,
which the paper does not do — exposed as an ablation knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import (
    BatchingMode,
    TransitionView,
    WorkerMDPConfig,
)
from repro.core.discretization import TimeGrid
from repro.core.policy import Action, Policy, PolicyMetadata
from repro.core.transitions import (
    EquilibriumRenewalKernelBuilder,
    ExactRoundRobinKernelBuilder,
    SplitViewKernelBuilder,
    StateSpace,
    gaps_for_distribution,
)
from repro.errors import ConfigurationError

__all__ = [
    "WorkerMDP",
    "build_worker_mdp",
    "resolve_solver",
    "BackupResult",
    "SOLVER_BACKENDS",
]

#: Encoded "no action possible other than the forced fallback".
_FALLBACK = -1

#: Recognized solver backends (see :func:`resolve_solver`).
SOLVER_BACKENDS = ("auto", "tensor", "loop", "stacked")


def resolve_solver(solver: str) -> str:
    """Resolve a ``solver=`` knob to a concrete backend.

    ``"loop"`` is the reference implementation (per-action / per-state
    Python iteration in the fold and policy-evaluation paths);
    ``"tensor"`` is the stacked-contraction backend
    (:class:`repro.core.tensor.TensorizedWorkerMDP`), float-identical on
    the value-iteration path and ≥3x faster at bench scale (gated by
    ``benchmarks/bench_state_space.py``).  ``"auto"`` picks the tensor
    backend — the equivalence suite keeps that substitution honest.

    ``"stacked"`` is a *bank-level* backend: whole load grids solve as
    one batched tensor program (:mod:`repro.core.bank`), dispatched in
    :meth:`PolicyGenerator.generate_many`.  A single-MDP construction
    under it resolves to the tensor backend — one load's stacked solve
    *is* the tensor solve.
    """
    if solver not in SOLVER_BACKENDS:
        raise ConfigurationError(
            f"unknown solver {solver!r}; expected one of {SOLVER_BACKENDS}"
        )
    return "tensor" if solver in ("auto", "stacked") else solver


@dataclass
class BackupResult:
    """One Bellman backup: new values plus the greedy action table.

    ``greedy`` maps state id -> encoded action ``(model_index, batch)``;
    fallback states carry ``(_FALLBACK, n)``.
    """

    values: np.ndarray
    greedy: Dict[int, Tuple[int, int]]


class WorkerMDP:
    """A fully-materialized worker MDP ready for solving.

    Use :func:`build_worker_mdp` (or ``WorkerMDP(config)``) to construct.
    """

    def __init__(self, config: WorkerMDPConfig) -> None:
        self._config = config
        models = sorted(
            config.effective_models(), key=lambda m: (m.latency_ms(1), -m.accuracy)
        )
        if not models:
            raise ConfigurationError("no models available after pruning")
        self._models = models
        self._grid: TimeGrid = config.build_grid()
        self._max_queue = config.effective_max_queue()
        self._num_models = len(models)

        n, j_count = self._max_queue, len(self._grid)
        # latency[m, b-1] = p95 latency of model m at batch b, b = 1..N_w.
        self._latency = np.array(
            [[m.latency_ms(b) for b in range(1, n + 1)] for m in models]
        )
        self._accuracy = np.array([m.accuracy for m in models])
        grid_values = self._grid.as_array()
        # valid[m, n-1, j]: is (m, b=n) allowed in (n, T_j)?
        self._valid = self._latency[:, :, None] <= grid_values[None, None, :]

        # Per-action discounts: plain MDPs discount once per epoch; the
        # semi-MDP extension discounts by real elapsed time.
        if config.duration_aware_discount:
            reference = config.effective_reference_ms()
            self._gamma_action = config.discount ** (self._latency / reference)
            mean_gap = config.per_worker_arrivals().mean_interarrival_ms
            self._gamma_empty = config.discount ** (mean_gap / reference)
        else:
            self._gamma_action = np.full_like(self._latency, config.discount)
            self._gamma_empty = config.discount

        reward_scale = (
            np.arange(1, n + 1, dtype=np.float64)
            if config.reward_per_query
            else np.ones(n)
        )
        # reward[m, n-1, j] for the full-drain action (m, n).
        self._reward = (
            self._accuracy[:, None, None] * reward_scale[None, :, None] * self._valid
        )

        if config.view is TransitionView.POISSON_SPLIT:
            self._split = SplitViewKernelBuilder(
                self._grid, config.per_worker_arrivals(), self._max_queue
            )
            self._exact: Optional[ExactRoundRobinKernelBuilder] = None
            self._space = self._split.space
            self._rows = self._build_split_rows()
            self._phase_weights = None
        elif config.view is TransitionView.ROUND_ROBIN_MARGINAL:
            self._split = EquilibriumRenewalKernelBuilder(
                self._grid,
                gaps_for_distribution(config.per_worker_arrivals()),
                self._max_queue,
            )
            self._exact = None
            self._space = self._split.space
            self._rows = self._build_split_rows()
            self._phase_weights = None
        elif config.view is TransitionView.EXACT_ROUND_ROBIN:
            self._exact = ExactRoundRobinKernelBuilder(
                self._grid, config.arrivals, config.num_workers, self._max_queue
            )
            self._split = None
            self._space = self._exact.space
            self._rows_by_phase = self._build_exact_rows()
            self._phase_weights = self._build_phase_weights()
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigurationError(f"unknown view {config.view}")

        self._counts_cache: Dict[float, np.ndarray] = {}
        # Variable batching: everything about a partial-drain action that
        # does not depend on the value vector (validity, arrival counts,
        # leftover slack-bin map, reward, discount) is precomputed once
        # here instead of per Bellman sweep — the per-sweep work drops to
        # one windowed contraction and one masked compare per action.
        self._partial_plan = (
            self._build_partial_plan()
            if config.batching is BatchingMode.VARIABLE
            else []
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> WorkerMDPConfig:
        """The offline inputs this MDP was built from."""
        return self._config

    @property
    def solver(self) -> str:
        """The solve backend this instance implements (``"loop"`` here)."""
        return "loop"

    @property
    def grid(self) -> TimeGrid:
        """Slack-time grid."""
        return self._grid

    @property
    def space(self) -> StateSpace:
        """State index layout."""
        return self._space

    @property
    def num_states(self) -> int:
        """Total state count ``|S|``."""
        return self._space.size

    @property
    def num_models(self) -> int:
        """Models available to actions (after pruning)."""
        return self._num_models

    @property
    def model_names(self) -> Tuple[str, ...]:
        """Model names in action-index order (fastest first)."""
        return tuple(m.name for m in self._models)

    @property
    def max_queue(self) -> int:
        """``N_w``."""
        return self._max_queue

    def latency_ms(self, model_index: int, batch: int) -> float:
        """Profiled latency of an encoded action."""
        return float(self._latency[model_index, batch - 1])

    def accuracy_of(self, model_index: int) -> float:
        """Accuracy of a model by action index."""
        return float(self._accuracy[model_index])

    def valid_actions(self, n: int, j: int) -> List[Tuple[int, int]]:
        """Encoded valid actions ``(m, b)`` in occupied state ``(n, j)``.

        Empty when only the forced fallback applies.
        """
        actions: List[Tuple[int, int]] = []
        batches = (
            range(1, n + 1)
            if self._config.batching is BatchingMode.VARIABLE
            else (n,)
        )
        for b in batches:
            for m in range(self._num_models):
                if self._latency[m, b - 1] <= self._grid[j]:
                    actions.append((m, b))
        return actions

    # ------------------------------------------------------------------
    # Kernel assembly
    # ------------------------------------------------------------------
    def _build_split_rows(self) -> np.ndarray:
        """(M, N, S) full-drain transition rows under the split view."""
        assert self._split is not None
        rows = np.zeros(
            (self._num_models, self._max_queue, self._space.size), dtype=np.float64
        )
        for m in range(self._num_models):
            for n in range(1, self._max_queue + 1):
                rows[m, n - 1] = self._split.service_row(self._latency[m, n - 1])
        return rows

    def _build_exact_rows(self) -> np.ndarray:
        """(M, N, K, S) full-drain rows per phase under the exact view."""
        assert self._exact is not None
        k = self._exact.num_workers
        rows = np.zeros(
            (self._num_models, self._max_queue, k, self._space.size),
            dtype=np.float64,
        )
        for m in range(self._num_models):
            for n in range(1, self._max_queue + 1):
                rows[m, n - 1] = self._exact.service_rows_by_phase(
                    self._latency[m, n - 1]
                )
        return rows

    def _build_phase_weights(self) -> np.ndarray:
        """(N, J, K) phase distributions for every occupied state, plus the
        FULL state's weights stored separately in ``_full_phase``."""
        assert self._exact is not None
        n_max, j_count = self._max_queue, len(self._grid)
        k = self._exact.num_workers
        weights = np.zeros((n_max, j_count, k), dtype=np.float64)
        for j in range(j_count):
            # One batched pmf evaluation covers all queue lengths at this
            # slack (bit-identical to per-(n, j) phase_weights calls).
            weights[:, j, :] = self._exact.phase_weights_table(
                n_max, self._grid[j]
            )
        self._full_phase = self._exact.phase_weights(n_max, 0.0)
        return weights

    def _build_partial_plan(
        self,
    ) -> List[Tuple[int, int, np.ndarray, np.ndarray, float, np.ndarray, float, float]]:
        """Sweep-invariant data for every partial-drain action ``(m, b < n)``.

        Entries are ``(m, b, valid_j, counts, residual, j_map, reward,
        gamma)`` in the exact ``(m, b)`` order the per-sweep loop used to
        iterate, so greedy tie-breaking is unchanged.
        """
        grid_values = self._grid.as_array()
        n_max, j_count = self._max_queue, len(self._grid)
        plan = []
        for m in range(self._num_models):
            for b in range(1, n_max):  # partial drains only (b < n <= N)
                latency = self._latency[m, b - 1]
                valid_j = latency <= grid_values  # (J,)
                if not valid_j.any():
                    continue
                counts = self._counts_for(latency)  # (N + 1,)
                residual = max(0.0, 1.0 - float(counts.sum()))
                # Leftover slack T_j - l quantizes to a per-j bin index.
                j_map = np.array(
                    [
                        self._grid.floor_index(grid_values[j] - latency)
                        for j in range(j_count)
                    ]
                )
                reward = self._accuracy[m] * (
                    float(b) if self._config.reward_per_query else 1.0
                )
                plan.append(
                    (
                        m,
                        b,
                        valid_j,
                        counts,
                        residual,
                        j_map,
                        reward,
                        float(self._gamma_action[m, b - 1]),
                    )
                )
        return plan

    # ------------------------------------------------------------------
    # Bellman backup
    # ------------------------------------------------------------------
    def backup(self, values: np.ndarray, want_greedy: bool = False) -> BackupResult:
        """One synchronous Bellman optimality backup.

        Returns updated values; when ``want_greedy`` also returns the
        greedy (argmax) action per state, used for policy extraction.
        """
        gamma = self._config.discount
        space = self._space
        n_max, j_count, m_count = self._max_queue, len(self._grid), self._num_models

        # Expected continuation value of every full-drain action (m, n).
        if self._split is not None:
            ev_serve = self._rows @ values  # (M, N)
            ev_state = np.broadcast_to(
                ev_serve[:, :, None], (m_count, n_max, j_count)
            )
            ev_full = ev_serve[0, n_max - 1]
        else:
            # (M, N, K) then mixed with per-state phase weights -> (M, N, J)
            ev_phase = self._rows_by_phase @ values
            ev_state = np.einsum("mnk,njk->mnj", ev_phase, self._phase_weights)
            ev_full = float(ev_phase[0, n_max - 1] @ self._full_phase)

        # Per-action discounting: gamma_action[m, n-1] is 'gamma' for plain
        # MDPs and gamma**(l/reference) for the semi-MDP extension.
        q_full_drain = (
            self._reward + self._gamma_action[:, :, None] * ev_state
        )  # (M, N, J)
        q_masked = np.where(self._valid, q_full_drain, -np.inf)
        best_q = q_masked.max(axis=0)  # (N, J)
        best_m = q_masked.argmax(axis=0)
        best_b = np.broadcast_to(
            np.arange(1, n_max + 1)[:, None], (n_max, j_count)
        ).copy()

        # Forced fallback where nothing is valid (§4.3.1): serve the whole
        # queue late on the fastest model — or, in drop mode, discard it
        # and idle (an instantaneous transition to the empty state).
        if self._config.drop_late:
            drop_gamma = (
                1.0 if self._config.duration_aware_discount else gamma
            )
            fallback_q = np.full(
                (n_max, j_count), drop_gamma * values[space.EMPTY]
            )
        else:
            fallback_q = self._gamma_action[0][:, None] * ev_state[0]
        no_valid = ~self._valid.any(axis=0)
        best_q = np.where(no_valid, fallback_q, best_q)
        best_m = np.where(no_valid, _FALLBACK, best_m)

        if self._config.batching is BatchingMode.VARIABLE:
            best_q, best_m, best_b = self._fold_partial_actions(
                values, best_q, best_m, best_b
            )

        new_values = np.empty_like(values)
        occupied = space.occupied_view(new_values)
        occupied[:, :] = best_q
        new_values[space.EMPTY] = self._gamma_empty * values[
            space.index(1, self._grid.slo_index)
        ]
        if self._config.drop_late:
            drop_gamma = 1.0 if self._config.duration_aware_discount else gamma
            new_values[space.FULL] = drop_gamma * values[space.EMPTY]
        else:
            new_values[space.FULL] = (
                self._gamma_action[0, n_max - 1] * ev_full
            )

        greedy: Dict[int, Tuple[int, int]] = {}
        if want_greedy:
            for n in range(1, n_max + 1):
                for j in range(j_count):
                    greedy[space.index(n, j)] = (
                        int(best_m[n - 1, j]),
                        int(best_b[n - 1, j]),
                    )
            greedy[space.FULL] = (_FALLBACK, n_max)
        return BackupResult(values=new_values, greedy=greedy)

    def _fold_partial_actions(
        self,
        values: np.ndarray,
        best_q: np.ndarray,
        best_m: np.ndarray,
        best_b: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Mix in variable-batching actions ``(m, b)`` with ``b < n``.

        For each such action the leftover queue keeps ``n - b`` queries
        whose earliest slack is the conservative ``T_j - l`` (DESIGN.md §3),
        so the slack bin of the next state is deterministic and only the
        arrival count is stochastic.
        """
        space = self._space
        n_max, j_count = self._max_queue, len(self._grid)
        v_occ = space.occupied_view(values)
        v_full = values[space.FULL]

        # vpad[i + k] is the value of "base i+1 plus k arrivals"; rows past
        # N_w stand in for the overflow (FULL) state, so one windowed
        # contraction below covers both the in-range mass and the tail.
        vpad = np.vstack(
            [v_occ, np.full((n_max + 1, j_count), v_full, dtype=np.float64)]
        )
        windows = np.lib.stride_tricks.sliding_window_view(
            vpad, n_max + 1, axis=0
        )  # (N + 1, J, N + 1); windows[i, :, k] == vpad[i + k]

        for m, b, valid_j, counts, residual, j_map, reward, gamma_mb in (
            self._partial_plan
        ):
            max_base = n_max - b
            # ev[base-1, j] = E[V(next) | leftover = base, slack bin j]
            ev = windows[:max_base] @ counts
            if residual > 0.0:
                ev = ev + residual * v_full
            # States (n, j) with n > b: rows b..N-1 of the (N, J) block.
            q_part = reward + gamma_mb * ev[:, j_map]  # (max_base, J)
            q_part = np.where(valid_j[None, :], q_part, -np.inf)
            region = slice(b, n_max)
            better = q_part > best_q[region]
            best_q[region] = np.where(better, q_part, best_q[region])
            best_m[region] = np.where(better, m, best_m[region])
            best_b[region] = np.where(better, b, best_b[region])
        return best_q, best_m, best_b

    def _counts_for(self, latency: float) -> np.ndarray:
        """Arrival-count distribution over the service time.

        Split view: direct.  Exact view: phase-marginalized with the
        stationary (uniform) phase, a documented simplification — the
        partial-drain path is an extension; the paper's Table 2 variable
        batching numbers use a single worker, where both coincide.
        """
        if self._split is not None:
            return self._split.arrival_counts(latency)
        assert self._exact is not None
        key = round(float(latency), 9)
        cached = self._counts_cache.get(key)
        if cached is not None:
            return cached
        k = self._exact.num_workers
        n_max = self._max_queue
        pmf = self._config.arrivals.pmf_vector((n_max + 1) * k - 1, latency)
        counts = np.zeros(n_max + 1, dtype=np.float64)
        # Uniform phase: P(worker gets a | phase r) averaged over r.
        for r in range(k):
            for a in range(n_max + 1):
                lo, hi = a * k - r, (a + 1) * k - r - 1
                lo = max(lo, 0)
                if lo <= hi:
                    counts[a] += pmf[lo : hi + 1].sum() / k
        self._counts_cache[key] = counts
        return counts

    # ------------------------------------------------------------------
    # Fixed-policy backup (policy evaluation / iteration)
    # ------------------------------------------------------------------
    def backup_policy(
        self, values: np.ndarray, action_table: Dict[int, Tuple[int, int]]
    ) -> np.ndarray:
        """One expectation backup under a fixed action table."""
        space = self._space
        new_values = np.empty_like(values)
        new_values[space.EMPTY] = self._gamma_empty * values[
            space.index(1, self._grid.slo_index)
        ]
        for state_id in range(space.size):
            if state_id == space.EMPTY:
                continue
            n, j = space.decode(state_id)
            m, b = action_table.get(state_id, (_FALLBACK, n))
            row = self.transition_row(state_id, (m, b))
            reward = self.reward_of(state_id, (m, b))
            discount = self.discount_of(state_id, (m, b))
            new_values[state_id] = reward + discount * float(row @ values)
        return new_values

    def discount_of(self, state_id: int, action: Tuple[int, int]) -> float:
        """Continuation discount of an encoded action (semi-MDP aware)."""
        config = self._config
        if state_id == self._space.EMPTY:
            return self._gamma_empty
        m, b = action
        if m == _FALLBACK:
            if config.drop_late:
                return 1.0 if config.duration_aware_discount else config.discount
            n, _ = self._space.decode(state_id)
            return float(self._gamma_action[0, n - 1])
        return float(self._gamma_action[m, b - 1])

    def reward_of(self, state_id: int, action: Tuple[int, int]) -> float:
        """Reward ``Accuracy * SLOSatisfied`` of an encoded action."""
        space = self._space
        if state_id == space.EMPTY:
            return 0.0
        n, j = space.decode(state_id)
        m, b = action
        if m == _FALLBACK:
            return 0.0
        slack = 0.0 if state_id == space.FULL else self._grid[j]
        if self._latency[m, b - 1] > slack:
            return 0.0
        scale = float(b) if self._config.reward_per_query else 1.0
        return float(self._accuracy[m]) * scale

    def transition_row(
        self, state_id: int, action: Tuple[int, int]
    ) -> np.ndarray:
        """Full transition row for one (state, encoded action) pair."""
        space = self._space
        if state_id == space.EMPTY:
            row = np.zeros(space.size)
            row[space.index(1, self._grid.slo_index)] = 1.0
            return row
        n, j = space.decode(state_id)
        m, b = action
        if m == _FALLBACK:
            if self._config.drop_late:
                row = np.zeros(space.size)
                row[space.EMPTY] = 1.0
                return row
            m, b = 0, n
        if b > n:
            raise ConfigurationError(f"batch {b} exceeds queue length {n}")
        latency = self._latency[m, b - 1]
        if b == n:
            if self._split is not None:
                return self._rows[m, n - 1]
            weights = (
                self._full_phase
                if state_id == space.FULL
                else self._phase_weights[n - 1, j]
            )
            return weights @ self._rows_by_phase[m, n - 1]
        # Partial drain.
        slack = 0.0 if state_id == space.FULL else self._grid[j]
        leftover_slack = slack - latency
        if self._split is not None:
            return self._split.partial_row(latency, n - b, leftover_slack)
        counts = self._counts_for(latency)
        row = np.zeros(space.size)
        j_left = self._grid.floor_index(leftover_slack)
        for k in range(self._max_queue - (n - b) + 1):
            row[space.index(n - b + k, j_left)] = counts[k]
        row[space.FULL] = max(0.0, 1.0 - row.sum())
        return row

    def policy_rows(
        self, table: Dict[int, Tuple[int, int]]
    ) -> np.ndarray:
        """The ``(S, S)`` transition matrix of the chain ``table`` induces.

        Full-drain actions under a split-family view share the
        precomputed ``(M, N, S)`` row bank, so those states gather in one
        fancy-indexed copy; everything else (partial drains, drop-mode
        fallbacks, the exact view's phase mixtures) goes through
        :meth:`transition_row`.  Both solver backends assemble through
        this method, which is what makes the §5.1 stationary analysis
        bit-identical across them (power iteration is a matrix-vector
        loop on the returned array).
        """
        space = self._space
        size = space.size
        rows = np.zeros((size, size), dtype=np.float64)
        rows[space.EMPTY, space.index(1, self._grid.slo_index)] = 1.0
        gather_ids: List[int] = []
        gather_m: List[int] = []
        gather_n: List[int] = []
        split_rows = self._rows if self._split is not None else None
        for state_id in range(size):
            if state_id == space.EMPTY:
                continue
            n, _ = space.decode(state_id)
            action = table.get(state_id, (_FALLBACK, n))
            if split_rows is not None:
                m, b = action
                if m == _FALLBACK and not self._config.drop_late:
                    m, b = 0, n
                if m != _FALLBACK and b == n:
                    gather_ids.append(state_id)
                    gather_m.append(m)
                    gather_n.append(n - 1)
                    continue
            rows[state_id] = self.transition_row(state_id, action)
        if gather_ids:
            rows[gather_ids] = split_rows[gather_m, gather_n]
        return rows

    # ------------------------------------------------------------------
    # Policy extraction
    # ------------------------------------------------------------------
    def extract_policy(self, values: np.ndarray, task: Optional[str] = None) -> Policy:
        """Greedy policy for ``values``, packaged for online use."""
        result = self.backup(values, want_greedy=True)
        actions: Dict[Tuple[int, int], Action] = {}
        for n in range(1, self._max_queue + 1):
            for j in range(len(self._grid)):
                m, b = result.greedy[self._space.index(n, j)]
                if m == _FALLBACK:
                    actions[(n, j)] = Action(
                        model=self._models[0].name, batch_size=n, is_late=True
                    )
                else:
                    actions[(n, j)] = Action(
                        model=self._models[m].name, batch_size=b
                    )
        cfg = self._config
        metadata = PolicyMetadata(
            task=task or cfg.model_set.task,
            slo_ms=cfg.slo_ms,
            load_qps=cfg.load_qps,
            num_workers=cfg.num_workers,
            arrival_family=type(cfg.arrivals).__name__,
            discretization=cfg.discretization.value,
            fld_resolution=cfg.fld_resolution,
            batching=cfg.batching.value,
            view=cfg.view.value,
            discount=cfg.discount,
        )
        return Policy(
            grid=self._grid,
            max_queue=self._max_queue,
            actions=actions,
            metadata=metadata,
        )

    def initial_values(self) -> np.ndarray:
        """Zero value vector of the right shape."""
        return np.zeros(self._space.size, dtype=np.float64)


def build_worker_mdp(
    config: WorkerMDPConfig, solver: str = "auto"
) -> WorkerMDP:
    """Construct a worker MDP from its offline inputs.

    ``solver`` selects the solve backend: ``"loop"`` keeps the reference
    per-action/per-state implementation, ``"tensor"`` builds the
    stacked-contraction backend, and ``"auto"`` (default) resolves to
    tensor — see :func:`resolve_solver`.
    """
    if resolve_solver(solver) == "tensor":
        # Local import: tensor subclasses WorkerMDP from this module.
        from repro.core.tensor import TensorizedWorkerMDP

        return TensorizedWorkerMDP(config)
    return WorkerMDP(config)
