"""The naive MDP formulation (§3.1.2) — kept for the scalability claim.

The paper motivates its state-space simplifications by first formulating
MS&S naively: states track *every* pending query deadline (a finite queue
of slack times) rather than only the earliest.  Even after discretizing
time, the state space is exponential — with a grid of ``D`` slack bins and
queue bound ``N`` there are ``O(D^N)`` multisets — and the paper reports
that value iteration on it does not finish within 24 hours at evaluation
scale.  RAMSIS's ``(n, T_j)`` abstraction collapses this to ``O(N * D)``.

This module implements the naive formulation faithfully enough to
*reproduce that claim* at miniature scale (see
``benchmarks/bench_state_space.py``): reachable-state enumeration blows up
combinatorially in ``N`` and ``D`` while the decomposed MDP stays tiny,
and the policies found on the cases the naive MDP *can* solve agree with
the decomposed policy wherever the abstractions coincide.

Faithfulness notes:

- states are sorted tuples of slack-bin indices of the queued queries
  (a multiset — queries are exchangeable apart from their deadlines);
- the action space is maximal batching, mirroring the default;
- new arrivals during a service of length ``l`` are Poisson; *given* the
  count, their arrival times are i.i.d. uniform over the service window,
  so each new query's slack bin distribution is the exact bin-overlap of
  ``(SLO - l, SLO]`` — no approximation for Poisson arrivals;
- leftover slack decreases by ``l`` with floor quantization, exactly like
  the decomposed model.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrivals.distributions import ArrivalDistribution
from repro.core.discretization import TimeGrid
from repro.errors import SolverError
from repro.profiles.models import ModelSet

__all__ = ["NaiveMDPStats", "NaiveWorkerMDP"]

#: A state: sorted tuple of slack-bin indices, earliest first.
State = Tuple[int, ...]

#: Overflow sentinel (the §4.2.3 analogue).
_OVERFLOW: State = (-1,)


@dataclass(frozen=True)
class NaiveMDPStats:
    """Outcome of building and solving a naive MDP."""

    num_states: int
    num_transitions: int
    build_seconds: float
    solve_seconds: float
    iterations: int
    truncated: bool


class NaiveWorkerMDP:
    """Joint-deadline worker MDP with explicit per-query slack tracking.

    Parameters
    ----------
    model_set, grid, arrivals:
        As for the decomposed MDP; ``arrivals`` is the *per-worker*
        distribution.
    max_queue:
        ``N`` — queue bound; beyond it the overflow state is entered.
    max_states:
        Enumeration cap.  Hitting it marks the build as truncated, which
        is itself the §3.1.2 result at larger parameters.
    """

    def __init__(
        self,
        model_set: ModelSet,
        grid: TimeGrid,
        arrivals: ArrivalDistribution,
        max_queue: int,
        discount: float = 0.98,
        max_states: int = 200_000,
        probability_floor: float = 1e-9,
    ) -> None:
        self._models = sorted(model_set, key=lambda m: m.latency_ms(1))
        self._grid = grid
        self._arrivals = arrivals
        self._max_queue = max_queue
        self._discount = discount
        self._max_states = max_states
        self._floor = probability_floor
        self._truncated = False

        self._states: Dict[State, int] = {}
        # transitions[state][action] = (reward, [(next_index, prob), ...])
        self._transitions: List[List[Tuple[float, List[Tuple[int, float]]]]] = []
        self._build_seconds = self._enumerate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Enumerated reachable states (including empty + overflow)."""
        return len(self._states)

    @property
    def truncated(self) -> bool:
        """True when enumeration hit ``max_states``."""
        return self._truncated

    def _arrival_bin_distribution(self, elapsed_ms: float) -> np.ndarray:
        """Slack-bin distribution of one arrival during ``elapsed_ms``.

        Arrival times are uniform over the window (exact for Poisson given
        the count); slack = SLO - (l - u) is uniform over
        ``(SLO - l, SLO]`` clipped below at 0.
        """
        grid = self._grid
        slo = grid.slo_ms
        lo_slack = slo - elapsed_ms
        out = np.zeros(len(grid))
        for j in range(len(grid)):
            bin_lo = grid[j] if j > 0 else -np.inf  # bin 0 absorbs negatives
            bin_hi = grid.upper(j) if j + 1 < len(grid) else slo + 1e-9
            overlap = max(
                0.0, min(bin_hi, slo) - max(bin_lo, lo_slack)
            )
            out[j] = overlap / elapsed_ms if elapsed_ms > 0 else 0.0
        # The top grid point (slack == SLO exactly) has measure zero except
        # for the fresh-arrival transition, handled separately.
        total = out.sum()
        if total > 0:
            out /= total
        return out

    def _next_state_distribution(
        self, state: State, latency_ms: float
    ) -> List[Tuple[State, float]]:
        """Distribution over next states after a full drain of ``state``."""
        counts = self._arrivals.pmf_vector(self._max_queue, latency_ms)
        bin_dist = self._arrival_bin_distribution(latency_ms)
        support = np.nonzero(bin_dist > self._floor)[0]
        outcomes: Dict[State, float] = {}

        def add(next_state: State, prob: float) -> None:
            if prob > self._floor:
                outcomes[next_state] = outcomes.get(next_state, 0.0) + prob

        add((), float(counts[0]))
        for k in range(1, self._max_queue + 1):
            p_k = float(counts[k])
            if p_k <= self._floor:
                continue
            # Joint over k i.i.d. slack bins (combinations with repetition).
            for combo in itertools.combinations_with_replacement(support, k):
                prob = p_k
                # Multinomial weight of this multiset.
                multiplicity = _multiset_permutations(combo)
                for j in combo:
                    prob *= float(bin_dist[j])
                prob *= multiplicity
                add(tuple(sorted(combo)), prob)
        tail = 1.0 - sum(outcomes.values())
        if tail > self._floor:
            add(_OVERFLOW, tail)
        return list(outcomes.items())

    def _enumerate(self) -> float:
        start = time.perf_counter()
        grid = self._grid
        empty: State = ()
        fresh: State = (grid.slo_index,)
        frontier: List[State] = [empty, fresh, _OVERFLOW]
        for s in frontier:
            self._states[s] = len(self._states)
            self._transitions.append([])

        queue = list(frontier)
        while queue:
            state = queue.pop()
            index = self._states[state]
            actions: List[Tuple[float, List[Tuple[int, float]]]] = []

            if state == ():
                # Arrival action: deterministic to the fresh-arrival state.
                actions.append((0.0, [(self._states[fresh], 1.0)]))
            else:
                effective = (
                    (0,) * self._max_queue if state == _OVERFLOW else state
                )
                n = len(effective)
                earliest_slack = 0.0 if state == _OVERFLOW else grid[state[0]]
                valid_models = [
                    m
                    for m in self._models
                    if m.latency_ms(n) <= earliest_slack
                ]
                chosen = valid_models if valid_models else [self._models[0]]
                for model in chosen:
                    latency = model.latency_ms(n)
                    satisfied = latency <= earliest_slack
                    reward = model.accuracy if satisfied else 0.0
                    rows: List[Tuple[int, float]] = []
                    for next_state, prob in self._next_state_distribution(
                        state if state != _OVERFLOW else effective, latency
                    ):
                        if next_state not in self._states:
                            if len(self._states) >= self._max_states:
                                self._truncated = True
                                continue
                            self._states[next_state] = len(self._states)
                            self._transitions.append([])
                            queue.append(next_state)
                        rows.append((self._states[next_state], prob))
                    actions.append((reward, rows))
            self._transitions[index] = actions
        return time.perf_counter() - start

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self, tolerance: float = 1e-7, max_iterations: int = 20_000
    ) -> Tuple[np.ndarray, NaiveMDPStats]:
        """Value iteration over the enumerated space."""
        start = time.perf_counter()
        size = len(self._states)
        values = np.zeros(size)
        num_transitions = sum(
            len(rows) for actions in self._transitions for _, rows in actions
        )
        for iteration in range(1, max_iterations + 1):
            new_values = np.empty(size)
            for s in range(size):
                best = -np.inf
                for reward, rows in self._transitions[s]:
                    q = reward + self._discount * sum(
                        p * values[t] for t, p in rows
                    )
                    best = max(best, q)
                new_values[s] = best if best > -np.inf else 0.0
            residual = float(np.max(np.abs(new_values - values)))
            values = new_values
            if residual < tolerance:
                return values, NaiveMDPStats(
                    num_states=size,
                    num_transitions=num_transitions,
                    build_seconds=self._build_seconds,
                    solve_seconds=time.perf_counter() - start,
                    iterations=iteration,
                    truncated=self._truncated,
                )
        raise SolverError(
            f"naive value iteration did not converge in {max_iterations} sweeps"
        )

    def greedy_action(self, state: State, values: np.ndarray) -> Optional[str]:
        """Greedy model choice in ``state`` (None for the empty state)."""
        if state == ():
            return None
        index = self._states[state]
        effective = (0,) * self._max_queue if state == _OVERFLOW else state
        n = len(effective)
        earliest_slack = 0.0 if state == _OVERFLOW else self._grid[state[0]]
        valid = [m for m in self._models if m.latency_ms(n) <= earliest_slack]
        chosen = valid if valid else [self._models[0]]
        best_model, best_q = None, -np.inf
        for model, (reward, rows) in zip(chosen, self._transitions[index]):
            q = reward + self._discount * sum(p * values[t] for t, p in rows)
            if q > best_q:
                best_model, best_q = model.name, q
        return best_model


def _multiset_permutations(combo: Sequence[int]) -> int:
    """Number of orderings of a multiset — the multinomial coefficient."""
    from math import factorial

    total = factorial(len(combo))
    for value in set(combo):
        total //= factorial(sum(1 for c in combo if c == value))
    return total
