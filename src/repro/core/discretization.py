"""Slack-time discretization (§4.2).

A worker-MDP state is ``(n, T_j)`` where ``T_j`` is the *slack time* of the
queued query with the earliest deadline.  Slack is continuous in general;
RAMSIS replaces it with a finite, strictly increasing grid of time lengths
``T_w = (T_0, T_1, ...)`` such that every continuous slack ``delta`` maps to
the grid value ``T_j`` with ``T_j <= delta < T_{j+1}`` — i.e. slack is
*rounded down*, which is why a policy can only be conservative, never
optimistic, about how much time remains (§5.1 intuition (1)).

Two strategies are implemented, per the paper:

- **Model-based Discretization (MD, §4.2.1)** — the grid is the set of all
  distinct inference latencies ``l_w(m, b)`` (for supported batch sizes up
  to ``B_w``), since action validity only ever compares slack to a latency.
- **Fixed Length Discretization (FLD, §4.2.2)** — an even grid of ``D + 1``
  points spanning ``[0, SLO]``; ``D`` trades policy-generation runtime for
  conservatism (Appendix C).

Both grids always contain ``0`` (exhausted slack) and ``SLO`` (the slack of
a query the instant it arrives, needed for the arrival transition, Eq. 1).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.profiles.models import ModelSet

__all__ = ["TimeGrid", "model_based_grid", "fixed_length_grid"]


@dataclass(frozen=True)
class TimeGrid:
    """A finite, strictly increasing grid of slack times in ``[0, SLO]``.

    ``values[0] == 0`` and ``values[-1] == slo_ms`` always hold.
    """

    values: Tuple[float, ...]
    slo_ms: float

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError("time grid must be non-empty")
        if self.values[0] != 0.0:
            raise ConfigurationError("time grid must start at 0")
        if abs(self.values[-1] - self.slo_ms) > 1e-9:
            raise ConfigurationError(
                f"time grid must end at the SLO ({self.slo_ms} ms); "
                f"got {self.values[-1]}"
            )
        if any(b <= a for a, b in zip(self.values, self.values[1:])):
            raise ConfigurationError("time grid must be strictly increasing")

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, j: int) -> float:
        return self.values[j]

    @property
    def slo_index(self) -> int:
        """Index of the ``SLO`` grid point (a fresh arrival's slack)."""
        return len(self.values) - 1

    def floor_index(self, slack_ms: float) -> int:
        """Largest ``j`` with ``values[j] <= slack_ms`` (clamped to 0).

        Negative slack (a deadline already missed) maps to index 0, whose
        grid value 0 means "no action can satisfy the earliest deadline".
        """
        if slack_ms <= 0.0:
            return 0
        # bisect on the tuple == np.searchsorted(..., side="right") without
        # the per-call tuple->array conversion; this is the online
        # selector's hot path (one lookup per MS&S decision).
        j = bisect_right(self.values, slack_ms) - 1
        values_len = len(self.values)
        if j < 0:
            return 0
        if j >= values_len:
            return values_len - 1
        return j

    def upper(self, j: int) -> float:
        """Exclusive upper bound of bin ``j``.

        Slack strictly below ``SLO`` is guaranteed for every state reached
        through service transitions (an arrival strictly precedes the
        decision completing after it), so the top bin — whose value *is*
        the SLO — is only entered via the arrival action (Eq. 1) and has a
        zero-width continuation window.
        """
        if j < 0 or j >= len(self.values):
            raise IndexError(f"grid index {j} out of range")
        if j + 1 < len(self.values):
            return self.values[j + 1]
        return self.slo_ms

    def as_array(self) -> np.ndarray:
        """Grid values as a float array (copy)."""
        return np.asarray(self.values, dtype=np.float64)


def model_based_grid(
    model_set: ModelSet, slo_ms: float, max_batch_size: int
) -> TimeGrid:
    """MD (§4.2.1): all distinct inference latencies ``<= SLO``.

    ``O(|M_w| * B_w)`` distinct time lengths suffice to decide action
    validity exactly, so MD never under-estimates slack at a decision point
    by more than the gap to the next relevant latency.
    """
    if slo_ms <= 0:
        raise ConfigurationError(f"slo_ms must be > 0, got {slo_ms}")
    latencies = {0.0, float(slo_ms)}
    for model in model_set:
        for b in range(1, max_batch_size + 1):
            latency = model.latency_ms(b)
            if latency <= slo_ms:
                latencies.add(float(latency))
    return TimeGrid(values=tuple(sorted(latencies)), slo_ms=float(slo_ms))


def fixed_length_grid(slo_ms: float, resolution: int) -> TimeGrid:
    """FLD (§4.2.2): ``D + 1`` evenly spaced points over ``[0, SLO]``.

    ``resolution`` is the paper's hyper-parameter ``D``; the evaluation uses
    ``D = 100`` (equivalent to MD in achieved accuracy, Appendix C) and
    ``D = 10`` for the fastest policy generation.
    """
    if slo_ms <= 0:
        raise ConfigurationError(f"slo_ms must be > 0, got {slo_ms}")
    if resolution < 1:
        raise ConfigurationError(f"FLD resolution D must be >= 1, got {resolution}")
    step = slo_ms / resolution
    values = tuple(step * i for i in range(resolution))
    return TimeGrid(values=values + (float(slo_ms),), slo_ms=float(slo_ms))
