"""High-level offline policy generation (§3.1).

:func:`generate_policy` is the one-call entry point: configuration in,
solved and annotated :class:`~repro.core.policy.Policy` out.
:class:`PolicyGenerator` layers three caches and a parallel fan-out on top:

- an **in-memory** cache keyed by ``(load, workers, tolerance)`` so sweeps
  within one process never solve the same MDP twice;
- an optional **persistent disk** cache (:class:`repro.cache.PolicyCache`)
  keyed by a content hash of the canonicalized config, so experiment
  invocations share solved policies across processes and runs;
- :meth:`PolicyGenerator.generate_many`, which fans cache misses out across
  a ``ProcessPoolExecutor`` with deterministic result ordering — every cell
  runs the exact same :func:`generate_policy` code path, so parallel banks
  are byte-identical to serial ones.
"""

from __future__ import annotations

import shutil
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.config import WorkerMDPConfig
from repro.core.guarantees import PolicyGuarantees, evaluate_policy
from repro.core.mdp import build_worker_mdp
from repro.core.policy import Policy, PolicyMetadata
from repro.core.solvers import value_iteration
from repro.errors import ConfigurationError
from repro.obs.aggregate import (
    init_worker_obs,
    merge_run_dir,
    new_run_dir,
    worker_obs,
    write_merged_artifacts,
)
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache uses results)
    from repro.cache import PolicyCache
    from repro.obs.metrics import MetricsRegistry

__all__ = ["GenerationResult", "PolicyGenerator", "generate_policy"]


@dataclass(frozen=True)
class GenerationResult:
    """A generated policy plus its provenance and offline guarantees.

    ``residuals`` carries value iteration's per-sweep residual history
    when the caller asked for it (see :func:`generate_policy`).
    ``values`` is the converged value vector — kept so the §6 refinement
    loop can warm-start adjacent loads — and ``from_cache`` marks results
    restored from the persistent disk cache rather than solved.
    """

    policy: Policy
    guarantees: PolicyGuarantees
    iterations: int
    runtime_s: float
    residuals: Optional[Tuple[float, ...]] = None
    values: Optional[np.ndarray] = field(default=None, compare=False)
    from_cache: bool = field(default=False, compare=False)


def generate_policy(
    config: WorkerMDPConfig,
    tolerance: float = 1e-7,
    with_guarantees: bool = True,
    tracer: Optional[Tracer] = None,
    record_residuals: bool = False,
    initial: Optional[np.ndarray] = None,
    solver: str = "auto",
) -> GenerationResult:
    """Build the worker MDP, solve it, and package the optimal MS policy.

    When ``with_guarantees`` is set (default), the §5.1 expectations are
    computed and embedded in the policy metadata — the policy-set
    refinement rule and the resource-planning example consume them.

    ``initial`` warm-starts value iteration from a previously converged
    value vector (e.g. an adjacent load's), cutting sweep counts without
    changing the fixed point.

    ``solver`` selects the Bellman-sweep backend
    (``"auto"``/``"tensor"``/``"loop"``, see
    :func:`repro.core.mdp.resolve_solver`).  Backends are value-identical
    — the equivalence suite asserts float-``==`` value functions and
    byte-identical saved policies — so results (and cache artifacts) are
    interchangeable across backends.

    An enabled ``tracer`` records the three offline phases (kernel/MDP
    construction, value iteration, guarantee evaluation) as nested spans
    on the ``generator`` track plus one event per solver sweep;
    ``record_residuals`` keeps the residual history on the result even
    without a tracer.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    start = time.perf_counter()
    with tracer.span("generate_policy", track="generator"):
        with tracer.span("build_worker_mdp", track="generator"):
            mdp = build_worker_mdp(config, solver=solver)
        with tracer.span("value_iteration", track="generator"):
            stats = value_iteration(
                mdp,
                tolerance=tolerance,
                initial=initial,
                tracer=tracer,
                record_residuals=record_residuals,
            )
        policy = mdp.extract_policy(stats.values)
        if with_guarantees:
            with tracer.span("evaluate_policy", track="generator"):
                guarantees = evaluate_policy(mdp, policy)
            policy = _annotate(policy, guarantees)
        else:
            guarantees = PolicyGuarantees(
                expected_accuracy=float("nan"),
                expected_violation_rate=float("nan"),
                per_epoch_accuracy=float("nan"),
                per_epoch_violation_rate=float("nan"),
                full_state_probability=float("nan"),
                idle_probability=float("nan"),
            )
    return GenerationResult(
        policy=policy,
        guarantees=guarantees,
        iterations=stats.iterations,
        runtime_s=time.perf_counter() - start,
        residuals=stats.residuals,
        values=stats.values,
    )


def _annotate(policy: Policy, guarantees: PolicyGuarantees) -> Policy:
    """Re-package a policy with expectation metadata filled in."""
    meta = policy.metadata
    annotated = PolicyMetadata(
        task=meta.task,
        slo_ms=meta.slo_ms,
        load_qps=meta.load_qps,
        num_workers=meta.num_workers,
        arrival_family=meta.arrival_family,
        discretization=meta.discretization,
        fld_resolution=meta.fld_resolution,
        batching=meta.batching,
        view=meta.view,
        discount=meta.discount,
        expected_accuracy=guarantees.expected_accuracy,
        expected_violation_rate=guarantees.expected_violation_rate,
    )
    return Policy(
        grid=policy.grid,
        max_queue=policy.max_queue,
        actions=policy.states(),
        metadata=annotated,
    )


def _solve_cell(
    payload: Tuple[int, WorkerMDPConfig, float, Optional[np.ndarray], bool, str]
) -> GenerationResult:
    """Process-pool entry point: solve one grid cell.

    Module-level so it pickles under every multiprocessing start method;
    runs the identical code path as the serial ``generate_policy`` call,
    which is what makes parallel banks byte-identical to serial ones.
    With observability shipping on, the solve is traced into this
    worker's shard (installed by :func:`repro.obs.aggregate.init_worker_obs`),
    stamped with the cell's sequence number for in-order merging.
    """
    seq, config, tolerance, initial, ship, solver = payload
    obs = worker_obs() if ship else None
    tracer: Optional[Tracer] = None
    if obs is not None:
        obs.tracer.set_sequence(seq)
        tracer = obs.tracer
    try:
        return generate_policy(
            config,
            tolerance=tolerance,
            tracer=tracer,
            initial=initial,
            solver=solver,
        )
    finally:
        if obs is not None:
            obs.flush()


class PolicyGenerator:
    """Caching, parallelizing wrapper around :func:`generate_policy`.

    Resolution order for every cell: in-memory cache -> persistent disk
    cache (when ``cache`` is given) -> solve.  The in-memory key is
    ``(load, workers, tolerance)`` on top of a base configuration; the
    disk key is a content hash of the full canonicalized config plus the
    solver tolerance (see :mod:`repro.cache.keys`).
    """

    def __init__(
        self,
        base_config: WorkerMDPConfig,
        tolerance: float = 1e-7,
        cache: Optional["PolicyCache"] = None,
        tracer: Optional[Tracer] = None,
        registry: Optional["MetricsRegistry"] = None,
        run_dir: Optional[Union[str, Path]] = None,
        solver: str = "auto",
    ) -> None:
        self._base = base_config
        self._tolerance = tolerance
        #: Bellman-sweep backend for every cell this generator solves.
        #: Not part of the cache keys: backends are value-identical (the
        #: equivalence suite gates this), so artifacts are shared.
        self._solver = solver
        self._cache: Dict[Tuple[float, int, float], GenerationResult] = {}
        self._disk = cache
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._registry = registry
        #: Shard root for parallel solves.  Each parallel batch gets its
        #: own ``batch-NNN`` subdirectory, so repeated ``generate_many``
        #: calls (e.g. §6 refinement rounds) never mix or truncate
        #: shards; without it a temp directory per batch is used and
        #: removed after the merge.
        self._run_dir = None if run_dir is None else Path(run_dir)
        self._batch = 0

    @property
    def base_config(self) -> WorkerMDPConfig:
        """The configuration all generated policies share (minus load/K)."""
        return self._base

    @property
    def disk_cache(self) -> Optional["PolicyCache"]:
        """The persistent cache layer, if one is attached."""
        return self._disk

    @property
    def solver(self) -> str:
        """The Bellman-sweep backend cells solve with (``auto`` default)."""
        return self._solver

    def _count_cell(self, source: str) -> None:
        if self._registry is not None:
            self._registry.counter(
                "policy_bank_cells_total",
                "Policy-bank cells resolved, by source",
                labels={"source": source},
            ).inc()

    def _key(self, load_qps: float, workers: int) -> Tuple[float, int, float]:
        return (round(load_qps, 9), workers, self._tolerance)

    def _config_for(self, load_qps: float, workers: int) -> WorkerMDPConfig:
        config = self._base.with_load(load_qps)
        if workers != config.num_workers:
            config = replace(config, num_workers=workers)
        return config

    def _commit(
        self,
        key: Tuple[float, int, float],
        config: WorkerMDPConfig,
        result: GenerationResult,
    ) -> None:
        self._cache[key] = result
        if self._disk is not None:
            self._disk.put(config, self._tolerance, result)

    def generate(
        self,
        load_qps: float,
        num_workers: Optional[int] = None,
        initial: Optional[np.ndarray] = None,
    ) -> GenerationResult:
        """Policy for ``load_qps`` (and optionally a worker-count override).

        ``initial`` warm-starts value iteration on a cache miss; cached
        results are returned as-is (the fixed point does not depend on the
        seed, and warm/cold convergence to the same policy is asserted by
        the test suite).
        """
        workers = num_workers if num_workers is not None else self._base.num_workers
        key = self._key(load_qps, workers)
        cached = self._cache.get(key)
        if cached is not None:
            self._count_cell("memory")
            return cached
        config = self._config_for(load_qps, workers)
        if self._disk is not None:
            restored = self._disk.get(config, self._tolerance)
            if restored is not None:
                self._cache[key] = restored
                self._count_cell("disk")
                return restored
        with self._tracer.span(
            f"cell {load_qps:g}qps",
            track="policy_bank",
            args={"load_qps": load_qps, "workers": workers},
        ):
            result = generate_policy(
                config,
                tolerance=self._tolerance,
                tracer=self._tracer,
                initial=initial,
                solver=self._solver,
            )
        self._count_cell("solve")
        self._commit(key, config, result)
        return result

    def generate_many(
        self,
        loads_qps: Sequence[float],
        num_workers: Optional[int] = None,
        max_workers: Optional[int] = None,
        initials: Optional[Mapping[float, Optional[np.ndarray]]] = None,
    ) -> List[GenerationResult]:
        """Policies for a batch of loads, in the order given.

        Cache layers are consulted first; only misses are solved.  With
        ``max_workers > 1`` the misses fan out across a
        ``ProcessPoolExecutor`` (submit/solve/collect progress appears on
        the tracer's ``policy_bank`` track); otherwise they solve serially
        in this process.  Either way results come back in the order of
        ``loads_qps`` and are bit-identical, because every cell runs the
        same :func:`generate_policy` code path.

        An attached ``tracer``/``registry`` instruments both paths: the
        parallel one ships each worker's records as shards (one
        ``batch-NNN`` directory per call under ``run_dir`` when set, a
        temp directory otherwise) and merges them back in cell order
        after the pool drains — per-cell solver spans appear under
        ``w<idx>/generator`` tracks instead of being silently dropped
        (see :mod:`repro.obs.aggregate`).

        ``initials`` optionally maps a load to a warm-start value vector
        (see :meth:`generate`).

        Backend routing for the misses: ``solver="stacked"`` solves them
        all in-process as one batched tensor program
        (:func:`repro.core.bank.solve_stacked_bank`, byte-identical to
        the serial per-load path) and is mutually exclusive with a
        ``max_workers > 1`` fan-out; ``solver="auto"`` picks the stacked
        bank for serial calls with at least
        :data:`~repro.core.bank.STACKED_AUTO_MIN_CELLS` misses — an
        explicit ``max_workers > 1`` takes precedence and keeps the
        process pool.
        """
        if (
            self._solver == "stacked"
            and max_workers is not None
            and max_workers > 1
        ):
            raise ConfigurationError(
                "solver='stacked' solves the whole load grid in-process as "
                "one batched tensor program and cannot be combined with a "
                f"max_workers={max_workers} process-pool fan-out; drop "
                "max_workers, or use solver='auto' to let grid size pick "
                "the backend"
            )
        workers = num_workers if num_workers is not None else self._base.num_workers
        loads = [float(q) for q in loads_qps]
        results: List[Optional[GenerationResult]] = [None] * len(loads)
        pending: List[
            Tuple[int, float, WorkerMDPConfig, Optional[np.ndarray]]
        ] = []
        for i, q in enumerate(loads):
            key = self._key(q, workers)
            cached = self._cache.get(key)
            if cached is not None:
                self._count_cell("memory")
                results[i] = cached
                continue
            config = self._config_for(q, workers)
            if self._disk is not None:
                restored = self._disk.get(config, self._tolerance)
                if restored is not None:
                    self._cache[key] = restored
                    self._count_cell("disk")
                    results[i] = restored
                    continue
            initial = initials.get(q) if initials is not None else None
            pending.append((i, q, config, initial))

        if pending:
            parallel = (
                max_workers is not None and max_workers > 1 and len(pending) > 1
            )
            stacked = False
            if not parallel and len(pending) > 1:
                from repro.core.bank import STACKED_AUTO_MIN_CELLS

                stacked = self._solver == "stacked" or (
                    self._solver == "auto"
                    and len(pending) >= STACKED_AUTO_MIN_CELLS
                )
            if stacked:
                self._solve_stacked(pending, workers, results)
            elif parallel:
                self._solve_parallel(pending, max_workers, workers, results)
            else:
                for i, q, config, initial in pending:
                    with self._tracer.span(
                        f"cell {q:g}qps",
                        track="policy_bank",
                        args={"load_qps": q, "workers": workers},
                    ):
                        result = generate_policy(
                            config,
                            tolerance=self._tolerance,
                            tracer=self._tracer,
                            initial=initial,
                            solver=self._solver,
                        )
                    self._count_cell("solve")
                    self._commit(self._key(q, workers), config, result)
                    results[i] = result
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _solve_stacked(
        self,
        pending: List[Tuple[int, float, WorkerMDPConfig, Optional[np.ndarray]]],
        workers: int,
        results: List[Optional[GenerationResult]],
    ) -> None:
        """Solve pending cells as one stacked bank; fill ``results`` in place.

        Each cell's result is byte-identical to the serial per-load path
        (asserted by the equivalence suite), so results commit to the
        in-memory and disk caches under the *same* per-load keys —
        artifacts stay shared across the serial, process-pool, and
        stacked backends.
        """
        from repro.core.bank import solve_stacked_bank

        with self._tracer.span(
            "policy_bank_stacked",
            track="policy_bank",
            args={"cells": len(pending), "workers": workers},
        ):
            solved = solve_stacked_bank(
                [config for _, _, config, _ in pending],
                tolerance=self._tolerance,
                initials=[initial for _, _, _, initial in pending],
                tracer=self._tracer,
            )
        for (i, q, config, _), result in zip(pending, solved):
            self._count_cell("solve")
            self._commit(self._key(q, workers), config, result)
            results[i] = result

    def _solve_parallel(
        self,
        pending: List[Tuple[int, float, WorkerMDPConfig, Optional[np.ndarray]]],
        max_workers: int,
        workers: int,
        results: List[Optional[GenerationResult]],
    ) -> None:
        """Fan pending cells out across processes; fill ``results`` in place."""
        ship = (
            self._tracer.enabled
            or self._registry is not None
            or self._run_dir is not None
        )
        owns_dir = False
        shard_dir: Optional[Path] = None
        if ship:
            if self._run_dir is not None:
                shard_dir = self._run_dir / f"batch-{self._batch:03d}"
                shard_dir.mkdir(parents=True, exist_ok=True)
            else:
                shard_dir = new_run_dir(prefix="ramsis-bank-")
                owns_dir = True
            self._batch += 1

        pool_size = min(max_workers, len(pending))
        pool_kwargs = {}
        if shard_dir is not None:
            pool_kwargs = {
                "initializer": init_worker_obs,
                "initargs": (str(shard_dir),),
            }
        with ProcessPoolExecutor(max_workers=pool_size, **pool_kwargs) as pool:
            with self._tracer.span(
                "policy_bank_submit",
                track="policy_bank",
                args={"cells": len(pending), "processes": pool_size},
            ):
                futures = [
                    (i, q, config, pool.submit(
                        _solve_cell,
                        (i, config, self._tolerance, initial, ship,
                         self._solver),
                    ))
                    for i, q, config, initial in pending
                ]
            with self._tracer.span(
                "policy_bank_collect",
                track="policy_bank",
                args={"cells": len(pending)},
            ):
                # Collect in submit order: result placement is positional,
                # so the returned bank ordering is deterministic regardless
                # of which worker finishes first.
                for i, q, config, future in futures:
                    with self._tracer.span(
                        f"cell {q:g}qps",
                        track="policy_bank",
                        args={"load_qps": q, "workers": workers},
                    ):
                        result = future.result()
                    self._count_cell("solve")
                    self._commit(self._key(q, workers), config, result)
                    results[i] = result
        if shard_dir is not None:
            merged = merge_run_dir(
                shard_dir,
                tracer=self._tracer if self._tracer.enabled else None,
                registry=self._registry,
            )
            if owns_dir:
                shutil.rmtree(shard_dir, ignore_errors=True)
            else:
                write_merged_artifacts(merged, shard_dir)

    def cache_size(self) -> int:
        """Number of distinct (load, workers) policies generated so far."""
        return len(self._cache)
