"""High-level offline policy generation (§3.1).

:func:`generate_policy` is the one-call entry point: configuration in,
solved and annotated :class:`~repro.core.policy.Policy` out.
:class:`PolicyGenerator` adds caching so sweeps over loads and worker
counts (the experiment harness, the policy-set refinement loop) never solve
the same MDP twice.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.config import WorkerMDPConfig
from repro.core.guarantees import PolicyGuarantees, evaluate_policy
from repro.core.mdp import WorkerMDP, build_worker_mdp
from repro.core.policy import Policy, PolicyMetadata
from repro.core.solvers import value_iteration
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["GenerationResult", "PolicyGenerator", "generate_policy"]


@dataclass(frozen=True)
class GenerationResult:
    """A generated policy plus its provenance and offline guarantees.

    ``residuals`` carries value iteration's per-sweep residual history
    when the caller asked for it (see :func:`generate_policy`).
    """

    policy: Policy
    guarantees: PolicyGuarantees
    iterations: int
    runtime_s: float
    residuals: Optional[Tuple[float, ...]] = None


def generate_policy(
    config: WorkerMDPConfig,
    tolerance: float = 1e-7,
    with_guarantees: bool = True,
    tracer: Optional[Tracer] = None,
    record_residuals: bool = False,
) -> GenerationResult:
    """Build the worker MDP, solve it, and package the optimal MS policy.

    When ``with_guarantees`` is set (default), the §5.1 expectations are
    computed and embedded in the policy metadata — the policy-set
    refinement rule and the resource-planning example consume them.

    An enabled ``tracer`` records the three offline phases (kernel/MDP
    construction, value iteration, guarantee evaluation) as nested spans
    on the ``generator`` track plus one event per solver sweep;
    ``record_residuals`` keeps the residual history on the result even
    without a tracer.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    start = time.perf_counter()
    with tracer.span("generate_policy", track="generator"):
        with tracer.span("build_worker_mdp", track="generator"):
            mdp = build_worker_mdp(config)
        with tracer.span("value_iteration", track="generator"):
            stats = value_iteration(
                mdp,
                tolerance=tolerance,
                tracer=tracer,
                record_residuals=record_residuals,
            )
        policy = mdp.extract_policy(stats.values)
        if with_guarantees:
            with tracer.span("evaluate_policy", track="generator"):
                guarantees = evaluate_policy(mdp, policy)
            policy = _annotate(policy, guarantees)
        else:
            guarantees = PolicyGuarantees(
                expected_accuracy=float("nan"),
                expected_violation_rate=float("nan"),
                per_epoch_accuracy=float("nan"),
                per_epoch_violation_rate=float("nan"),
                full_state_probability=float("nan"),
                idle_probability=float("nan"),
            )
    return GenerationResult(
        policy=policy,
        guarantees=guarantees,
        iterations=stats.iterations,
        runtime_s=time.perf_counter() - start,
        residuals=stats.residuals,
    )


def _annotate(policy: Policy, guarantees: PolicyGuarantees) -> Policy:
    """Re-package a policy with expectation metadata filled in."""
    meta = policy.metadata
    annotated = PolicyMetadata(
        task=meta.task,
        slo_ms=meta.slo_ms,
        load_qps=meta.load_qps,
        num_workers=meta.num_workers,
        arrival_family=meta.arrival_family,
        discretization=meta.discretization,
        fld_resolution=meta.fld_resolution,
        batching=meta.batching,
        view=meta.view,
        discount=meta.discount,
        expected_accuracy=guarantees.expected_accuracy,
        expected_violation_rate=guarantees.expected_violation_rate,
    )
    return Policy(
        grid=policy.grid,
        max_queue=policy.max_queue,
        actions=policy.states(),
        metadata=annotated,
    )


class PolicyGenerator:
    """Caching wrapper around :func:`generate_policy`.

    Cache key: (load, number of workers) on top of a base configuration —
    the two parameters experiment sweeps vary.
    """

    def __init__(self, base_config: WorkerMDPConfig, tolerance: float = 1e-7) -> None:
        self._base = base_config
        self._tolerance = tolerance
        self._cache: Dict[Tuple[float, int], GenerationResult] = {}

    @property
    def base_config(self) -> WorkerMDPConfig:
        """The configuration all generated policies share (minus load/K)."""
        return self._base

    def generate(
        self, load_qps: float, num_workers: Optional[int] = None
    ) -> GenerationResult:
        """Policy for ``load_qps`` (and optionally a worker-count override)."""
        workers = num_workers if num_workers is not None else self._base.num_workers
        key = (round(load_qps, 9), workers)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        config = self._base.with_load(load_qps)
        if workers != config.num_workers:
            from dataclasses import replace

            config = replace(config, num_workers=workers)
        result = generate_policy(config, tolerance=self._tolerance)
        self._cache[key] = result
        return result

    def cache_size(self) -> int:
        """Number of distinct (load, workers) policies generated so far."""
        return len(self._cache)
