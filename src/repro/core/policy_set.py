"""Load-indexed policy sets (§3.1.3, §3.2.2, §6 "Query Load Adaptation").

RAMSIS pre-computes a *set* of MS policies, one per query load.  Online, the
worker model selector uses the **lowest-load policy that meets the
anticipated load** — i.e. the policy generated for the smallest load that is
still at least the anticipated one, so the policy's burst headroom is never
under-provisioned.  When the anticipated load exceeds every pre-computed
policy, a new one is generated on the fly (§3.2.2).

The pre-computation grid follows §6: policies are generated for a load range
such that the largest expected-accuracy gap between adjacent policies stays
below a threshold (1 % in the paper) — midpoints are inserted until the rule
holds.
"""

from __future__ import annotations

import bisect
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.generator import PolicyGenerator
from repro.core.policy import Policy
from repro.errors import PolicyError

__all__ = ["PolicySet"]


class PolicySet:
    """An ordered collection of policies keyed by generation load.

    Construct directly from policies, or with :meth:`generate` to run the
    §6 refinement loop against a :class:`PolicyGenerator`.
    """

    def __init__(self, policies: Iterable[Policy]) -> None:
        ordered = sorted(policies, key=lambda p: p.load_qps)
        if not ordered:
            raise PolicyError("a policy set needs at least one policy")
        loads = [p.load_qps for p in ordered]
        if len(set(loads)) != len(loads):
            raise PolicyError("duplicate loads in policy set")
        self._policies: List[Policy] = ordered
        self._loads: List[float] = loads
        self._generator: Optional[PolicyGenerator] = None

    # ------------------------------------------------------------------
    # Construction via refinement
    # ------------------------------------------------------------------
    @staticmethod
    def generate(
        generator: PolicyGenerator,
        load_grid_qps: Sequence[float],
        accuracy_gap_threshold: float = 0.01,
        max_policies: int = 64,
        max_workers: Optional[int] = None,
        warm_start: bool = True,
    ) -> "PolicySet":
        """Generate a refined set over ``load_grid_qps``.

        Starts from the given grid and inserts load midpoints between
        adjacent policies whose expected accuracies differ by more than
        ``accuracy_gap_threshold`` (1 % in the paper), until the rule holds
        everywhere or ``max_policies`` is reached.

        Refinement proceeds in rounds: every adjacent pair currently over
        the gap threshold gets its midpoint in the *same* round, worst gaps
        first when the ``max_policies`` budget cannot cover them all.  With
        ``max_workers > 1`` each round's midpoints (and the initial grid)
        solve concurrently across processes; results are bit-identical to
        the serial order because every cell runs the same solve path.  With
        ``warm_start`` each midpoint's value iteration is seeded from the
        lower neighbour's converged values — fewer sweeps, same fixed
        point.

        Every cell (initial grid and refinement midpoints alike) solves
        with the generator's ``solver=`` backend
        (``PolicyGenerator(..., solver="auto"|"tensor"|"loop"|"stacked")``);
        since backends are value-identical, refined sets are byte-identical
        regardless of which backend produced them.  With the ``stacked``
        backend (or ``auto`` on a large enough serial grid) each round —
        the initial grid, then every round's midpoints — solves as *one*
        batched :class:`repro.core.bank.StackedBankMDP` program, with the
        round's warm starts threaded through as the stacked solve's
        per-cell ``initials``.
        """
        if not load_grid_qps:
            raise PolicyError("load grid must be non-empty")
        loads = sorted(set(float(q) for q in load_grid_qps))
        batch = generator.generate_many(loads, max_workers=max_workers)
        results = dict(zip(loads, batch))

        def gap(a: float, b: float) -> float:
            acc_a = results[a].guarantees.expected_accuracy
            acc_b = results[b].guarantees.expected_accuracy
            return abs(acc_a - acc_b)

        while len(results) < max_policies:
            over: List[Tuple[float, float, float]] = []
            for a, b in zip(loads, loads[1:]):
                g = gap(a, b)
                if g > accuracy_gap_threshold:
                    over.append((g, a, b))
            midpoints: List[float] = []
            initials = {}
            # Worst gaps first, so a tight budget refines where it matters.
            for g, a, b in sorted(over, key=lambda item: (-item[0], item[1])):
                if len(results) + len(midpoints) >= max_policies:
                    break
                mid = (a + b) / 2.0
                if mid in results or b - a < 1e-6:
                    continue
                midpoints.append(mid)
                if warm_start and results[a].values is not None:
                    initials[mid] = results[a].values
            if not midpoints:
                break
            batch = generator.generate_many(
                midpoints, max_workers=max_workers, initials=initials
            )
            results.update(zip(midpoints, batch))
            loads = sorted(results)

        policy_set = PolicySet(r.policy for r in results.values())
        policy_set._generator = generator
        return policy_set

    def attach_generator(self, generator: PolicyGenerator) -> None:
        """Enable on-the-fly generation for unanticipated loads (§3.2.2)."""
        self._generator = generator

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self):
        return iter(self._policies)

    @property
    def loads_qps(self) -> Tuple[float, ...]:
        """Generation loads, ascending."""
        return tuple(self._loads)

    @property
    def max_load_qps(self) -> float:
        """Largest pre-computed load."""
        return self._loads[-1]

    # ------------------------------------------------------------------
    # Online selection (§3.2.2)
    # ------------------------------------------------------------------
    def policy_for(self, anticipated_load_qps: float) -> Policy:
        """The lowest-load policy that meets the anticipated load.

        Returns the policy generated for the smallest load ``>=`` the
        anticipated one.  When the anticipated load exceeds every
        pre-computed policy: generate a new policy if a generator is
        attached, else fall back to the highest-load policy (which serves
        with the fastest feasible models — the only safe choice).
        """
        index = bisect.bisect_left(self._loads, anticipated_load_qps)
        if index < len(self._loads):
            return self._policies[index]
        if self._generator is not None:
            result = self._generator.generate(anticipated_load_qps)
            self._insert(result.policy)
            return result.policy
        return self._policies[-1]

    def _insert(self, policy: Policy) -> None:
        if policy.load_qps in self._loads:
            return
        index = bisect.bisect_left(self._loads, policy.load_qps)
        self._loads.insert(index, policy.load_qps)
        self._policies.insert(index, policy)

    # ------------------------------------------------------------------
    # Serialization — one file per policy, artifact-style layout:
    # <dir>/<load>.json
    # ------------------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Write every policy as ``<load>.json`` inside ``directory``."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        for policy in self._policies:
            policy.save(path / f"{policy.load_qps:g}.json")

    @staticmethod
    def load(directory: Union[str, Path]) -> "PolicySet":
        """Read a directory written by :meth:`save`."""
        path = Path(directory)
        files = sorted(path.glob("*.json"))
        if not files:
            raise PolicyError(f"no policy files found in {path}")
        return PolicySet(Policy.load(f) for f in files)

    def summary(self) -> List[Dict[str, float]]:
        """Per-policy (load, expected accuracy, expected violation) rows."""
        rows = []
        for p in self._policies:
            rows.append(
                {
                    "load_qps": p.load_qps,
                    "expected_accuracy": p.metadata.expected_accuracy or float("nan"),
                    "expected_violation_rate": p.metadata.expected_violation_rate
                    or float("nan"),
                }
            )
        return rows
