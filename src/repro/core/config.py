"""Offline inputs to RAMSIS policy generation (§3.1.1).

:class:`WorkerMDPConfig` bundles everything the offline phase needs to
construct one worker's MDP: the latency SLO, the arrival distribution
(query load + inter-arrival pattern), the model latency/accuracy profiles,
and the knobs the paper exposes (discretization strategy, batching
strategy, Pareto pruning, queue bound).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.arrivals.distributions import ArrivalDistribution, PoissonArrivals
from repro.core.discretization import TimeGrid, fixed_length_grid, model_based_grid
from repro.errors import ConfigurationError
from repro.profiles.models import ModelSet

__all__ = [
    "BatchingMode",
    "Discretization",
    "TransitionView",
    "WorkerMDPConfig",
    "DEFAULT_FLD_RESOLUTION",
    "DEFAULT_DISCOUNT",
]

#: The paper's evaluation default (§6 "Policy Generation"): FLD with D = 100.
DEFAULT_FLD_RESOLUTION = 100

#: Discount factor for value iteration.  The paper does not publish its
#: discount; 0.98 keeps policies far-sighted enough to avoid the full-queue
#: state while converging in a few hundred sweeps.
DEFAULT_DISCOUNT = 0.98


class BatchingMode(enum.Enum):
    """Batch-size constraint on the action space (§4.3.2)."""

    #: All queued queries are served in one batch: ``a = (m, n)``.  The
    #: paper's default — variable-batching policies pick ``b = n`` in 80 %
    #: of decisions anyway, and policy generation is far cheaper (Table 2).
    MAXIMAL = "max"
    #: Any batch of the ``b <= n`` earliest-deadline queries: ``a = (m, b)``.
    VARIABLE = "variable"


class Discretization(enum.Enum):
    """Slack-time discretization strategy (§4.2)."""

    MODEL_BASED = "MD"
    FIXED_LENGTH = "FLD"


class TransitionView(enum.Enum):
    """How the per-worker arrival process is derived from the central one.

    ``EXACT_ROUND_ROBIN`` implements the paper's §4.4.2 derivation: the
    worker receives every K-th central-queue arrival, and transition
    probabilities marginalize over the round-robin *phase* inferred from
    interval A.  Exact, but policy generation cost grows with ``K``.

    ``ROUND_ROBIN_MARGINAL`` (default) replaces the phase-conditioned joint
    with the worker's marginal renewal process under round-robin thinning —
    for Poisson central arrivals, Erlang(``K``) inter-arrivals at rate
    ``load / K``.  This keeps the regularity that round-robin induces (the
    effect §4.4.2's conditioning captures) while collapsing the phase
    dimension, so kernels do not depend on the current slack and policy
    generation is fast at any ``K``.  Exact for ``K = 1``.

    ``POISSON_SPLIT`` treats the worker's arrival process as the central
    family at rate ``load / K`` — a *random* split.  For ``K > 1`` this is
    burstier than round-robin reality, hence strictly conservative
    (accuracy lower bounds still hold); exact for ``K = 1``.  Kept as an
    ablation (benchmarks/bench_ablation_views.py).
    """

    EXACT_ROUND_ROBIN = "exact_rr"
    ROUND_ROBIN_MARGINAL = "rr_marginal"
    POISSON_SPLIT = "split"


@dataclass(frozen=True)
class WorkerMDPConfig:
    """All offline inputs for one worker's model-selection MDP.

    Parameters
    ----------
    model_set:
        Models pre-loaded on the worker (``M_w``).
    slo_ms:
        Response-latency SLO: maximum time from arrival at the central
        queue to the inference response.
    arrivals:
        Arrival distribution at the *central queue* — a load (QPS) plus an
        inter-arrival pattern (Poisson by default).
    num_workers:
        ``K``, the number of workers the central load is balanced across.
    max_queue:
        ``N_w``, the worker-queue bound beyond which the special full-queue
        state is entered (§4.2.3).  Defaults to ``B_w + 3``, mirroring the
        paper's ``N_w = 32`` for ``B_w = 29``.
    max_batch_size:
        Largest *supported* batch size (server-side cap); the effective
        ``B_w`` also requires the latency to fit the SLO.
    discretization / fld_resolution:
        §4.2 strategy and the FLD ``D`` knob.
    batching:
        §4.3.2 strategy.
    pareto_prune:
        Prune models off the accuracy-latency Pareto front (§4.3.3).
    view:
        Transition-probability construction (see :class:`TransitionView`).
    discount:
        Value-iteration discount factor.
    """

    model_set: ModelSet
    slo_ms: float
    arrivals: ArrivalDistribution
    num_workers: int = 1
    max_queue: Optional[int] = None
    max_batch_size: int = 32
    discretization: Discretization = Discretization.FIXED_LENGTH
    fld_resolution: int = DEFAULT_FLD_RESOLUTION
    batching: BatchingMode = BatchingMode.MAXIMAL
    pareto_prune: bool = True
    view: TransitionView = TransitionView.ROUND_ROBIN_MARGINAL
    discount: float = DEFAULT_DISCOUNT
    #: Ablation knob: weight the §4.1 reward by the batch size, turning the
    #: objective from accuracy-per-decision into accuracy-per-query.  The
    #: paper uses the unweighted form; see benchmarks/bench_ablation_reward.
    reward_per_query: bool = False
    #: §4.3.1's alternative formulation: drop queries whose deadlines cannot
    #: be satisfied instead of serving them late.  With the (n, T_j) state
    #: abstraction only the earliest deadline is known, so the consistent
    #: closure drops the whole queue (slack of the remainder is unknown and
    #: conservatively zero) and the worker idles until the next arrival.
    #: Default off — the paper's evaluation never drops ("better served
    #: late than never").
    drop_late: bool = False
    #: Semi-MDP extension (the paper cites Das et al. [8] for semi-Markov
    #: complexity but discounts per decision epoch): when set, each action's
    #: continuation is discounted by ``discount ** (latency / reference)``
    #: so long services are discounted proportionally to the real time they
    #: consume.  The reference duration defaults to the per-worker mean
    #: inter-arrival time (making the idle/arrival epoch's discount exactly
    #: ``discount``).  Off by default, matching the paper.
    duration_aware_discount: bool = False
    discount_reference_ms: Optional[float] = None

    def effective_reference_ms(self) -> float:
        """The semi-MDP reference duration (mean per-worker gap by default)."""
        if self.discount_reference_ms is not None:
            if self.discount_reference_ms <= 0:
                raise ConfigurationError("discount_reference_ms must be > 0")
            return self.discount_reference_ms
        return self.per_worker_arrivals().mean_interarrival_ms

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ConfigurationError(f"slo_ms must be > 0, got {self.slo_ms}")
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_queue is not None and self.max_queue < 1:
            raise ConfigurationError(f"max_queue must be >= 1, got {self.max_queue}")
        if not 0.0 < self.discount < 1.0:
            raise ConfigurationError(
                f"discount must be in (0, 1), got {self.discount}"
            )
        if self.fld_resolution < 1:
            raise ConfigurationError(
                f"fld_resolution must be >= 1, got {self.fld_resolution}"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def load_qps(self) -> float:
        """Central-queue query load in queries per second."""
        return self.arrivals.load_qps

    def effective_models(self) -> ModelSet:
        """The model set after optional Pareto pruning."""
        if self.pareto_prune:
            return self.model_set.pareto_front()
        return self.model_set

    def feasible_max_batch(self) -> int:
        """``B_w``: largest supported batch whose latency meets the SLO."""
        return self.model_set.max_batch_size(self.slo_ms, cap=self.max_batch_size)

    def effective_max_queue(self) -> int:
        """``N_w``: explicit value, or ``B_w + 3`` (paper used 32 for 29)."""
        if self.max_queue is not None:
            return self.max_queue
        return self.feasible_max_batch() + 3

    def build_grid(self) -> TimeGrid:
        """Construct the configured slack-time grid."""
        if self.discretization is Discretization.MODEL_BASED:
            return model_based_grid(
                self.effective_models(), self.slo_ms, self.feasible_max_batch()
            )
        return fixed_length_grid(self.slo_ms, self.fld_resolution)

    def with_load(self, load_qps: float) -> "WorkerMDPConfig":
        """Same configuration at a different query load."""
        return replace(self, arrivals=self.arrivals.with_load(load_qps))

    def per_worker_arrivals(self) -> ArrivalDistribution:
        """The per-worker arrival distribution implied by the view."""
        if self.view is TransitionView.ROUND_ROBIN_MARGINAL:
            return self.arrivals.split_round_robin(self.num_workers)
        return self.arrivals.split(self.num_workers)

    @staticmethod
    def default_poisson(
        model_set: ModelSet, slo_ms: float, load_qps: float, num_workers: int = 1, **kwargs
    ) -> "WorkerMDPConfig":
        """Convenience constructor for the paper's standard setting."""
        return WorkerMDPConfig(
            model_set=model_set,
            slo_ms=slo_ms,
            arrivals=PoissonArrivals(load_qps),
            num_workers=num_workers,
            **kwargs,
        )
