"""The central controller (§6): queue, balancer, monitor, workers, metrics.

:class:`CentralController` wires the runtime together the way the paper's
controller VM does: queries submitted by the workload generator are
recorded by the load monitor, distributed to worker queues by the load
balancer (per-worker discipline, RAMSIS) or appended to a shared central
queue that idle workers drain (central discipline, baselines), and each
completion is folded into the shared metrics collector.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arrivals.distributions import ArrivalDistribution
from repro.arrivals.traces import LoadTrace
from repro.balancers import LoadBalancer, RoundRobinBalancer
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.profiles.models import ModelSet
from repro.runtime.clock import VirtualClock
from repro.runtime.worker import InferenceWorker
from repro.runtime.workload import WorkloadGenerator
from repro.selectors.base import ModelSelector, QueueScope, SelectorContext
from repro.sim.latency_model import LatencyModel, StochasticLatency
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.monitor import LoadMonitor
from repro.sim.queries import Query

__all__ = ["CentralController", "RuntimeReport"]


@dataclass(frozen=True)
class RuntimeReport:
    """Outcome of one wall-clock serving run."""

    metrics: SimulationMetrics
    wall_seconds: float
    submitted: int


class CentralController:
    """In-process analogue of the prototype's central controller VM.

    Parameters mirror :class:`repro.sim.simulator.SimulationConfig`; the
    ``time_scale`` compresses wall time (0.05 = 20x faster than reality).
    """

    def __init__(
        self,
        model_set: ModelSet,
        slo_ms: float,
        num_workers: int,
        max_batch_size: int = 32,
        latency_model: Optional[LatencyModel] = None,
        balancer: Optional[LoadBalancer] = None,
        time_scale: float = 0.05,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        snapshot_dir: Optional[str] = None,
        snapshot_interval_s: float = 0.5,
    ) -> None:
        if num_workers < 1:
            raise SimulationError(f"num_workers must be >= 1, got {num_workers}")
        self._model_set = model_set
        self._slo_ms = slo_ms
        self._num_workers = num_workers
        self._max_batch_size = max_batch_size
        self._latency_model = latency_model or StochasticLatency(seed=seed + 1)
        self._balancer = balancer or RoundRobinBalancer()
        self._time_scale = time_scale
        self._seed = seed
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._registry = registry
        #: With a ``snapshot_dir``, :meth:`serve` publishes periodic
        #: atomic registry (and, when the tracer chain starts with a
        #: :class:`~repro.obs.attribution.LatencyAttributor`,
        #: attribution) snapshots there — the live feed ``ramsis top``
        #: polls while the run is in flight.
        self._snapshot_dir = snapshot_dir
        self._snapshot_interval_s = snapshot_interval_s

    def serve(
        self,
        selector: ModelSelector,
        trace: LoadTrace,
        pattern: Optional[ArrivalDistribution] = None,
        arrivals: Optional[np.ndarray] = None,
    ) -> RuntimeReport:
        """Serve one trace in wall-clock time; blocks until drained."""
        import time as _time

        selector.bind(
            SelectorContext(
                model_set=self._model_set,
                slo_ms=self._slo_ms,
                num_workers=self._num_workers,
                max_batch_size=self._max_batch_size,
            )
        )
        clock = VirtualClock(self._time_scale)
        monitor = LoadMonitor()
        monitor.attach_registry(self._registry)
        metrics = MetricsCollector(registry=self._registry)
        metrics_lock = threading.Lock()
        # Event-driven drain: every completion notifies, and the drain
        # loop below waits on this condition instead of polling.
        drained = threading.Condition(metrics_lock)
        per_worker = selector.queue_scope is QueueScope.PER_WORKER
        tracer = self._tracer
        tracing = tracer.enabled

        def on_complete(
            worker_id: int, model_name: str, served: List[Query], now_ms: float
        ) -> None:
            model = self._model_set.get(model_name)
            with metrics_lock:
                metrics.record_decision(len(served), model_name=model_name)
                for query in served:
                    satisfied = now_ms <= query.deadline_ms
                    metrics.record_completion(
                        model_name=model_name,
                        model_accuracy=model.accuracy,
                        response_ms=now_ms - query.arrival_ms,
                        satisfied=satisfied,
                    )
                    if tracing:
                        tracer.instant(
                            "completion",
                            f"worker-{worker_id}",
                            now_ms,
                            args={
                                "query": query.query_id,
                                "worker": worker_id,
                                "model": model_name,
                                "satisfied": satisfied,
                                "accuracy": model.accuracy,
                                "response_ms": now_ms - query.arrival_ms,
                            },
                        )
                drained.notify_all()

        workers = [
            InferenceWorker(
                worker_id=i,
                model_set=self._model_set,
                selector=selector,
                latency_model=self._latency_model.clone(self._seed + 17 * i),
                clock=clock,
                on_complete=on_complete,
                load_probe=monitor.anticipated_load_qps,
                tracer=tracer,
            )
            for i in range(self._num_workers if per_worker else self._num_workers)
        ]

        # Central discipline: all workers share worker 0's queue object by
        # funnelling every arrival to a single logical queue -- emulated by
        # assigning arrivals to the least-loaded worker (eager grab).
        balancer = self._balancer
        balancer.reset()
        monitor_lock = threading.Lock()

        def submit(query: Query) -> None:
            with monitor_lock:
                monitor.record_arrival(query.arrival_ms)
            lengths = [w.queue_length() for w in workers]
            if per_worker:
                target = balancer.assign(lengths)
            else:
                # Central queue approximation: route to the emptiest worker,
                # which converges to eager idle-worker grabbing.
                target = int(np.argmin(lengths))
            if tracing:
                tracer.instant(
                    "arrival",
                    "balancer",
                    query.arrival_ms,
                    args={"query": query.query_id, "worker": target},
                )
            workers[target].enqueue(query)

        for worker in workers:
            worker.start()

        # Live snapshot publisher: while the run is in flight, atomically
        # refresh metrics/attribution JSON files in ``snapshot_dir`` so a
        # concurrent ``ramsis top`` can watch the run converge.
        snapshot_stop: Optional[threading.Event] = None
        snapshot_thread: Optional[threading.Thread] = None
        if self._snapshot_dir is not None:
            from repro.obs.attribution import LatencyAttributor
            from repro.obs.aggregate import write_live_snapshot

            attributor = tracer if isinstance(tracer, LatencyAttributor) else None
            snapshot_stop = threading.Event()

            def _publish() -> None:
                while not snapshot_stop.wait(self._snapshot_interval_s):
                    write_live_snapshot(
                        self._snapshot_dir,
                        registry=self._registry,
                        attributor=attributor,
                    )

            snapshot_thread = threading.Thread(
                target=_publish, name="runtime-snapshot", daemon=True
            )
            snapshot_thread.start()

        start_wall = _time.monotonic()
        generator = WorkloadGenerator(trace, self._slo_ms, pattern, seed=self._seed)
        submitted = generator.run(clock, submit, arrivals=arrivals)

        # Drain: block until every submitted query has completed.  Pure
        # condition waits — a zero-query run falls straight through, and
        # each completion's notify wakes this loop immediately (no
        # polling interval anywhere in the control path).
        with drained:
            while metrics.total < submitted:
                drained.wait()
        for worker in workers:
            worker.stop()
        for worker in workers:
            worker.join()
        if snapshot_stop is not None:
            snapshot_stop.set()
            if snapshot_thread is not None:
                snapshot_thread.join(timeout=5.0)
            # Final snapshot reflecting the fully drained run.
            from repro.obs.attribution import LatencyAttributor
            from repro.obs.aggregate import write_live_snapshot

            write_live_snapshot(
                self._snapshot_dir,
                registry=self._registry,
                attributor=tracer if isinstance(tracer, LatencyAttributor) else None,
            )
        wall = _time.monotonic() - start_wall
        return RuntimeReport(
            metrics=metrics.finalize(), wall_seconds=wall, submitted=submitted
        )
