"""Worker threads: the prototype's worker-VM stand-ins.

Each :class:`InferenceWorker` owns a worker queue (filled by the
controller's load balancer) and runs a service loop on its own thread: when
the queue is non-empty, consult the model selector for the queue state,
take the chosen batch, "execute" it by sleeping the sampled inference
latency on the shared virtual clock, and report completions back to the
controller.  This mirrors §3.2.2's per-worker model selectors dispatching
from their worker queues.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.obs.trace import NULL_TRACER, Tracer
from repro.profiles.models import ModelSet
from repro.runtime.clock import VirtualClock
from repro.selectors.base import ModelSelector
from repro.sim.latency_model import LatencyModel
from repro.sim.queries import Query

__all__ = ["InferenceWorker", "CompletionCallback"]

#: (worker_id, model_name, served queries, completion virtual time)
CompletionCallback = Callable[[int, str, List[Query], float], None]


class InferenceWorker:
    """One worker VM: a queue, a selector, and a service thread.

    With an enabled ``tracer`` each served batch is recorded as a
    ``serve`` span on this worker's track (virtual-clock timestamps), so
    the wall-clock runtime produces the same trace shape as the
    discrete-event simulator.
    """

    def __init__(
        self,
        worker_id: int,
        model_set: ModelSet,
        selector: ModelSelector,
        latency_model: LatencyModel,
        clock: VirtualClock,
        on_complete: CompletionCallback,
        load_probe: Callable[[float], float],
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._id = worker_id
        self._models = model_set
        self._selector = selector
        self._latency_model = latency_model
        self._clock = clock
        self._on_complete = on_complete
        self._load_probe = load_probe
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._queue: Deque[Query] = deque()
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Controller-facing API
    # ------------------------------------------------------------------
    @property
    def worker_id(self) -> int:
        """Stable worker index."""
        return self._id

    def queue_length(self) -> int:
        """Current worker-queue depth (approximate under concurrency)."""
        with self._lock:
            return len(self._queue)

    def enqueue(self, query: Query) -> None:
        """Load balancer hands this worker one query."""
        with self._work_ready:
            self._queue.append(query)
            self._work_ready.notify()

    def start(self) -> None:
        """Spawn the service thread."""
        self._thread = threading.Thread(
            target=self._serve_loop, name=f"worker-{self._id}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Ask the service loop to exit once its queue is drained."""
        with self._work_ready:
            self._stopping = True
            self._work_ready.notify()

    def join(self, timeout_s: float = 30.0) -> None:
        """Wait for the service thread to finish."""
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            with self._work_ready:
                # Pure notify-driven wait: enqueue() and stop() both
                # notify, so there is no polling timeout to burn.
                while not self._queue and not self._stopping:
                    self._work_ready.wait()
                if not self._queue and self._stopping:
                    return
                now = self._clock.now_ms()
                head = self._queue[0]
                queue_len = len(self._queue)
                slack_ms = head.slack_at(now)
                anticipated = self._load_probe(now)
                action = self._selector.select(
                    queue_length=queue_len,
                    earliest_slack_ms=slack_ms,
                    now_ms=now,
                    anticipated_load_qps=anticipated,
                )
                batch = min(action.batch_size, queue_len)
                served = [self._queue.popleft() for _ in range(max(batch, 1))]
                model = self._models.get(action.model)
            # Execute outside the lock: new arrivals may queue meanwhile.
            # The sleep targets the *absolute* virtual completion instant
            # so early wake-ups never accumulate into pacing drift.
            exec_ms = self._latency_model.execution_ms(model, len(served))
            self._clock.sleep_until_ms(now + exec_ms)
            done = self._clock.now_ms()
            if self._tracer.enabled:
                track = f"worker-{self._id}"
                self._tracer.complete(
                    "serve",
                    track,
                    now,
                    done - now,
                    args={
                        "worker": self._id,
                        "model": model.name,
                        "batch": len(served),
                        "queue_len": queue_len,
                        "slack_ms": slack_ms,
                        "anticipated_qps": anticipated,
                    },
                )
                # Per-query dispatch instants, same schema as the
                # simulator's: the attribution engine reads ``wait_ms``
                # here to split queue wait from service time.
                for query in served:
                    self._tracer.instant(
                        "service_start",
                        track,
                        now,
                        args={
                            "query": query.query_id,
                            "model": model.name,
                            "batch": len(served),
                            "wait_ms": now - query.arrival_ms,
                        },
                    )
            self._on_complete(self._id, model.name, served, done)
