"""Workload generation in wall-clock time (§6 "Prototype Implementation").

The prototype's workload generator process produces a stream of query
arrivals according to a query load trace under a stochastic inter-arrival
pattern.  :class:`WorkloadGenerator` pre-samples the arrival timestamps
(identically to the simulator, so runs are comparable) and replays them on
the shared virtual clock, invoking the controller's submit callback per
query.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.arrivals.distributions import ArrivalDistribution, PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.runtime.clock import VirtualClock
from repro.sim.queries import Query

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Replays a trace's arrival stream in (scaled) real time."""

    def __init__(
        self,
        trace: LoadTrace,
        slo_ms: float,
        pattern: Optional[ArrivalDistribution] = None,
        seed: int = 0,
    ) -> None:
        self._trace = trace
        self._slo_ms = slo_ms
        self._pattern = pattern or PoissonArrivals(max(trace.mean_qps, 1e-9))
        self._seed = seed

    def sample(self) -> np.ndarray:
        """The arrival timestamps this generator will replay."""
        rng = np.random.default_rng(self._seed)
        return np.sort(sample_arrival_times(self._trace, self._pattern, rng))

    def run(
        self,
        clock: VirtualClock,
        submit: Callable[[Query], None],
        arrivals: Optional[np.ndarray] = None,
    ) -> int:
        """Replay arrivals against ``submit``; returns the query count.

        Blocks until the last query has been submitted.  Timestamps are
        honoured on the virtual clock; if generation falls behind (GIL,
        scheduling), queries are submitted immediately with their original
        deadlines, which only makes the workload harder — never easier.
        """
        if arrivals is None:
            arrivals = self.sample()
        for query_id, t_ms in enumerate(arrivals):
            clock.sleep_until_ms(float(t_ms))
            submit(Query.create(query_id, float(t_ms), self._slo_ms))
        return int(arrivals.shape[0])
