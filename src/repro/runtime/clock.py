"""Scaled wall-clock time for the runtime.

All runtime components share one :class:`VirtualClock`.  Virtual time is
measured in milliseconds, like everywhere else in the library; the
``time_scale`` factor maps it onto wall-clock seconds (``time_scale = 0.1``
runs 10x faster than real time).
"""

from __future__ import annotations

import time

__all__ = ["VirtualClock"]


class VirtualClock:
    """Monotonic virtual clock with uniform wall-time compression."""

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be > 0, got {time_scale}")
        self._scale = time_scale
        self._start = time.monotonic()

    @property
    def time_scale(self) -> float:
        """Wall seconds per virtual second."""
        return self._scale

    def restart(self) -> None:
        """Re-zero the clock (``now_ms`` starts counting from here).

        The sharded controller restarts the shared clock once every
        shard loop is up, so thread-spawn latency is never charged to
        the first arrivals.
        """
        self._start = time.monotonic()

    def now_ms(self) -> float:
        """Current virtual time in milliseconds since clock creation."""
        return (time.monotonic() - self._start) * 1000.0 / self._scale

    def wall_s_until(self, virtual_deadline_ms: float) -> float:
        """Wall seconds until the clock reaches ``virtual_deadline_ms``
        (negative when the deadline has already passed)."""
        return (virtual_deadline_ms - self.now_ms()) * self._scale / 1000.0

    def sleep_ms(self, virtual_ms: float) -> None:
        """Block for ``virtual_ms`` of virtual time."""
        if virtual_ms > 0:
            time.sleep(virtual_ms / 1000.0 * self._scale)

    def sleep_until_ms(self, virtual_deadline_ms: float) -> None:
        """Block until the virtual clock reaches ``virtual_deadline_ms``.

        Loops on the *absolute* deadline instead of issuing one relative
        sleep: ``time.sleep`` may wake early (signals) and a single shot
        would accumulate the shortfall into pacing drift.
        """
        while True:
            remaining_s = self.wall_s_until(virtual_deadline_ms)
            if remaining_s <= 0:
                return
            time.sleep(remaining_s)
