"""Prototype-style serving runtime (§6 "Prototype Implementation").

The paper's prototype is a client-server deployment: a central controller
VM runs a workload generator, a load balancer, and per-worker model
selector processes; worker VMs execute inference behind TorchServe.  This
subpackage reproduces that architecture *in process*, with real threads and
wall-clock time:

- :class:`~repro.runtime.worker.InferenceWorker` — a worker thread that
  executes (simulated) inference, sleeping for the sampled latency;
- :class:`~repro.runtime.controller.CentralController` — central queue,
  load balancer, per-worker selector threads, and the load monitor;
- :class:`~repro.runtime.workload.WorkloadGenerator` — produces the query
  stream from a trace + inter-arrival pattern in wall-clock time;
- :class:`~repro.runtime.shard.ShardedController` — the scaled serving
  tier: N controller shards with event-driven asyncio dispatch loops,
  consistent round-robin, admission control / drop-late under overload,
  live policy hot-swap, and per-shard auditor + snapshot feeds.

A ``time_scale`` compresses wall-clock time uniformly (e.g. 0.1 makes a
150 ms inference sleep 15 ms) so demonstrations finish quickly while every
relative timing — deadlines, arrivals, service — is preserved.  The
discrete-event simulator remains the tool for large experiments; this
runtime exists to exercise the same MS&S code under real concurrency, and
the sharded tier to prove the serving loop sustains production-scale
throughput without giving up the per-worker determinism the guarantees
rest on.
"""

from repro.runtime.controller import CentralController, RuntimeReport
from repro.runtime.shard import (
    AdmissionControl,
    ShardedController,
    ShardedReport,
)
from repro.runtime.worker import InferenceWorker
from repro.runtime.workload import WorkloadGenerator

__all__ = [
    "CentralController",
    "RuntimeReport",
    "AdmissionControl",
    "ShardedController",
    "ShardedReport",
    "InferenceWorker",
    "WorkloadGenerator",
]
