"""Sharded asyncio serving tier (ROADMAP "million-user-scale serving").

The legacy :class:`~repro.runtime.controller.CentralController` is one
thread per worker plus a polling drain loop — fine for demos, far from the
simulator's throughput ceiling.  This module rebuilds the runtime as N
controller *shards*, each owning a worker group and an event-driven
asyncio dispatch loop:

- **Consistent round-robin.**  Query ``i`` is assigned to global worker
  ``i mod G`` (``G = num_shards * workers_per_shard``) and worker ``g``
  lives on shard ``g mod S``.  Per-worker arrival streams therefore depend
  only on the worker's *global* index, never on the shard layout — an
  ``S x W`` run and a ``1 x S*W`` run give every worker the identical
  stream, which is what preserves the §4.4 per-worker view kernels and the
  §5.1 guarantees per shard.
- **Deterministic virtual timelines.**  Each worker replays its stream as
  a discrete-event timeline in *virtual* milliseconds (arrival-first
  tie-break, exactly like the simulator's event loop); asyncio supplies
  the real-time execution — scaled sleeps for inference, ``asyncio.Event``
  wake-ups on arrival — but every decision, admission verdict and recorded
  timestamp is taken from the virtual timeline.  Metrics and event feeds
  are thus float-exactly identical across shard layouts and repeat runs.
- **No polling.**  Workers block on arrival events and batch-completion
  sleeps only; there is no periodic wake-up anywhere in the dispatch path.
- **Admission control and drop-late.**  :class:`AdmissionControl` bounds
  per-worker queues and rejects hopeless queries at (virtual) arrival
  time; ``drop_late=True`` mirrors the simulator's drop-the-queue
  semantics when the selected action is already late.
- **Live policy hot-swap.**  Dispatch reads the shard's ``selector``
  attribute on every decision, so :meth:`ShardedController.hot_swap` can
  atomically install freshly built selectors (e.g. from the persistent
  :class:`~repro.cache.PolicyCache`) without stalling a single batch;
  auditors follow along through ``RamsisSelector.on_policy_change``.
- **Per-shard observability.**  With a ``run_dir``, every worker writes a
  :class:`~repro.obs.aggregate.ShardTracer` feed (``shard-<gid>.jsonl``)
  in the simulator's event schema, and each shard publishes periodic
  atomic metrics/attribution snapshots — so ``ramsis top``, ``ramsis
  report`` and ``ramsis explain`` work unchanged against a sharded run.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.arrivals.distributions import ArrivalDistribution
from repro.arrivals.traces import LoadTrace
from repro.errors import SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.profiles.models import ModelSet
from repro.runtime.clock import VirtualClock
from repro.runtime.workload import WorkloadGenerator
from repro.selectors.base import ModelSelector, SelectorContext
from repro.sim.latency_model import LatencyModel, StochasticLatency
from repro.sim.metrics import MetricsCollector, SimulationMetrics
from repro.sim.queries import Query

__all__ = [
    "AdmissionControl",
    "ShardedController",
    "ShardedReport",
    "REJECTED_MODEL",
    "DROPPED_MODEL",
]

#: Sentinel model labels for terminal events that never ran inference.
REJECTED_MODEL = "<rejected>"
DROPPED_MODEL = "<dropped>"

_INF = float("inf")


@dataclass(frozen=True)
class AdmissionControl:
    """Overload policy evaluated at (virtual) arrival time.

    Both checks are deterministic functions of the worker's virtual
    timeline, so admission decisions — like everything else in the
    sharded runtime — are identical across shard layouts and repeat runs.

    Parameters
    ----------
    max_queue_depth:
        Reject when the target worker already holds this many queued
        queries (the in-flight batch does not count).  ``None`` leaves
        the queue unbounded.
    min_slack_ms:
        Slack-aware rejection: estimate the earliest service start as
        ``max(arrival, in-flight completion)`` and reject when the
        query's remaining slack at that point falls below this floor.
        Conservative by construction — queued-but-undispatched work is
        not estimated (the depth bound exists for that).  ``None``
        disables the check.
    """

    max_queue_depth: Optional[int] = None
    min_slack_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise SimulationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )


@dataclass(frozen=True)
class ShardedReport:
    """Outcome of one sharded serving run.

    ``submitted == rejected + dropped + served`` and every query appears
    exactly once in ``metrics`` (rejections and drops under the sentinel
    model labels), so the accounting is closed — the overload tests
    assert these identities exactly.
    """

    metrics: SimulationMetrics
    wall_seconds: float
    submitted: int
    rejected: int
    dropped: int
    served: int
    num_shards: int
    workers_per_shard: int
    #: End-to-end throughput: terminal events per wall second.
    qps: float
    #: Paced mode only: p99 wall-clock lag of batch completions behind
    #: their virtual completion instants (milliseconds of wall time).
    p99_added_latency_ms: float
    #: Hot-swap epochs performed during the run.
    policy_swaps: int = 0

    @property
    def admitted(self) -> int:
        """Queries that passed admission control."""
        return self.submitted - self.rejected


class _WorkerState:
    """One worker's deterministic timeline plus its asyncio plumbing."""

    __slots__ = (
        "gid", "arrivals", "released", "ai", "queue", "in_flight",
        "t_done", "event", "latency", "tracer", "submitted", "rejected",
        "dropped", "decisions", "completions", "added_wall_ms",
    )

    def __init__(self, gid: int, arrivals: List[float], latency: LatencyModel):
        self.gid = gid
        self.arrivals = arrivals
        self.released = 0
        self.ai = 0
        self.queue: Deque[Query] = deque()
        #: ``(model_name, model_accuracy, served)`` or ``None`` when idle.
        self.in_flight: Optional[Tuple[str, float, List[Query]]] = None
        self.t_done = _INF
        self.event: Optional[asyncio.Event] = None
        self.latency = latency
        self.tracer = None
        self.submitted = 0
        self.rejected = 0
        self.dropped = 0
        #: Replay buffers folded into the final collector in global worker
        #: order — the fold order is a pure function of the worker's
        #: stream, never of the shard layout or wall-clock interleaving.
        self.decisions: List[Tuple[int, str]] = []
        self.completions: List[Tuple[str, float, float, bool]] = []
        self.added_wall_ms: List[float] = []


class _Shard:
    """One controller shard: an event loop, a worker group, a selector."""

    def __init__(self, index: int, workers: List[_WorkerState]):
        self.index = index
        self.workers = workers
        self.selector: Optional[ModelSelector] = None
        self.auditor = None
        self.attributor = None
        self.registry: Optional[MetricsRegistry] = None
        self.live: Optional[MetricsCollector] = None
        self.error: Optional[BaseException] = None


class ShardedController:
    """N asyncio controller shards serving one trace deterministically.

    Parameters
    ----------
    model_set, slo_ms, max_batch_size, latency_model, time_scale, seed:
        As in :class:`~repro.runtime.controller.CentralController`.
        Worker ``g`` clones the latency model with ``seed + 17 * g`` —
        the same per-global-worker seeding regardless of shard layout.
    num_shards, workers_per_shard:
        The shard topology; ``G = num_shards * workers_per_shard`` global
        workers in total.
    admission:
        Optional :class:`AdmissionControl` applied at arrival.
    drop_late:
        Drop the whole worker queue when the selected action is already
        late (the simulator's ``drop_late`` semantics).
    paced:
        ``True`` replays arrivals on the scaled wall clock (asyncio
        event wake-ups, scaled inference sleeps) and measures added
        latency; ``False`` runs the same event-driven loops flat out —
        the sustained-throughput stress mode.
    run_dir:
        With a directory, every worker writes a ``shard-<gid>.jsonl``
        event feed and every shard publishes periodic live
        metrics/attribution snapshots there;
        :func:`repro.obs.aggregate.merge_run_dir` folds the feeds back
        into one run — float-exactly, in any shard layout.
    load_probe:
        Deterministic anticipated-load function of virtual time;
        defaults to the trace oracle (§7.2's monitor setting, and the
        only choice that keeps decisions layout-independent).
    """

    def __init__(
        self,
        model_set: ModelSet,
        slo_ms: float,
        num_shards: int,
        workers_per_shard: int,
        max_batch_size: int = 32,
        latency_model: Optional[LatencyModel] = None,
        time_scale: float = 0.05,
        seed: int = 0,
        admission: Optional[AdmissionControl] = None,
        drop_late: bool = False,
        paced: bool = True,
        run_dir: Optional[str] = None,
        snapshot_interval_s: float = 0.5,
        load_probe: Optional[Callable[[float], float]] = None,
    ) -> None:
        if num_shards < 1:
            raise SimulationError(f"num_shards must be >= 1, got {num_shards}")
        if workers_per_shard < 1:
            raise SimulationError(
                f"workers_per_shard must be >= 1, got {workers_per_shard}"
            )
        self._model_set = model_set
        self._slo_ms = slo_ms
        self._num_shards = num_shards
        self._workers_per_shard = workers_per_shard
        self._total_workers = num_shards * workers_per_shard
        self._max_batch_size = max_batch_size
        self._latency_model = latency_model or StochasticLatency(seed=seed + 1)
        self._time_scale = time_scale
        self._seed = seed
        self._admission = admission
        self._drop_late = drop_late
        self._paced = paced
        self._run_dir = run_dir
        self._snapshot_interval_s = snapshot_interval_s
        self._load_probe = load_probe
        self._shards: List[_Shard] = []
        self._clock: Optional[VirtualClock] = None
        self._policy_swaps = 0

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def hot_swap(self, selector_factory: Callable[[int], ModelSelector]) -> None:
        """Atomically install fresh selectors on every shard, mid-run.

        Builds and binds the new selector per shard *before* publishing
        it, then swaps the shard's ``selector`` reference — a single
        atomic store the dispatch loop picks up on its next decision, so
        no batch is ever stalled or served by a half-initialized
        selector.  A :class:`~repro.selectors.ramsis.RamsisSelector`
        built with ``on_policy_change`` re-arms the shard's auditor as a
        side effect of its first post-swap decision.
        """
        if not self._shards:
            raise SimulationError("hot_swap() requires an active or completed run")
        context = SelectorContext(
            model_set=self._model_set,
            slo_ms=self._slo_ms,
            num_workers=self._total_workers,
            max_batch_size=self._max_batch_size,
        )
        fresh = []
        for shard in self._shards:
            selector = selector_factory(shard.index)
            selector.bind(context)
            fresh.append(selector)
        for shard, selector in zip(self._shards, fresh):
            shard.selector = selector
        self._policy_swaps += 1

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve(
        self,
        selector_factory: Callable[[int], ModelSelector],
        trace: LoadTrace,
        pattern: Optional[ArrivalDistribution] = None,
        arrivals: Optional[np.ndarray] = None,
        auditors: Optional[Sequence[object]] = None,
        attributors: Optional[Sequence[object]] = None,
    ) -> ShardedReport:
        """Serve one trace across the shards; blocks until drained.

        ``selector_factory(shard_index)`` builds each shard's selector
        (per-shard instances keep hot state off the cross-thread path).
        ``auditors`` / ``attributors`` optionally attach one
        :class:`~repro.obs.audit.GuaranteeAuditor` /
        :class:`~repro.obs.attribution.LatencyAttributor` per shard —
        they receive the shard's lifecycle events (virtual timestamps)
        as a direct tap.
        """
        if auditors is not None and len(auditors) != self._num_shards:
            raise SimulationError("need one auditor entry per shard")
        if attributors is not None and len(attributors) != self._num_shards:
            raise SimulationError("need one attributor entry per shard")

        generator = WorkloadGenerator(trace, self._slo_ms, pattern, seed=self._seed)
        if arrivals is None:
            arrivals = generator.sample()
        submitted = int(arrivals.shape[0])

        if self._load_probe is not None:
            probe = self._load_probe
        else:
            horizon = trace.duration_ms - 1e-9

            def probe(t_ms: float, _trace=trace, _horizon=horizon) -> float:
                return _trace.load_at(min(max(t_ms, 0.0), _horizon))

        self._serve_probe = probe

        context = SelectorContext(
            model_set=self._model_set,
            slo_ms=self._slo_ms,
            num_workers=self._total_workers,
            max_batch_size=self._max_batch_size,
        )

        # Global round-robin: query i -> worker i mod G; worker g -> shard
        # g mod S.  Each worker's stream is a pure function of its global
        # index.
        total = self._total_workers
        shards: List[_Shard] = []
        workers_by_gid: List[_WorkerState] = []
        for gid in range(total):
            stream = arrivals[gid::total].tolist()
            workers_by_gid.append(
                _WorkerState(
                    gid, stream, self._latency_model.clone(self._seed + 17 * gid)
                )
            )
        for s in range(self._num_shards):
            group = [w for w in workers_by_gid if w.gid % self._num_shards == s]
            shard = _Shard(s, group)
            selector = selector_factory(s)
            selector.bind(context)
            shard.selector = selector
            if auditors is not None:
                shard.auditor = auditors[s]
            if attributors is not None:
                shard.attributor = attributors[s]
            shards.append(shard)
        self._shards = shards
        self._policy_swaps = 0

        run_path = None
        if self._run_dir is not None:
            from pathlib import Path

            from repro.obs.aggregate import ShardTracer
            from repro.obs.attribution import LatencyAttributor

            run_path = Path(self._run_dir)
            run_path.mkdir(parents=True, exist_ok=True)
            for w in workers_by_gid:
                w.tracer = ShardTracer(
                    run_path / f"shard-{w.gid}.jsonl", pid=w.gid
                )
            for shard in shards:
                shard.registry = MetricsRegistry()
                shard.live = MetricsCollector(
                    track_responses=False, registry=shard.registry
                )
                if shard.attributor is None:
                    shard.attributor = LatencyAttributor(slo_ms=self._slo_ms)

        if not self._paced:
            for w in workers_by_gid:
                w.released = len(w.arrivals)

        clock = VirtualClock(self._time_scale)
        self._clock = clock
        barrier = threading.Barrier(self._num_shards + 1)
        threads = [
            threading.Thread(
                target=self._shard_thread,
                args=(shard, barrier),
                name=f"shard-{shard.index}",
                daemon=True,
            )
            for shard in shards
        ]
        for thread in threads:
            thread.start()

        snapshot_stop: Optional[threading.Event] = None
        snapshot_thread: Optional[threading.Thread] = None
        if run_path is not None:
            snapshot_stop = threading.Event()

            def _publish() -> None:
                while not snapshot_stop.wait(self._snapshot_interval_s):
                    self._write_snapshots(run_path)

            snapshot_thread = threading.Thread(
                target=_publish, name="shard-snapshot", daemon=True
            )
            snapshot_thread.start()

        import time as _time

        # Shard loops only start counting once every loop is up: restart
        # the clock, then release the barrier, so thread-spawn latency is
        # not charged to the first arrivals as added latency.
        clock.restart()
        start_wall = _time.monotonic()
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            pass  # a shard failed during startup; surfaced below
        for thread in threads:
            thread.join()
        wall = _time.monotonic() - start_wall

        if snapshot_stop is not None:
            snapshot_stop.set()
            if snapshot_thread is not None:
                snapshot_thread.join(timeout=5.0)
        if run_path is not None:
            for w in workers_by_gid:
                w.tracer.close()
        for shard in shards:
            if shard.error is not None:
                raise shard.error
        if run_path is not None:
            self._write_snapshots(run_path)

        # Float-exact fold: one collector, global worker order, each
        # worker's records in its own (deterministic) event order.  The
        # same flat fold `reconstruct_metrics` performs on the merged
        # feed, so trace reconstruction matches these metrics exactly.
        collector = MetricsCollector()
        rejected = dropped = 0
        added: List[float] = []
        for w in workers_by_gid:
            for batch, model_name in w.decisions:
                collector.record_decision(batch, model_name=model_name)
            for model_name, accuracy, response_ms, satisfied in w.completions:
                collector.record_completion(
                    model_name=model_name,
                    model_accuracy=accuracy,
                    response_ms=response_ms,
                    satisfied=satisfied,
                )
            rejected += w.rejected
            dropped += w.dropped
            added.extend(w.added_wall_ms)
        metrics = collector.finalize()

        if added:
            from repro._util import percentile

            p99_added = percentile(sorted(added), 99.0)
        else:
            p99_added = 0.0
        return ShardedReport(
            metrics=metrics,
            wall_seconds=wall,
            submitted=submitted,
            rejected=rejected,
            dropped=dropped,
            served=submitted - rejected - dropped,
            num_shards=self._num_shards,
            workers_per_shard=self._workers_per_shard,
            qps=(metrics.total_queries / wall) if wall > 0 else 0.0,
            p99_added_latency_ms=p99_added,
            policy_swaps=self._policy_swaps,
        )

    # ------------------------------------------------------------------
    # Shard event loops
    # ------------------------------------------------------------------
    def _shard_thread(self, shard: _Shard, barrier: threading.Barrier) -> None:
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            for w in shard.workers:
                w.event = asyncio.Event()
            barrier.wait()
            loop.run_until_complete(self._shard_main(shard))
        except BaseException as exc:  # surfaced by serve() after join
            shard.error = exc
            try:
                barrier.abort()
            except Exception:
                pass
        finally:
            loop.close()

    async def _shard_main(self, shard: _Shard) -> None:
        tasks = [
            asyncio.ensure_future(self._run_worker(shard, w))
            for w in shard.workers
        ]
        if self._paced:
            tasks.append(asyncio.ensure_future(self._replay(shard)))
        await asyncio.gather(*tasks)

    async def _replay(self, shard: _Shard) -> None:
        """Release the shard's arrivals at their scaled wall times.

        One coroutine per shard walks the shard's merged arrival
        schedule; each release appends nothing (workers already know
        their streams) — it only advances the worker's ``released``
        watermark and sets its event, waking the dispatch loop.
        """
        import heapq

        clock = self._clock
        scale = self._time_scale

        def stream(worker: _WorkerState):
            for k, t in enumerate(worker.arrivals):
                yield (t, worker.gid, k, worker)

        schedule = heapq.merge(*(stream(w) for w in shard.workers))
        for t, _gid, k, w in schedule:
            delay_s = (t - clock.now_ms()) * scale / 1000.0
            if delay_s > 0:
                await asyncio.sleep(delay_s)
            w.released = k + 1
            w.event.set()

    async def _run_worker(self, shard: _Shard, w: _WorkerState) -> None:
        """One worker's event-driven deterministic dispatch loop."""
        arrivals = w.arrivals
        n = len(arrivals)
        paced = self._paced
        clock = self._clock
        scale = self._time_scale
        events = 0
        while w.ai < n or w.in_flight is not None:
            next_arrival = arrivals[w.ai] if w.ai < n else _INF
            next_done = w.t_done if w.in_flight is not None else _INF
            # Arrival-first tie-break: identical to the simulator's
            # event loop, so per-worker timelines agree event for event.
            if next_arrival <= next_done:
                if paced:
                    while w.released <= w.ai:
                        w.event.clear()
                        if w.released > w.ai:
                            break
                        await w.event.wait()
                k = w.ai
                w.ai += 1
                self._on_arrival(shard, w, k, next_arrival)
            else:
                if paced:
                    delay_s = (next_done - clock.now_ms()) * scale / 1000.0
                    if delay_s > 0:
                        await asyncio.sleep(delay_s)
                self._on_batch_done(shard, w, next_done)
            events += 1
            if not paced and (events & 2047) == 0:
                # Cooperative yield so sibling workers on this shard's
                # loop interleave even when no sleep is ever awaited.
                await asyncio.sleep(0)
        assert not w.queue, "worker exited with queued queries"

    # ------------------------------------------------------------------
    # Deterministic event handlers (virtual-time domain)
    # ------------------------------------------------------------------
    def _on_arrival(self, shard: _Shard, w: _WorkerState, k: int, t: float) -> None:
        gid = w.gid
        query = Query.create(gid + k * self._total_workers, t, self._slo_ms)
        w.submitted += 1
        tracer = w.tracer
        if tracer is not None:
            tracer.instant(
                "arrival",
                "balancer",
                t,
                args={"query": query.query_id, "worker": gid},
            )
        if shard.auditor is not None:
            shard.auditor.instant(
                "arrival",
                "balancer",
                t,
                args={"query": query.query_id, "worker": gid},
            )

        admission = self._admission
        if admission is not None:
            reject = False
            if (
                admission.max_queue_depth is not None
                and len(w.queue) >= admission.max_queue_depth
            ):
                reject = True
            elif admission.min_slack_ms is not None:
                start = t if w.in_flight is None else max(t, w.t_done)
                if query.deadline_ms - start < admission.min_slack_ms:
                    reject = True
            if reject:
                w.rejected += 1
                self._record_terminal(
                    shard, w, query, t, REJECTED_MODEL, 0.0, rejected=True
                )
                return

        w.queue.append(query)
        if w.in_flight is None:
            self._dispatch(shard, w, t)

    def _dispatch(self, shard: _Shard, w: _WorkerState, t: float) -> None:
        head = w.queue[0]
        queue_len = len(w.queue)
        slack_ms = head.slack_at(t)
        anticipated = self._probe(t)
        action = shard.selector.select(
            queue_length=queue_len,
            earliest_slack_ms=slack_ms,
            now_ms=t,
            anticipated_load_qps=anticipated,
        )
        if action.is_late and self._drop_late:
            # Drop the whole queue (the (n, T_j) abstraction only knows
            # the earliest deadline is missed) and stay idle.
            while w.queue:
                victim = w.queue.popleft()
                w.dropped += 1
                self._record_terminal(
                    shard, w, victim, t, DROPPED_MODEL, t - victim.arrival_ms
                )
            return
        batch = min(action.batch_size, queue_len)
        if batch < 1:
            raise SimulationError(
                f"selector {shard.selector.name} returned batch {batch}"
            )
        served = [w.queue.popleft() for _ in range(batch)]
        model = self._model_set.get(action.model)
        exec_ms = w.latency.execution_ms(model, batch)
        w.decisions.append((batch, model.name))
        if shard.live is not None:
            shard.live.record_decision(batch, model_name=model.name)
        w.in_flight = (model.name, model.accuracy, served)
        w.t_done = t + exec_ms

        tracer = w.tracer
        auditor = shard.auditor
        if tracer is not None or auditor is not None:
            track = f"worker-{w.gid}"
            serve_args = {
                "worker": w.gid,
                "model": model.name,
                "batch": batch,
                "queue_len": queue_len,
                "slack_ms": slack_ms,
                "anticipated_qps": anticipated,
            }
            if tracer is not None:
                tracer.complete("serve", track, t, exec_ms, args=serve_args)
                for query in served:
                    tracer.instant(
                        "service_start",
                        track,
                        t,
                        args={
                            "query": query.query_id,
                            "model": model.name,
                            "batch": batch,
                            "wait_ms": t - query.arrival_ms,
                        },
                    )
            if auditor is not None:
                auditor.complete("serve", track, t, exec_ms, args=serve_args)
        if shard.attributor is not None:
            shard.attributor.observe_decision(w.gid, model.name, batch, exec_ms)
            for query in served:
                shard.attributor.observe_service_start(
                    query.query_id, w.gid, model.name, batch, t - query.arrival_ms
                )

    def _on_batch_done(self, shard: _Shard, w: _WorkerState, t: float) -> None:
        model_name, accuracy, served = w.in_flight
        w.in_flight = None
        w.t_done = _INF
        for query in served:
            satisfied = t <= query.deadline_ms
            response_ms = t - query.arrival_ms
            w.completions.append((model_name, accuracy, response_ms, satisfied))
            if shard.live is not None:
                shard.live.record_completion(
                    model_name=model_name,
                    model_accuracy=accuracy,
                    response_ms=response_ms,
                    satisfied=satisfied,
                )
            args = {
                "query": query.query_id,
                "worker": w.gid,
                "model": model_name,
                "satisfied": satisfied,
                "accuracy": accuracy,
                "response_ms": response_ms,
            }
            if w.tracer is not None:
                w.tracer.instant("completion", f"worker-{w.gid}", t, args=args)
            if shard.auditor is not None:
                shard.auditor.instant(
                    "completion", f"worker-{w.gid}", t, args=args
                )
            if shard.attributor is not None:
                shard.attributor.observe_completion(
                    query.query_id, w.gid, model_name, response_ms, satisfied,
                    t_ms=t,
                )
        if self._paced:
            lag_virtual = self._clock.now_ms() - t
            w.added_wall_ms.append(max(0.0, lag_virtual) * self._time_scale)
        if w.queue:
            self._dispatch(shard, w, t)

    def _record_terminal(
        self,
        shard: _Shard,
        w: _WorkerState,
        query: Query,
        t: float,
        model_name: str,
        response_ms: float,
        rejected: bool = False,
    ) -> None:
        """Terminal accounting for a query that never ran inference."""
        w.completions.append((model_name, 0.0, response_ms, False))
        if shard.live is not None:
            shard.live.record_completion(
                model_name=model_name,
                model_accuracy=0.0,
                response_ms=response_ms,
                satisfied=False,
            )
        args = {
            "query": query.query_id,
            "worker": w.gid,
            "model": model_name,
            "satisfied": False,
            "dropped": True,
            "accuracy": 0.0,
            "response_ms": response_ms,
        }
        if rejected:
            args["rejected"] = True
        if w.tracer is not None:
            w.tracer.instant("completion", f"worker-{w.gid}", t, args=args)
        if shard.auditor is not None:
            shard.auditor.instant("completion", f"worker-{w.gid}", t, args=args)
        if shard.attributor is not None:
            shard.attributor.observe_completion(
                query.query_id, w.gid, model_name, response_ms, False,
                t_ms=t, dropped=True,
            )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _probe(self, t_ms: float) -> float:
        return self._serve_probe(t_ms)

    def _write_snapshots(self, run_path) -> None:
        from repro.obs.aggregate import write_live_snapshot

        for shard in self._shards:
            if shard.registry is None and shard.attributor is None:
                continue
            write_live_snapshot(
                run_path,
                registry=shard.registry,
                attributor=shard.attributor,
                pid=self._total_workers + shard.index,
            )
