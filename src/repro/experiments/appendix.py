"""Appendix experiments: Figs. 10-12, Appendix H (INFaaS), Appendix I (SQF).

- **Fig. 10 (App. C)** — time-discretization sweep: FLD with
  ``D in {2, 10, 100}`` versus MD.  Larger ``D`` recovers MD's accuracy
  with diminishing returns.
- **Fig. 11 (App. D)** — maximal vs variable batching: near-identical
  accuracy, very different policy-generation cost (Table 2).
- **Fig. 12 (App. E)** — a 3-model subset (min / medium / long latency)
  versus the full set, RAMSIS vs Jellyfish+: RAMSIS does not rely on many
  models.
- **App. H** — INFaaS adapted via an accuracy-target sweep: its
  minimize-latency objective pins it to the minimally accurate feasible
  model.
- **App. I** — shortest-queue-first balancing: policies generated from the
  SQF conditional arrival rate, simulated with the SQF balancer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arrivals.traces import LoadTrace
from repro.balancers import ShortestQueueBalancer, sqf_worker_rate_qps
from repro.core.config import BatchingMode, Discretization, WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.reporting import format_table
from repro.experiments.runner import MethodPoint, run_method
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import TaskSpec, image_task
from repro.profiles.zoo import build_three_model_image_set
from repro.selectors import InfaasAdaptedSelector, RamsisSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig

__all__ = [
    "run_fig10",
    "render_variant_sweep",
    "run_fig11",
    "run_fig12",
    "render_fig12",
    "run_appendix_h",
    "render_appendix_h",
    "run_appendix_i",
    "render_appendix_i",
]


@dataclass(frozen=True)
class VariantPoint:
    """One (variant label, load) accuracy/violation cell."""

    variant: str
    load_qps: float
    accuracy: float
    violation_rate: float


def _run_policy_variants(
    variants: Dict[str, Dict],
    scale: ExperimentScale,
    task: TaskSpec,
    loads: Sequence[float],
    workers: int,
    seed: int,
) -> List[VariantPoint]:
    """Generate a policy per (variant overrides, load) and simulate it."""
    slo = task.slos_ms[0]
    points: List[VariantPoint] = []
    for label, overrides in variants.items():
        for load in loads:
            config = WorkerMDPConfig.default_poisson(
                task.model_set,
                slo_ms=slo,
                load_qps=load,
                num_workers=workers,
                fld_resolution=scale.fld_resolution,
                max_batch_size=scale.max_batch_size,
            )
            config = dc_replace(config, **overrides)
            policy = generate_policy(config, with_guarantees=False).policy
            trace = LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"var-{load:g}"
            )
            cell = run_method(
                "RAMSIS",
                task,
                slo,
                workers,
                trace,
                scale,
                seed=seed,
                oracle_load=True,
                selector=RamsisSelector(policy),
            )
            points.append(
                VariantPoint(
                    variant=label,
                    load_qps=load,
                    accuracy=cell.accuracy,
                    violation_rate=cell.violation_rate,
                )
            )
    return points


def run_fig10(
    scale: Optional[ExperimentScale] = None,
    task: Optional[TaskSpec] = None,
    resolutions: Sequence[int] = (2, 10, 100),
    loads_qps: Optional[Sequence[float]] = None,
    seed: int = 23,
) -> List[VariantPoint]:
    """Appendix C: FLD resolution sweep vs MD."""
    scale = scale or ExperimentScale.default()
    task = task or image_task()
    loads = loads_qps if loads_qps is not None else scale.constant_loads_qps
    workers = scale.constant_workers_image
    variants: Dict[str, Dict] = {
        f"FLD D={d}": {"fld_resolution": d} for d in resolutions
    }
    variants["MD"] = {"discretization": Discretization.MODEL_BASED}
    return _run_policy_variants(variants, scale, task, loads, workers, seed)


def run_fig11(
    scale: Optional[ExperimentScale] = None,
    task: Optional[TaskSpec] = None,
    loads_qps: Optional[Sequence[float]] = None,
    seed: int = 29,
) -> List[VariantPoint]:
    """Appendix D: maximal vs variable batching."""
    scale = scale or ExperimentScale.default()
    task = task or image_task()
    loads = loads_qps if loads_qps is not None else scale.constant_loads_qps
    workers = scale.constant_workers_image
    variants = {
        "maximal": {"batching": BatchingMode.MAXIMAL},
        "variable": {"batching": BatchingMode.VARIABLE},
    }
    return _run_policy_variants(variants, scale, task, loads, workers, seed)


def render_variant_sweep(points: Sequence[VariantPoint], title: str) -> str:
    """ASCII rendition of a per-variant accuracy sweep."""
    variants = sorted({p.variant for p in points})
    loads = sorted({p.load_qps for p in points})
    rows = []
    for load in loads:
        row: List[object] = [f"{load:g}"]
        for v in variants:
            match = [p for p in points if p.variant == v and p.load_qps == load]
            if match and match[0].violation_rate < 0.05:
                row.append(f"{match[0].accuracy * 100:.2f}%")
            elif match:
                row.append(f"({match[0].violation_rate * 100:.0f}% viol)")
            else:
                row.append("-")
        rows.append(row)
    return format_table(["load (QPS)"] + variants, rows, title=title)


def run_fig12(
    scale: Optional[ExperimentScale] = None,
    loads_qps: Optional[Sequence[float]] = None,
    seed: int = 31,
) -> List[MethodPoint]:
    """Appendix E: 3-model subset vs full set, RAMSIS vs Jellyfish+."""
    scale = scale or ExperimentScale.default()
    task = image_task()
    loads = loads_qps if loads_qps is not None else scale.constant_loads_qps
    workers = scale.constant_workers_image
    slo = task.slos_ms[0]
    three = build_three_model_image_set()
    configs = [
        ("RAMSIS", task.model_set, "RAMSIS (26 models)"),
        ("JF", task.model_set, "JF+ (26 models)"),
        ("RAMSIS", three, "RAMSIS (3 models)"),
        ("JF", three, "JF+ (3 models)"),
    ]
    points: List[MethodPoint] = []
    for method, models, label in configs:
        spec = TaskSpec(name=task.name, model_set=models, slos_ms=task.slos_ms)
        for load in loads:
            trace = LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"f12-{load:g}"
            )
            cell = run_method(
                method,
                spec,
                slo,
                workers,
                trace,
                scale,
                seed=seed,
                oracle_load=True,
                model_set=models,
            )
            points.append(
                MethodPoint(
                    task=cell.task,
                    method=label,
                    slo_ms=cell.slo_ms,
                    num_workers=cell.num_workers,
                    load_qps=cell.load_qps,
                    accuracy=cell.accuracy,
                    violation_rate=cell.violation_rate,
                    queries=cell.queries,
                )
            )
    return points


def render_fig12(points: Sequence[MethodPoint]) -> str:
    """ASCII rendition of the model-ablation sweep."""
    methods = sorted({p.method for p in points})
    loads = sorted({p.load_qps for p in points})
    rows = []
    for load in loads:
        row: List[object] = [f"{load:g}"]
        for m in methods:
            match = [p for p in points if p.method == m and p.load_qps == load]
            if match and match[0].plottable:
                row.append(f"{match[0].accuracy * 100:.2f}%")
            elif match:
                row.append(f"({match[0].violation_rate * 100:.0f}% viol)")
            else:
                row.append("-")
        rows.append(row)
    return format_table(
        ["load (QPS)"] + methods, rows, title="Figure 12 — fewer-models ablation"
    )


def run_appendix_h(
    scale: Optional[ExperimentScale] = None,
    loads_qps: Optional[Sequence[float]] = None,
    seed: int = 37,
) -> List[Tuple[str, MethodPoint]]:
    """Appendix H: INFaaS accuracy-target sweep vs RAMSIS.

    Targets sweep the achievable model accuracies; labels carry the target.
    """
    scale = scale or ExperimentScale.default()
    task = image_task()
    loads = loads_qps if loads_qps is not None else scale.constant_loads_qps
    workers = scale.constant_workers_image
    slo = task.slos_ms[0]
    targets = sorted({m.accuracy for m in task.model_set.pareto_front()})
    points: List[Tuple[str, MethodPoint]] = []
    for load in loads:
        trace = LoadTrace.constant(
            load, scale.constant_duration_s * 1000.0, name=f"apph-{load:g}"
        )
        ramsis = run_method(
            "RAMSIS", task, slo, workers, trace, scale, seed=seed, oracle_load=True
        )
        points.append(("RAMSIS", ramsis))
        for target in targets:
            cell = run_method(
                f"INFaaS@{target:.5f}",
                task,
                slo,
                workers,
                trace,
                scale,
                seed=seed,
                oracle_load=True,
                selector=InfaasAdaptedSelector(target),
            )
            points.append((f"INFaaS@{target * 100:.1f}", cell))
    return points


def render_appendix_h(points: Sequence[Tuple[str, MethodPoint]]) -> str:
    """ASCII rendition: best INFaaS target vs RAMSIS per load."""
    loads = sorted({p.load_qps for _, p in points})
    rows = []
    for load in loads:
        ramsis = [p for label, p in points if label == "RAMSIS" and p.load_qps == load]
        infaas = [
            p
            for label, p in points
            if label.startswith("INFaaS") and p.load_qps == load and p.plottable
        ]
        best_infaas = max((p.accuracy for p in infaas), default=float("nan"))
        rows.append(
            [
                f"{load:g}",
                f"{ramsis[0].accuracy * 100:.2f}%" if ramsis else "-",
                f"{best_infaas * 100:.2f}%" if infaas else "-",
            ]
        )
    return format_table(
        ["load (QPS)", "RAMSIS", "best INFaaS target"],
        rows,
        title="Appendix H — INFaaS-adapted accuracy-target sweep",
    )


def run_appendix_i(
    scale: Optional[ExperimentScale] = None,
    loads_qps: Optional[Sequence[float]] = None,
    seed: int = 41,
) -> List[Tuple[str, MethodPoint]]:
    """Appendix I: shortest-queue-first balancing.

    SQF policies are generated from the Gupta et al. conditional per-worker
    rate (queue length >= 3 branch, the steady-serving regime) and deployed
    with the SQF balancer; round-robin RAMSIS is the reference.
    """
    scale = scale or ExperimentScale.default()
    task = image_task()
    loads = loads_qps if loads_qps is not None else scale.constant_loads_qps
    workers = scale.constant_workers_image
    slo = task.slos_ms[0]
    points: List[Tuple[str, MethodPoint]] = []
    for load in loads:
        trace = LoadTrace.constant(
            load, scale.constant_duration_s * 1000.0, name=f"appi-{load:g}"
        )
        rr = run_method(
            "RAMSIS", task, slo, workers, trace, scale, seed=seed, oracle_load=True
        )
        points.append(("round-robin", rr))

        # SQF policy: per-worker Poisson at the conditional busy-state rate.
        sqf_rate = sqf_worker_rate_qps(
            load, workers, queue_length=3, model_set=task.model_set, slo_ms=slo
        )
        config = WorkerMDPConfig.default_poisson(
            task.model_set,
            slo_ms=slo,
            load_qps=max(sqf_rate, load / workers) * workers,
            num_workers=workers,
            fld_resolution=scale.fld_resolution,
            max_batch_size=scale.max_batch_size,
        )
        policy = generate_policy(config, with_guarantees=False).policy
        selector = RamsisSelector(policy)
        sim = Simulation(
            SimulationConfig(
                model_set=task.model_set,
                slo_ms=slo,
                num_workers=workers,
                max_batch_size=scale.max_batch_size,
                balancer=ShortestQueueBalancer(),
                monitor=OracleLoadMonitor(trace),
                seed=seed,
                track_responses=False,
            )
        )
        from repro.experiments.runner import shared_arrivals

        metrics = sim.run(selector, trace, arrival_times=shared_arrivals(trace, seed))
        points.append(
            (
                "shortest-queue",
                MethodPoint(
                    task=task.name,
                    method="RAMSIS-SQF",
                    slo_ms=slo,
                    num_workers=workers,
                    load_qps=load,
                    accuracy=metrics.accuracy_per_satisfied_query,
                    violation_rate=metrics.violation_rate,
                    queries=metrics.total_queries,
                ),
            )
        )
    return points


def render_appendix_i(points: Sequence[Tuple[str, MethodPoint]]) -> str:
    """ASCII rendition of round-robin vs shortest-queue-first."""
    loads = sorted({p.load_qps for _, p in points})
    rows = []
    for load in loads:
        row: List[object] = [f"{load:g}"]
        for label in ("round-robin", "shortest-queue"):
            match = [p for lab, p in points if lab == label and p.load_qps == load]
            if match:
                row.append(
                    f"{match[0].accuracy * 100:.2f}% "
                    f"({match[0].violation_rate * 100:.2f}% viol)"
                )
            else:
                row.append("-")
        rows.append(row)
    return format_table(
        ["load (QPS)", "round-robin", "shortest-queue"],
        rows,
        title="Appendix I — load-balancing strategies",
    )
