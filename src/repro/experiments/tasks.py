"""The two inference tasks of §7.

Each :class:`TaskSpec` bundles a model set with the paper's SLO grid for
that task.  The grid follows the paper's rule: the middle SLO is the
highest-latency model's p95 rounded up to the nearest 100 ms, the lowest is
half that, the highest is 1.5x the highest-latency model's p95 rounded up —
:func:`slo_grid_for` computes the rule so custom model sets get consistent
grids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.profiles.models import ModelSet
from repro.profiles.zoo import build_image_model_set, build_text_model_set

__all__ = ["TaskSpec", "image_task", "text_task", "slo_grid_for"]


def slo_grid_for(model_set: ModelSet) -> Tuple[float, float, float]:
    """(low, middle, high) SLOs per the paper's §7 rule."""
    slowest = model_set.slowest().latency_ms(1)
    middle = math.ceil(slowest / 100.0) * 100.0
    high = math.ceil(1.5 * slowest / 100.0) * 100.0
    return (middle / 2.0, middle, high)


@dataclass(frozen=True)
class TaskSpec:
    """One evaluation task: models + SLO grid."""

    name: str
    model_set: ModelSet
    slos_ms: Tuple[float, ...]

    @property
    def middle_slo_ms(self) -> float:
        """The task's representative (middle) SLO."""
        return self.slos_ms[len(self.slos_ms) // 2]


def image_task() -> TaskSpec:
    """ImageNet classification: 26 TorchVision models, SLOs {150, 300, 500}."""
    models = build_image_model_set()
    return TaskSpec(name="image", model_set=models, slos_ms=slo_grid_for(models))


def text_task() -> TaskSpec:
    """GLUE-MNLI classification: 5 BERTs, SLOs {100, 200, 300}."""
    models = build_text_model_set()
    return TaskSpec(name="text", model_set=models, slos_ms=slo_grid_for(models))
