"""Tables 2, 3, and 4.

- **Table 2** (§4.2.2): policy-generation runtimes across time
  discretization (MD, FLD D=100, FLD D=10) and batching (variable, max)
  strategies, for the 9-model Pareto set and the 60-model synthetic set.
- **Table 3** (App. F): latency SLO violation rates on the production
  trace — the companion numbers to Fig. 5.
- **Table 4** (App. F): violation rates under constant load — the
  companion numbers to Fig. 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import BatchingMode, Discretization, WorkerMDPConfig
from repro.core.mdp import build_worker_mdp
from repro.core.solvers import value_iteration
from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result
from repro.experiments.reporting import format_table
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import TaskSpec, image_task
from repro.profiles.zoo import build_synthetic_model_set

__all__ = [
    "Table2Row",
    "run_table2",
    "render_table2",
    "render_table3",
    "render_table4",
]


@dataclass(frozen=True)
class Table2Row:
    """One policy-generation timing measurement.

    ``runtime_s is None`` marks a cell reported as *timeout* — the paper's
    Table 2 shows every |M| = 60 cell except FLD-with-max-batching timing
    out after 24 hours, and this harness mirrors those cells rather than
    grinding through them.
    """

    discretization: str
    batching: str
    model_count: int
    runtime_s: Optional[float]
    iterations: int
    states: int


#: The cells the paper's Table 2 reports as "timeout" for |M| = 60: every
#: variable-batching strategy and MD even with maximal batching.
def _paper_timeout_cell(
    model_count: int, disc: Discretization, batching: BatchingMode
) -> bool:
    if model_count < 60:
        return False
    return batching is BatchingMode.VARIABLE or disc is Discretization.MODEL_BASED


def run_table2(
    scale: Optional[ExperimentScale] = None,
    task: Optional[TaskSpec] = None,
    load_qps: float = 30.0,
    num_workers: int = 1,
    include_variable: bool = True,
    emulate_paper_timeouts: bool = True,
) -> List[Table2Row]:
    """Time policy generation across the paper's strategy grid.

    The paper's Table 2 uses ``B_w = 29`` (SLO 500 ms) and a 24-hour
    timeout; ``emulate_paper_timeouts`` (default) reports the cells the
    paper marks as timeouts without running them — they are one to two
    orders of magnitude heavier and dominate a benchmark run otherwise.
    """
    scale = scale or ExperimentScale.default()
    task = task or image_task()
    pareto = task.model_set.pareto_front()
    synthetic = build_synthetic_model_set(task.model_set, target_count=60)

    strategies: List[Tuple[str, Discretization, int, BatchingMode]] = [
        ("MD", Discretization.MODEL_BASED, 0, BatchingMode.VARIABLE),
        ("FLD D=100", Discretization.FIXED_LENGTH, 100, BatchingMode.VARIABLE),
        ("MD", Discretization.MODEL_BASED, 0, BatchingMode.MAXIMAL),
        ("FLD D=100", Discretization.FIXED_LENGTH, 100, BatchingMode.MAXIMAL),
        ("FLD D=10", Discretization.FIXED_LENGTH, 10, BatchingMode.MAXIMAL),
    ]
    if not include_variable:
        strategies = [s for s in strategies if s[3] is BatchingMode.MAXIMAL]

    rows: List[Table2Row] = []
    for model_set in (pareto, synthetic):
        for label, disc, resolution, batching in strategies:
            if emulate_paper_timeouts and _paper_timeout_cell(
                len(model_set), disc, batching
            ):
                rows.append(
                    Table2Row(
                        discretization=label,
                        batching=batching.value,
                        model_count=len(model_set),
                        runtime_s=None,
                        iterations=0,
                        states=0,
                    )
                )
                continue
            config = WorkerMDPConfig.default_poisson(
                model_set,
                slo_ms=task.slos_ms[-1],
                load_qps=load_qps,
                num_workers=num_workers,
                discretization=disc,
                fld_resolution=resolution if resolution else 100,
                batching=batching,
                max_batch_size=scale.max_batch_size,
            )
            start = time.perf_counter()
            mdp = build_worker_mdp(config)
            stats = value_iteration(mdp)
            elapsed = time.perf_counter() - start
            rows.append(
                Table2Row(
                    discretization=label,
                    batching=batching.value,
                    model_count=len(model_set),
                    runtime_s=elapsed,
                    iterations=stats.iterations,
                    states=mdp.num_states,
                )
            )
    return rows


def render_table2(rows: Sequence[Table2Row]) -> str:
    """ASCII rendition matching the paper's Table 2 layout."""
    counts = sorted({r.model_count for r in rows})
    table_rows = []
    seen = []
    for r in rows:
        key = (r.discretization, r.batching)
        if key not in seen:
            seen.append(key)
    for disc, batching in seen:
        row: List[object] = [disc, batching]
        for count in counts:
            match = [
                r
                for r in rows
                if r.discretization == disc
                and r.batching == batching
                and r.model_count == count
            ]
            if match and match[0].runtime_s is not None:
                row.append(f"{match[0].runtime_s:.2f}")
            else:
                row.append("timeout")
        table_rows.append(row)
    headers = ["TD", "Batch"] + [f"|M|={c} runtime (s)" for c in counts]
    return format_table(
        headers, table_rows, title="Table 2 — policy generation runtimes"
    )


def _violation_grid(points, x_of, x_label: str, title: str) -> str:
    combos = sorted({(p.task, p.slo_ms) for p in points})
    blocks = [title]
    for task, slo in combos:
        cells = [p for p in points if p.task == task and p.slo_ms == slo]
        xs = sorted({x_of(p) for p in cells})
        methods = sorted({p.method for p in cells})
        rows = []
        for x in xs:
            row: List[object] = [f"{x:g}"]
            for m in methods:
                match = [p for p in cells if x_of(p) == x and p.method == m]
                row.append(
                    f"{match[0].violation_rate * 100:.4f}%" if match else "-"
                )
            rows.append(row)
        blocks.append(
            format_table(
                [x_label] + methods,
                rows,
                title=f"\n[{task}] SLO = {slo:g} ms — SLO violation rate",
            )
        )
    return "\n".join(blocks)


def render_table3(result: Fig5Result) -> str:
    """Table 3: violation rates of the Fig. 5 production-trace runs."""
    return _violation_grid(
        result.points,
        x_of=lambda p: p.num_workers,
        x_label="workers",
        title="Table 3 — production-trace SLO violation rates",
    )


def render_table4(result: Fig6Result) -> str:
    """Table 4: violation rates of the Fig. 6 constant-load runs."""
    return _violation_grid(
        result.points,
        x_of=lambda p: p.load_qps or 0.0,
        x_label="load (QPS)",
        title="Table 4 — constant-load SLO violation rates",
    )
