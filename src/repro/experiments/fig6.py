"""Figure 6: constant-query-load evaluation (§7.2).

Accuracy versus constant query load under Poisson arrivals, with the
worker count fixed (paper: 60 for image, 20 for text) so that at the top of
the load range only the lowest-latency model sustains the load.  The load
monitor is assumed perfect (oracle), isolating MS&S quality from load
prediction.  Table 4 reports the same runs' violation rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.arrivals.traces import LoadTrace
from repro.experiments.reporting import format_table, render_comparison
from repro.experiments.runner import METHODS, MethodPoint
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import SweepCell, run_sweep
from repro.experiments.tasks import TaskSpec, image_task, text_task

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.cache import PolicyCache

__all__ = ["Fig6Result", "run_fig6", "render_fig6", "constant_workers_for"]


@dataclass(frozen=True)
class Fig6Result:
    """All cells of the constant-load experiment."""

    points: Tuple[MethodPoint, ...]

    def series(
        self, task: str, slo_ms: float, method: str
    ) -> List[Tuple[float, float]]:
        """(load, accuracy) pairs of one plotted line (plottable only)."""
        return [
            (p.load_qps or 0.0, p.accuracy)
            for p in self.points
            if p.task == task
            and p.slo_ms == slo_ms
            and p.method == method
            and p.plottable
        ]


def constant_workers_for(task: TaskSpec, scale: ExperimentScale) -> int:
    """The fixed worker count of §7.2 for a task at this scale."""
    if task.name == "text":
        return scale.constant_workers_text
    return scale.constant_workers_image


def run_fig6(
    scale: Optional[ExperimentScale] = None,
    tasks: Optional[Sequence[TaskSpec]] = None,
    methods: Sequence[str] = METHODS,
    slos_per_task: Optional[int] = None,
    seed: int = 13,
    jobs: Optional[int] = None,
    cache: Optional["PolicyCache"] = None,
) -> Fig6Result:
    """Execute the §7.2 sweep: methods x constant loads x SLOs x tasks.

    ``jobs > 1`` fans the cells across processes (identical points, see
    :mod:`repro.experiments.sweep`); ``cache`` shares solved policies.
    """
    scale = scale or ExperimentScale.default()
    tasks = tasks if tasks is not None else (image_task(), text_task())
    cells: List[SweepCell] = []
    for task in tasks:
        workers = constant_workers_for(task, scale)
        slos = task.slos_ms[:slos_per_task] if slos_per_task else task.slos_ms
        for slo in slos:
            for load in scale.constant_loads_qps:
                trace = LoadTrace.constant(
                    load,
                    scale.constant_duration_s * 1000.0,
                    name=f"const-{load:g}",
                )
                for method in methods:
                    cells.append(
                        SweepCell(
                            method=method,
                            task=task,
                            slo_ms=slo,
                            num_workers=workers,
                            trace=trace,
                            seed=seed,
                            oracle_load=True,
                        )
                    )
    points = run_sweep(cells, scale, jobs=jobs, cache=cache)
    return Fig6Result(points=tuple(points))


def render_fig6(result: Fig6Result) -> str:
    """ASCII rendition: one table per (task, SLO), plus headline stats."""
    blocks: List[str] = ["Figure 6 — constant query load (oracle monitor)"]
    combos = sorted({(p.task, p.slo_ms) for p in result.points})
    for task, slo in combos:
        cells = [p for p in result.points if p.task == task and p.slo_ms == slo]
        loads = sorted({p.load_qps for p in cells})
        methods = sorted({p.method for p in cells})
        rows = []
        for load in loads:
            row: List[object] = [f"{load:g}"]
            for m in methods:
                match = [p for p in cells if p.load_qps == load and p.method == m]
                if match and match[0].plottable:
                    row.append(f"{match[0].accuracy * 100:.2f}%")
                elif match:
                    row.append(f"({match[0].violation_rate * 100:.0f}% viol)")
                else:
                    row.append("-")
            rows.append(row)
        blocks.append(
            format_table(
                ["load (QPS)"] + methods,
                rows,
                title=f"\n[{task}] SLO = {slo:g} ms — accuracy per satisfied query",
            )
        )
    blocks.append("")
    blocks.append(render_comparison(result.points, ["MS", "JF"]))
    return "\n".join(blocks)
