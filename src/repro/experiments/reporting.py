"""Experiment reporting: ASCII tables and the paper's headline statistics.

The paper summarizes figures with two derived statistics, both reproduced
here:

- **accuracy increase**: average / highest percentage-point accuracy gain
  of RAMSIS over a baseline across plottable cells (§7.1, §7.2, and the
  artifact's ``plot.py`` output);
- **resource savings**: for each baseline cell, the smallest RAMSIS worker
  count achieving at least that accuracy — "RAMSIS requires as low as X %
  (on average Y %) fewer resources" (§7.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import AuditedRun, MethodPoint

__all__ = [
    "format_table",
    "accuracy_increase_summary",
    "audit_comparison_table",
    "resource_savings_summary",
    "series_by_method",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an ASCII table with right-padded columns."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def series_by_method(
    points: Iterable[MethodPoint],
) -> Dict[str, List[MethodPoint]]:
    """Group points by method, each series sorted by its x-coordinate."""
    grouped: Dict[str, List[MethodPoint]] = {}
    for p in points:
        grouped.setdefault(p.method, []).append(p)
    for series in grouped.values():
        series.sort(key=lambda p: (p.num_workers, p.load_qps or 0.0))
    return grouped


def _matching_cells(
    ramsis: Sequence[MethodPoint], baseline: Sequence[MethodPoint]
) -> List[Tuple[MethodPoint, MethodPoint]]:
    """Pair RAMSIS and baseline points at identical configurations,
    keeping only pairs where both sides are plottable (violations < 5%)."""
    index = {
        (p.slo_ms, p.num_workers, p.load_qps): p for p in ramsis if p.plottable
    }
    pairs = []
    for b in baseline:
        if not b.plottable:
            continue
        r = index.get((b.slo_ms, b.num_workers, b.load_qps))
        if r is not None:
            pairs.append((r, b))
    return pairs


def accuracy_increase_summary(
    points: Iterable[MethodPoint], baseline_method: str
) -> Optional[Tuple[float, float]]:
    """(average, highest) accuracy increase of RAMSIS over a baseline, in
    percentage points; ``None`` when no comparable cells exist."""
    grouped = series_by_method(points)
    ramsis = grouped.get("RAMSIS", [])
    baseline = grouped.get(baseline_method, [])
    pairs = _matching_cells(ramsis, baseline)
    if not pairs:
        return None
    gains = [(r.accuracy - b.accuracy) * 100.0 for r, b in pairs]
    return (sum(gains) / len(gains), max(gains))


def resource_savings_summary(
    points: Iterable[MethodPoint], baseline_method: str
) -> Optional[Tuple[float, float]]:
    """(average, highest) fraction of workers RAMSIS saves vs a baseline.

    For every plottable baseline cell at ``K`` workers, find the smallest
    RAMSIS worker count ``K'`` (same SLO) with accuracy at least the
    baseline's; the saving is ``(K - K') / K``.  Cells where no smaller
    RAMSIS configuration reaches the baseline accuracy contribute zero.
    """
    grouped = series_by_method(points)
    ramsis = [p for p in grouped.get("RAMSIS", []) if p.plottable]
    baseline = [p for p in grouped.get(baseline_method, []) if p.plottable]
    if not ramsis or not baseline:
        return None
    savings: List[float] = []
    for b in baseline:
        candidates = [
            r.num_workers
            for r in ramsis
            if r.slo_ms == b.slo_ms
            and r.load_qps == b.load_qps
            and r.accuracy >= b.accuracy
            and r.num_workers <= b.num_workers
        ]
        if candidates:
            savings.append((b.num_workers - min(candidates)) / b.num_workers)
        else:
            savings.append(0.0)
    if not savings:
        return None
    return (sum(savings) / len(savings), max(savings))


def audit_comparison_table(runs: Iterable[AuditedRun]) -> str:
    """Predicted-vs-observed audit table for fig6/fig7-style sweeps.

    One row per audited cell: the §5.1 predictions next to the online
    observations, the audit verdict, and the occupancy TV distance — the
    live counterpart of the offline guarantee tables (Tables 3/4).
    """
    rows: List[Sequence[object]] = []
    for run in runs:
        p, r = run.point, run.report
        tv = "-" if r.occupancy is None else f"{r.occupancy.tv_distance:.4f}"
        rows.append(
            (
                p.task,
                f"{p.load_qps:g}" if p.load_qps is not None else "trace",
                p.num_workers,
                f"{run.guarantees.expected_accuracy * 100:.2f}%",
                f"{p.accuracy * 100:.2f}%",
                f"{run.guarantees.expected_violation_rate * 100:.3f}%",
                f"{p.violation_rate * 100:.3f}%",
                tv,
                r.verdict,
            )
        )
    return format_table(
        [
            "task",
            "load",
            "K",
            "acc floor",
            "acc observed",
            "viol ceiling",
            "viol observed",
            "occupancy TV",
            "audit verdict",
        ],
        rows,
        title="Predicted (§5.1) vs observed — live audit",
    )


def render_comparison(points: Iterable[MethodPoint], baselines: Sequence[str]) -> str:
    """The artifact's plot.py-style textual summary block."""
    points = list(points)
    lines: List[str] = []
    for base in baselines:
        label = {"JF": "Jellyfish", "MS": "ModelSwitching"}.get(base, base)
        acc = accuracy_increase_summary(points, base)
        if acc is not None:
            avg, best = acc
            lines.append(
                f"average accuracy % increase for RAMSIS vs. {label}: {avg:.2f}"
            )
            lines.append(
                f"highest accuracy % increase for RAMSIS vs. {label}: {best:.2f}"
            )
        saving = resource_savings_summary(points, base)
        if saving is not None:
            avg_s, best_s = saving
            lines.append(
                f"resource savings for RAMSIS vs. {label}: "
                f"avg {avg_s * 100:.2f}%, up to {best_s * 100:.2f}%"
            )
    return "\n".join(lines)
