"""Shared experiment machinery.

Everything the per-figure drivers need: cached policy generation, cached
ModelSwitching offline profiling, shared arrival realizations (all methods
see the same query timestamps, as in the paper's framework), and the method
runner that turns one (method, task, SLO, workers, workload) cell into a
:class:`MethodPoint`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import PolicyGenerator
from repro.core.guarantees import PolicyGuarantees
from repro.core.policy import Policy
from repro.core.policy_set import PolicySet
from repro.errors import ConfigurationError
from repro.experiments.scale import ExperimentScale
from repro.obs.audit import AuditConfig, AuditReport, GuaranteeAuditor
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.experiments.tasks import TaskSpec
from repro.profiles.models import ModelSet
from repro.selectors import (
    GreedyDeadlineSelector,
    InfaasAdaptedSelector,
    JellyfishPlusSelector,
    ModelSelector,
    ModelSwitchingSelector,
    RamsisSelector,
    ResponseLatencyTable,
    profile_response_latency,
)
from repro.sim.latency_model import DeterministicLatency, LatencyModel
from repro.sim.monitor import LoadMonitor, OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.cache import PolicyCache
    from repro.core.generator import GenerationResult
    from repro.obs.attribution import LatencyAttributor

__all__ = [
    "MethodPoint",
    "AuditedRun",
    "METHODS",
    "build_ramsis_result",
    "build_ramsis_policy",
    "build_policy_set",
    "build_audit_references",
    "modelswitching_table",
    "make_selector",
    "run_method",
    "run_audited",
    "shared_arrivals",
    "clear_caches",
]

#: Canonical method identifiers used across figures and the CLI
#: (the artifact's names: RAMSIS, JF = Jellyfish+, MS = ModelSwitching).
METHODS = ("RAMSIS", "JF", "MS")

#: Solver tolerance the experiment drivers generate policies at; the
#: persistent-cache key includes it, so every layer must agree.
_TOLERANCE = 1e-7


@dataclass(frozen=True)
class MethodPoint:
    """One (method, configuration) cell of an evaluation figure."""

    task: str
    method: str
    slo_ms: float
    num_workers: int
    load_qps: Optional[float]  # None for trace-driven workloads
    accuracy: float
    violation_rate: float
    queries: int

    @property
    def plottable(self) -> bool:
        """The paper only plots cells with violation rate < 5%."""
        return self.violation_rate < 0.05


# ----------------------------------------------------------------------
# Caches (in-memory, per process).  Benchmarks re-use cells heavily.
# ----------------------------------------------------------------------
_RESULT_CACHE: Dict[Tuple, "GenerationResult"] = {}
_POLICY_SET_CACHE: Dict[Tuple, PolicySet] = {}
_MS_TABLE_CACHE: Dict[Tuple, ResponseLatencyTable] = {}
_ARRIVAL_CACHE: Dict[Tuple, np.ndarray] = {}
_AUDIT_REF_CACHE: Dict[
    Tuple, Tuple[Policy, PolicyGuarantees, Dict[str, float]]
] = {}


def clear_caches() -> None:
    """Drop all cached policies, tables, and arrival realizations."""
    _RESULT_CACHE.clear()
    _POLICY_SET_CACHE.clear()
    _MS_TABLE_CACHE.clear()
    _ARRIVAL_CACHE.clear()
    _AUDIT_REF_CACHE.clear()


def _base_config(
    model_set: ModelSet,
    slo_ms: float,
    load_qps: float,
    num_workers: int,
    scale: ExperimentScale,
    **overrides,
) -> WorkerMDPConfig:
    return WorkerMDPConfig.default_poisson(
        model_set,
        slo_ms=slo_ms,
        load_qps=load_qps,
        num_workers=num_workers,
        fld_resolution=overrides.pop("fld_resolution", scale.fld_resolution),
        max_batch_size=overrides.pop("max_batch_size", scale.max_batch_size),
        **overrides,
    )


def build_ramsis_result(
    model_set: ModelSet,
    slo_ms: float,
    load_qps: float,
    num_workers: int,
    scale: ExperimentScale,
    cache: Optional["PolicyCache"] = None,
    **overrides,
) -> "GenerationResult":
    """One cached RAMSIS generation result for a (load, workers, SLO) cell.

    Resolution order: in-memory memo, then the persistent disk ``cache``
    (when given), then a fresh solve — whose result is committed to both
    layers.  The disk layer is what lets parallel sweep workers share
    solved policies across processes: the first process to solve a cell
    publishes it, every later process restores it.
    """
    key = (
        "policy",
        model_set.task,
        len(model_set),
        slo_ms,
        round(load_qps, 6),
        num_workers,
        scale.fld_resolution,
        scale.max_batch_size,
        tuple(sorted(overrides.items())),
    )
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        return cached
    config = _base_config(model_set, slo_ms, load_qps, num_workers, scale, **overrides)
    from repro.core.generator import generate_policy

    if cache is not None:
        restored = cache.get(config, _TOLERANCE)
        if restored is not None:
            _RESULT_CACHE[key] = restored
            return restored
    result = generate_policy(config, tolerance=_TOLERANCE)
    if cache is not None:
        cache.put(config, _TOLERANCE, result)
    _RESULT_CACHE[key] = result
    return result


def build_ramsis_policy(
    model_set: ModelSet,
    slo_ms: float,
    load_qps: float,
    num_workers: int,
    scale: ExperimentScale,
    cache: Optional["PolicyCache"] = None,
    **overrides,
) -> Policy:
    """One cached RAMSIS policy for a fixed (load, workers, SLO) cell."""
    return build_ramsis_result(
        model_set, slo_ms, load_qps, num_workers, scale, cache=cache, **overrides
    ).policy


def build_audit_references(
    model_set: ModelSet,
    slo_ms: float,
    load_qps: float,
    num_workers: int,
    scale: ExperimentScale,
    **overrides,
) -> Tuple[Policy, PolicyGuarantees, Dict[str, float]]:
    """Everything the live auditor needs for a pinned-policy cell.

    Returns the cached ``(policy, guarantees, expected_occupancy)``
    triple, where ``expected_occupancy`` is the §5.1 stationary
    distribution conditioned on decision states (what decision epochs
    empirically sample).
    """
    key = (
        "audit",
        model_set.task,
        len(model_set),
        slo_ms,
        round(load_qps, 6),
        num_workers,
        scale.fld_resolution,
        scale.max_batch_size,
        tuple(sorted(overrides.items())),
    )
    cached = _AUDIT_REF_CACHE.get(key)
    if cached is not None:
        return cached
    config = _base_config(model_set, slo_ms, load_qps, num_workers, scale, **overrides)
    from repro.core.generator import generate_policy
    from repro.core.guarantees import stationary_occupancy
    from repro.core.mdp import build_worker_mdp

    result = generate_policy(config)
    mdp = build_worker_mdp(config)
    occupancy = stationary_occupancy(mdp, result.policy).decision_conditional()
    triple = (result.policy, result.guarantees, occupancy)
    _AUDIT_REF_CACHE[key] = triple
    return triple


def build_policy_set(
    model_set: ModelSet,
    slo_ms: float,
    num_workers: int,
    min_load_qps: float,
    max_load_qps: float,
    scale: ExperimentScale,
    max_workers: Optional[int] = None,
    cache: Optional["PolicyCache"] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> PolicySet:
    """A cached load-refined policy set covering ``[min, max]`` QPS.

    ``max_workers > 1`` fans grid cells (and each refinement round's
    midpoints) across processes; ``cache`` adds a persistent disk layer
    (:class:`repro.cache.PolicyCache`) so separate invocations share solved
    policies.  Both paths produce byte-identical banks.
    """
    key = (
        "set",
        model_set.task,
        len(model_set),
        slo_ms,
        num_workers,
        round(min_load_qps, 3),
        round(max_load_qps, 3),
        scale.name,
        scale.fld_resolution,
    )
    cached = _POLICY_SET_CACHE.get(key)
    if cached is not None:
        return cached
    if max_load_qps <= min_load_qps:
        raise ConfigurationError("max_load_qps must exceed min_load_qps")
    grid = np.linspace(min_load_qps, max_load_qps, scale.policy_grid_points)
    generator = PolicyGenerator(
        _base_config(model_set, slo_ms, max_load_qps, num_workers, scale),
        cache=cache,
        tracer=tracer,
        registry=registry,
    )
    policy_set = PolicySet.generate(
        generator,
        load_grid_qps=[float(q) for q in grid],
        accuracy_gap_threshold=scale.policy_accuracy_gap,
        max_policies=max(scale.policy_grid_points * 2, 8),
        max_workers=max_workers,
    )
    _POLICY_SET_CACHE[key] = policy_set
    return policy_set


def modelswitching_table(
    model_set: ModelSet,
    slo_ms: float,
    num_workers: int,
    max_load_qps: float,
    scale: ExperimentScale,
) -> ResponseLatencyTable:
    """Cached ModelSwitching offline response-latency profile."""
    key = (
        "ms",
        model_set.task,
        len(model_set),
        slo_ms,
        num_workers,
        round(max_load_qps, 3),
        scale.name,
    )
    cached = _MS_TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    grid = np.linspace(
        max_load_qps / scale.ms_profile_grid_points,
        max_load_qps,
        scale.ms_profile_grid_points,
    )
    table = profile_response_latency(
        model_set,
        loads_qps=[float(q) for q in grid],
        num_workers=num_workers,
        slo_ms=slo_ms,
        max_batch_size=scale.max_batch_size,
        duration_ms=scale.ms_profile_duration_s * 1000.0,
    )
    _MS_TABLE_CACHE[key] = table
    return table


def shared_arrivals(trace: LoadTrace, seed: int) -> np.ndarray:
    """One Poisson arrival realization per (trace, seed) — shared across
    methods so comparisons see identical query streams."""
    key = (trace.name, trace.interval_ms, trace.qps, seed)
    cached = _ARRIVAL_CACHE.get(key)
    if cached is not None:
        return cached
    rng = np.random.default_rng(seed)
    arrivals = np.sort(
        sample_arrival_times(trace, PoissonArrivals(max(trace.mean_qps, 1e-9)), rng)
    )
    _ARRIVAL_CACHE[key] = arrivals
    return arrivals


def make_selector(
    method: str,
    task: TaskSpec,
    slo_ms: float,
    num_workers: int,
    trace: LoadTrace,
    scale: ExperimentScale,
    pinned_load_qps: Optional[float] = None,
    model_set: Optional[ModelSet] = None,
    cache: Optional["PolicyCache"] = None,
) -> ModelSelector:
    """Instantiate the selector for a canonical method name.

    ``cache`` adds a persistent disk layer under RAMSIS policy
    construction (pinned policies and policy sets alike); other methods
    ignore it.
    """
    models = model_set if model_set is not None else task.model_set
    peak = trace.peak_qps * 1.05
    if method == "RAMSIS":
        if pinned_load_qps is not None:
            policy = build_ramsis_policy(
                models, slo_ms, pinned_load_qps, num_workers, scale, cache=cache
            )
            return RamsisSelector(policy)
        policy_set = build_policy_set(
            models,
            slo_ms,
            num_workers,
            min_load_qps=trace.min_qps * 0.9,
            max_load_qps=peak,
            scale=scale,
            cache=cache,
        )
        return RamsisSelector(policy_set)
    if method == "JF":
        return JellyfishPlusSelector()
    if method == "MS":
        table = modelswitching_table(models, slo_ms, num_workers, peak, scale)
        return ModelSwitchingSelector(table)
    if method == "Greedy":
        return GreedyDeadlineSelector()
    if method.startswith("INFaaS"):
        # "INFaaS@0.78" pins the accuracy target.
        target = float(method.split("@", 1)[1]) if "@" in method else 0.0
        return InfaasAdaptedSelector(target)
    raise ConfigurationError(f"unknown method {method!r}")


def run_method(
    method: str,
    task: TaskSpec,
    slo_ms: float,
    num_workers: int,
    trace: LoadTrace,
    scale: ExperimentScale,
    seed: int = 11,
    oracle_load: bool = False,
    latency_model: Optional[LatencyModel] = None,
    model_set: Optional[ModelSet] = None,
    selector: Optional[ModelSelector] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
    cache: Optional["PolicyCache"] = None,
    attributor: Optional["LatencyAttributor"] = None,
) -> MethodPoint:
    """Execute one evaluation cell and collect its metrics.

    ``oracle_load`` switches the monitor to the trace's true load (the §7.2
    constant-load setting); otherwise the shared 500 ms moving-average
    monitor is used.  Constant (single-interval) traces pin RAMSIS to the
    policy for that exact load, like the artifact does.  ``tracer`` and
    ``registry`` (see :mod:`repro.obs`) opt the underlying simulation into
    per-query tracing and time-series metrics; ``attributor`` attaches
    streaming tail-latency attribution
    (:class:`repro.obs.attribution.LatencyAttributor`) on either engine
    without forcing the reference path.  ``cache`` layers a persistent
    :class:`repro.cache.PolicyCache` under policy construction so
    concurrent sweep processes share solved policies.
    """
    models = model_set if model_set is not None else task.model_set
    pinned = trace.qps[0] if len(trace.qps) == 1 else None
    if selector is None:
        selector = make_selector(
            method,
            task,
            slo_ms,
            num_workers,
            trace,
            scale,
            pinned_load_qps=pinned if method == "RAMSIS" else None,
            model_set=models,
            cache=cache,
        )
    monitor: LoadMonitor = (
        OracleLoadMonitor(trace) if oracle_load else LoadMonitor(window_ms=500.0)
    )
    sim = Simulation(
        SimulationConfig(
            model_set=models,
            slo_ms=slo_ms,
            num_workers=num_workers,
            max_batch_size=scale.max_batch_size,
            latency_model=latency_model or DeterministicLatency(),
            monitor=monitor,
            seed=seed,
            track_responses=False,
            tracer=tracer,
            registry=registry,
            attributor=attributor,
        )
    )
    metrics = sim.run(selector, trace, arrival_times=shared_arrivals(trace, seed))
    return MethodPoint(
        task=task.name,
        method=method,
        slo_ms=slo_ms,
        num_workers=num_workers,
        load_qps=pinned,
        accuracy=metrics.accuracy_per_satisfied_query,
        violation_rate=metrics.violation_rate,
        queries=metrics.total_queries,
    )


@dataclass(frozen=True)
class AuditedRun:
    """A RAMSIS evaluation cell plus its live audit outcome."""

    point: MethodPoint
    report: AuditReport
    guarantees: PolicyGuarantees


def run_audited(
    task: TaskSpec,
    slo_ms: float,
    num_workers: int,
    trace: LoadTrace,
    scale: ExperimentScale,
    seed: int = 11,
    oracle_load: bool = True,
    policy_load_qps: Optional[float] = None,
    audit_config: Optional[AuditConfig] = None,
    latency_model: Optional[LatencyModel] = None,
    model_set: Optional[ModelSet] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> AuditedRun:
    """Run a RAMSIS pinned-policy cell under the live guarantee auditor.

    The policy (and the §5.1 references the auditor checks against) is
    generated for ``policy_load_qps`` when given, else the trace's mean
    load.  Passing a ``policy_load_qps`` below the trace's actual load
    deliberately audits a *stale* policy — the adversarial case where the
    auditor must flag bound breaches and load drift.  ``tracer`` becomes
    the auditor's inner tracer, so a :class:`~repro.obs.RecordingTracer`
    here also captures the emitted ``audit_*`` events.
    """
    models = model_set if model_set is not None else task.model_set
    actual_load = trace.qps[0] if len(trace.qps) == 1 else trace.mean_qps
    policy_load = policy_load_qps if policy_load_qps is not None else actual_load
    policy, guarantees, occupancy = build_audit_references(
        models, slo_ms, policy_load, num_workers, scale
    )
    auditor = GuaranteeAuditor(
        guarantees,
        policy=policy,
        expected_occupancy=occupancy,
        config=audit_config,
        inner=tracer,
        registry=registry,
    )
    selector = RamsisSelector(policy, on_policy_change=auditor.note_policy)
    point = run_method(
        "RAMSIS",
        task,
        slo_ms,
        num_workers,
        trace,
        scale,
        seed=seed,
        oracle_load=oracle_load,
        latency_model=latency_model,
        model_set=models,
        selector=selector,
        tracer=auditor,
        registry=registry,
    )
    report = auditor.finalize(trace.duration_ms)
    return AuditedRun(point=point, report=report, guarantees=guarantees)
