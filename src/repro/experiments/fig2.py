"""Figure 2: the motivating timeline (§2.2).

The paper's Fig. 2 shows the *same* sequence of query inter-arrivals served
by a load-granular scheme and by RAMSIS: the load-granular scheme runs the
one model whose throughput covers the load for every batch, while RAMSIS
occasionally upgrades to a slower, more accurate model during arrival lulls
— at the same (zero) SLO violations.

:func:`run_fig2` reproduces that demonstration quantitatively: one Poisson
arrival realization, two selectors, full decision logs, and a textual
timeline of the decisions around the longest lull.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.arrivals.analysis import find_lulls
from repro.arrivals.traces import LoadTrace
from repro.experiments.runner import (
    build_ramsis_policy,
    modelswitching_table,
    shared_arrivals,
)
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import TaskSpec, image_task
from repro.selectors import ModelSwitchingSelector, RamsisSelector
from repro.selectors.recording import DecisionRecord, RecordingSelector
from repro.sim.metrics import SimulationMetrics
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig

__all__ = ["Fig2Result", "run_fig2", "render_fig2"]


@dataclass(frozen=True)
class Fig2Result:
    """Both schemes' outcomes on one shared arrival timeline."""

    load_qps: float
    num_workers: int
    slo_ms: float
    ramsis_metrics: SimulationMetrics
    baseline_metrics: SimulationMetrics
    ramsis_decisions: Tuple[DecisionRecord, ...]
    baseline_decisions: Tuple[DecisionRecord, ...]
    lulls: Tuple[Tuple[float, float], ...]
    model_accuracy: dict

    @property
    def ramsis_models_used(self) -> List[str]:
        """Distinct models RAMSIS selected."""
        return sorted({d.action.model for d in self.ramsis_decisions})

    @property
    def baseline_models_used(self) -> List[str]:
        """Distinct models the load-granular baseline selected."""
        return sorted({d.action.model for d in self.baseline_decisions})

    def ramsis_upgrades(self) -> List[DecisionRecord]:
        """RAMSIS decisions on models more accurate than the baseline's."""
        baseline_best = max(
            self.model_accuracy[m] for m in self.baseline_models_used
        )
        return [
            d
            for d in self.ramsis_decisions
            if self.model_accuracy[d.action.model] > baseline_best
        ]


def run_fig2(
    scale: Optional[ExperimentScale] = None,
    task: Optional[TaskSpec] = None,
    load_per_worker_qps: float = 15.0,
    num_workers: int = 2,
    duration_ms: float = 20_000.0,
    seed: int = 47,
) -> Fig2Result:
    """Serve one arrival realization with both schemes and log decisions."""
    scale = scale or ExperimentScale.default()
    task = task or image_task()
    slo = task.slos_ms[0]
    load = load_per_worker_qps * num_workers
    trace = LoadTrace.constant(load, duration_ms, name=f"fig2-{load:g}")
    arrivals = shared_arrivals(trace, seed)

    policy = build_ramsis_policy(task.model_set, slo, load, num_workers, scale)
    ramsis = RecordingSelector(RamsisSelector(policy))
    # The load-granular reference: ModelSwitching, whose offline-profiled
    # p99 response latencies make it pick a genuinely sustainable model.
    table = modelswitching_table(
        task.model_set, slo, num_workers, load * 1.1, scale
    )
    baseline = RecordingSelector(ModelSwitchingSelector(table))

    metrics = {}
    for label, selector in (("ramsis", ramsis), ("baseline", baseline)):
        sim = Simulation(
            SimulationConfig(
                model_set=task.model_set,
                slo_ms=slo,
                num_workers=num_workers,
                max_batch_size=scale.max_batch_size,
                monitor=OracleLoadMonitor(trace),
                seed=seed,
                track_responses=False,
            )
        )
        metrics[label] = sim.run(selector, trace, arrival_times=arrivals)

    return Fig2Result(
        load_qps=load,
        num_workers=num_workers,
        slo_ms=slo,
        ramsis_metrics=metrics["ramsis"],
        baseline_metrics=metrics["baseline"],
        ramsis_decisions=tuple(ramsis.decisions),
        baseline_decisions=tuple(baseline.decisions),
        lulls=tuple(find_lulls(np.asarray(arrivals), threshold=3.0)),
        model_accuracy=task.model_set.accuracy_table(),
    )


def render_fig2(result: Fig2Result, window_ms: float = 1_500.0) -> str:
    """Textual Fig. 2: summary plus the decisions around the longest lull."""
    lines: List[str] = [
        "Figure 2 — same inter-arrival timeline, two MS&S schemes",
        f"load {result.load_qps:g} QPS, {result.num_workers} workers, "
        f"SLO {result.slo_ms:g} ms",
        "",
        f"{'scheme':<14} {'accuracy':>9} {'violations':>11}  models used",
        f"{'RAMSIS':<14} "
        f"{result.ramsis_metrics.accuracy_per_satisfied_query * 100:>8.2f}% "
        f"{result.ramsis_metrics.violation_rate * 100:>10.3f}%  "
        f"{', '.join(result.ramsis_models_used)}",
        f"{'load-granular':<14} "
        f"{result.baseline_metrics.accuracy_per_satisfied_query * 100:>8.2f}% "
        f"{result.baseline_metrics.violation_rate * 100:>10.3f}%  "
        f"{', '.join(result.baseline_models_used)}",
        "",
        f"arrival lulls (> 3x mean gap): {len(result.lulls)}; "
        f"RAMSIS upgrade decisions: {len(result.ramsis_upgrades())}",
    ]
    if result.lulls:
        longest = max(result.lulls, key=lambda span: span[1] - span[0])
        lo = longest[0] - window_ms / 2
        hi = longest[1] + window_ms / 2
        lines.append(
            f"\ndecisions around the longest lull "
            f"({longest[0]:.0f}-{longest[1]:.0f} ms):"
        )
        for d in result.ramsis_decisions:
            if lo <= d.now_ms <= hi:
                lines.append(
                    f"  t={d.now_ms:8.1f} ms  n={d.queue_length:<2d} "
                    f"slack={d.earliest_slack_ms:6.1f} ms  -> "
                    f"{d.action.model} (b={d.action.batch_size})"
                )
    return "\n".join(lines)
