"""Figure 7: RAMSIS fidelity (§7.3.1).

Compares three variants of the same RAMSIS policy at constant loads:

- **expectation** — the §5.1 stationary-analysis numbers;
- **simulation** — deterministic p95 execution latencies;
- **implementation** — stochastic execution latencies (the prototype's
  behaviour; here the stochastic latency model plays that role, DESIGN.md
  §3).

The paper's findings, which this experiment reproduces: simulation closely
follows the expectation; the implementation achieves *higher* accuracy and
*fewer* violations than both, because real executions usually finish ahead
of the planned p95; and near peak capacity the expectation over-estimates
the violation rate (the full-queue state's pessimistic accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.arrivals.traces import LoadTrace
from repro.core.guarantees import PolicyGuarantees
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_ramsis_result
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import SweepCell, run_sweep
from repro.experiments.tasks import TaskSpec, image_task

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.cache import PolicyCache

__all__ = ["FidelityPoint", "Fig7Result", "run_fig7", "render_fig7"]

VARIANTS = ("expectation", "simulation", "implementation")


@dataclass(frozen=True)
class FidelityPoint:
    """One (variant, workers, load) cell."""

    variant: str
    num_workers: int
    load_qps: float
    accuracy: float
    violation_rate: float


@dataclass(frozen=True)
class Fig7Result:
    """All cells of the fidelity experiment."""

    points: Tuple[FidelityPoint, ...]

    def series(
        self, variant: str, num_workers: int
    ) -> List[Tuple[float, float, float]]:
        """(load, accuracy, violation) triples for one line."""
        return [
            (p.load_qps, p.accuracy, p.violation_rate)
            for p in self.points
            if p.variant == variant and p.num_workers == num_workers
        ]


def run_fig7(
    scale: Optional[ExperimentScale] = None,
    task: Optional[TaskSpec] = None,
    loads_qps: Optional[Sequence[float]] = None,
    seed: int = 17,
    jobs: Optional[int] = None,
    cache: Optional["PolicyCache"] = None,
) -> Fig7Result:
    """Execute the fidelity sweep on the image task.

    The **expectation** variant is the offline §5.1 analysis — it *is* the
    policy solve, so it runs serially up front and (with ``cache``)
    publishes every solved policy to the shared disk layer.  The
    simulation/implementation variants are ordinary evaluation cells and
    fan out across ``jobs`` processes; their pinned-policy lookups then
    hit the warmed cache instead of re-solving.
    """
    scale = scale or ExperimentScale.default()
    task = task or image_task()
    slo = task.slos_ms[0]
    loads = loads_qps if loads_qps is not None else scale.constant_loads_qps

    expectations: Dict[Tuple[int, float], PolicyGuarantees] = {}
    cells: List[SweepCell] = []
    for workers in scale.fidelity_worker_counts:
        for load in loads:
            result = build_ramsis_result(
                task.model_set, slo, load, workers, scale, cache=cache
            )
            expectations[(workers, load)] = result.guarantees
            trace = LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"fid-{load:g}"
            )
            for variant, stochastic_seed in (
                ("simulation", None),
                ("implementation", seed + 1),
            ):
                cells.append(
                    SweepCell(
                        method="RAMSIS",
                        task=task,
                        slo_ms=slo,
                        num_workers=workers,
                        trace=trace,
                        seed=seed,
                        oracle_load=True,
                        stochastic_seed=stochastic_seed,
                        tag=variant,
                    )
                )
    simulated = run_sweep(cells, scale, jobs=jobs, cache=cache)

    points: List[FidelityPoint] = []
    index = 0
    for workers in scale.fidelity_worker_counts:
        for load in loads:
            expectation = expectations[(workers, load)]
            points.append(
                FidelityPoint(
                    variant="expectation",
                    num_workers=workers,
                    load_qps=load,
                    accuracy=expectation.expected_accuracy,
                    violation_rate=expectation.expected_violation_rate,
                )
            )
            for _ in range(2):
                cell, point = cells[index], simulated[index]
                index += 1
                points.append(
                    FidelityPoint(
                        variant=cell.tag,
                        num_workers=workers,
                        load_qps=load,
                        accuracy=point.accuracy,
                        violation_rate=point.violation_rate,
                    )
                )
    return Fig7Result(points=tuple(points))


def render_fig7(result: Fig7Result) -> str:
    """ASCII rendition: accuracy and violation tables per worker count."""
    blocks: List[str] = ["Figure 7 — expectation vs simulation vs implementation"]
    worker_counts = sorted({p.num_workers for p in result.points})
    for workers in worker_counts:
        loads = sorted(
            {p.load_qps for p in result.points if p.num_workers == workers}
        )
        acc_rows, viol_rows = [], []
        for load in loads:
            acc_row: List[object] = [f"{load:g}"]
            viol_row: List[object] = [f"{load:g}"]
            for variant in VARIANTS:
                match = [
                    p
                    for p in result.points
                    if p.num_workers == workers
                    and p.load_qps == load
                    and p.variant == variant
                ]
                acc_row.append(f"{match[0].accuracy * 100:.2f}%" if match else "-")
                viol_row.append(
                    f"{match[0].violation_rate * 100:.3f}%" if match else "-"
                )
            acc_rows.append(acc_row)
            viol_rows.append(viol_row)
        blocks.append(
            format_table(
                ["load (QPS)"] + list(VARIANTS),
                acc_rows,
                title=f"\n{workers} workers — accuracy",
            )
        )
        blocks.append(
            format_table(
                ["load (QPS)"] + list(VARIANTS),
                viol_rows,
                title=f"\n{workers} workers — SLO violation rate",
            )
        )
    return "\n".join(blocks)
