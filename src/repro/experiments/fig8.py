"""Figure 8: scaling to many models (§7.3.2).

Compares RAMSIS and ModelSwitching with the original 9 Pareto models
(``M = 9``) versus a synthetic 60-model superset built by interpolating the
Pareto front in 0.5 % accuracy steps.  The paper's insight, reproduced
here: RAMSIS gains almost nothing from more models — its fine-grained
per-batch decisions already emulate a dense model set — while
ModelSwitching improves markedly because it is stuck with a single model
per load level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.arrivals.traces import LoadTrace
from repro.experiments.reporting import format_table
from repro.experiments.runner import MethodPoint
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import SweepCell, run_sweep
from repro.experiments.tasks import TaskSpec, image_task
from repro.profiles.models import ModelSet
from repro.profiles.zoo import build_synthetic_model_set

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.cache import PolicyCache

__all__ = ["Fig8Result", "run_fig8", "render_fig8"]


@dataclass(frozen=True)
class Fig8Result:
    """Cells keyed by (method, model count, load)."""

    points: Tuple[Tuple[str, int, MethodPoint], ...]

    def series(self, method: str, model_count: int) -> List[Tuple[float, float]]:
        """(load, accuracy) pairs for one line (plottable only)."""
        return [
            (p.load_qps or 0.0, p.accuracy)
            for label, count, p in self.points
            if label == method and count == model_count and p.plottable
        ]


def run_fig8(
    scale: Optional[ExperimentScale] = None,
    task: Optional[TaskSpec] = None,
    methods: Sequence[str] = ("RAMSIS", "MS"),
    synthetic_count: int = 60,
    seed: int = 19,
    jobs: Optional[int] = None,
    cache: Optional["PolicyCache"] = None,
) -> Fig8Result:
    """Execute the model-count sensitivity sweep.

    ``jobs > 1`` fans the cells across processes (identical points, see
    :mod:`repro.experiments.sweep`); ``cache`` shares solved policies.
    """
    scale = scale or ExperimentScale.default()
    task = task or image_task()
    slo = task.slos_ms[0]
    workers = scale.many_model_workers

    low = task.model_set.pareto_front()
    high = build_synthetic_model_set(task.model_set, target_count=synthetic_count)
    model_sets: List[Tuple[int, ModelSet]] = [(len(low), low), (len(high), high)]

    cells: List[SweepCell] = []
    labels: List[Tuple[str, int]] = []
    for count, models in model_sets:
        spec = TaskSpec(name=task.name, model_set=models, slos_ms=task.slos_ms)
        for load in scale.constant_loads_qps:
            trace = LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"f8-{load:g}"
            )
            for method in methods:
                cells.append(
                    SweepCell(
                        method=method,
                        task=spec,
                        slo_ms=slo,
                        num_workers=workers,
                        trace=trace,
                        seed=seed,
                        oracle_load=True,
                        model_set=models,
                        tag=f"M={count}",
                    )
                )
                labels.append((method, count))
    results = run_sweep(cells, scale, jobs=jobs, cache=cache)
    points = [
        (method, count, point)
        for (method, count), point in zip(labels, results)
    ]
    return Fig8Result(points=tuple(points))


def render_fig8(result: Fig8Result) -> str:
    """ASCII rendition: accuracy per (method, model count) over load."""
    blocks: List[str] = ["Figure 8 — model-count sensitivity (M=9 vs M=60)"]
    combos = sorted({(m, c) for m, c, _ in result.points})
    loads = sorted({p.load_qps for _, _, p in result.points})
    headers = ["load (QPS)"] + [f"{m} M={c}" for m, c in combos]
    rows = []
    for load in loads:
        row: List[object] = [f"{load:g}"]
        for m, c in combos:
            match = [
                p
                for mm, cc, p in result.points
                if mm == m and cc == c and p.load_qps == load
            ]
            if match and match[0].plottable:
                row.append(f"{match[0].accuracy * 100:.2f}%")
            elif match:
                row.append(f"({match[0].violation_rate * 100:.0f}% viol)")
            else:
                row.append("-")
        rows.append(row)
    blocks.append(format_table(headers, rows))
    # Headline deltas: gain from M=9 -> M=60 per method.
    for method in sorted({m for m, _, _ in result.points}):
        counts = sorted({c for m, c, _ in result.points if m == method})
        if len(counts) == 2:
            low_series = dict(result.series(method, counts[0]))
            high_series = dict(result.series(method, counts[1]))
            common = sorted(set(low_series) & set(high_series))
            if common:
                gain = sum(high_series[x] - low_series[x] for x in common) / len(
                    common
                )
                blocks.append(
                    f"{method}: average accuracy gain from M={counts[0]} to "
                    f"M={counts[1]}: {gain * 100:.2f}%"
                )
    return "\n".join(blocks)
