"""Parallel experiment sweeps.

Every evaluation figure is a grid of independent ``run_method`` cells —
(method, task, SLO, workers, workload, seed) — so figures fan out across a
``ProcessPoolExecutor`` the same way the policy bank does
(:meth:`repro.core.generator.PolicyGenerator.generate_many`):

- **Deterministic positional collection.**  Cells are enumerated in the
  figure's nested-loop order, submitted in that order, and results are
  placed back positionally.  A parallel sweep therefore returns the exact
  same :class:`~repro.experiments.runner.MethodPoint` tuple as a serial
  one, regardless of which worker finishes first — every cell runs the
  same ``run_method`` code path on the same seeded arrival realization.
- **Shared solved policies.**  Passing a persistent
  :class:`repro.cache.PolicyCache` gives all workers a common disk layer:
  the first process to solve a policy cell publishes it and every later
  lookup (same config, same tolerance) restores the artifact instead of
  re-solving.  Workers receive only the cache *directory* and rebuild the
  handle locally, so nothing unpicklable crosses the process boundary.
- **Observability.**  Submit/collect progress and per-cell spans appear on
  the tracer's ``sweep`` track, mirroring the ``policy_bank`` track — and
  with a tracer, registry, or ``run_dir`` present, the cells themselves
  stay instrumented across the process boundary: workers record into
  per-process shards that are merged back into the caller's tracer and
  registry after the pool drains (see :mod:`repro.obs.aggregate`).

:class:`SweepCell` is deliberately a plain frozen dataclass of picklable
leaves (task spec, trace, scalars).  Stochastic execution latency is
carried as a seed (``stochastic_seed``) rather than a live
:class:`~repro.sim.latency_model.StochasticLatency` instance so a worker
process always constructs a fresh, deterministically-seeded RNG.
"""

from __future__ import annotations

import shutil
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.arrivals.traces import LoadTrace
from repro.experiments.runner import MethodPoint, run_method
from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import TaskSpec
from repro.obs.aggregate import (
    MergedRun,
    init_worker_obs,
    merge_run_dir,
    new_run_dir,
    worker_obs,
    write_merged_artifacts,
)
from repro.obs.trace import NULL_TRACER, Tracer
from repro.profiles.models import ModelSet
from repro.sim.latency_model import StochasticLatency

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.cache import PolicyCache
    from repro.obs.attribution import LatencyAttributor
    from repro.obs.metrics import MetricsRegistry

__all__ = ["SweepCell", "run_cell", "run_sweep"]


@dataclass(frozen=True)
class SweepCell:
    """One independent evaluation cell of a figure/table sweep.

    ``tag`` is an opaque caller label carried through untouched (e.g. the
    Fig. 7 variant name or the Fig. 8 model count) so drivers can
    re-associate positional results without parallel bookkeeping lists.
    """

    method: str
    task: TaskSpec
    slo_ms: float
    num_workers: int
    trace: LoadTrace
    seed: int = 11
    oracle_load: bool = False
    #: When set, execution latency is stochastic (Fig. 7's
    #: "implementation" variant) with this RNG seed.
    stochastic_seed: Optional[int] = None
    #: Model-set override (Fig. 8 swaps in the synthetic 60-model set).
    model_set: Optional[ModelSet] = None
    tag: str = ""


def run_cell(
    cell: SweepCell,
    scale: ExperimentScale,
    cache: Optional["PolicyCache"] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional["MetricsRegistry"] = None,
    attributor: Optional["LatencyAttributor"] = None,
) -> MethodPoint:
    """Execute one cell — the single code path serial and parallel share."""
    latency_model = (
        None
        if cell.stochastic_seed is None
        else StochasticLatency(seed=cell.stochastic_seed)
    )
    return run_method(
        cell.method,
        cell.task,
        cell.slo_ms,
        cell.num_workers,
        cell.trace,
        scale,
        seed=cell.seed,
        oracle_load=cell.oracle_load,
        latency_model=latency_model,
        model_set=cell.model_set,
        tracer=tracer,
        registry=registry,
        cache=cache,
        attributor=attributor,
    )


def _cell_label(cell: SweepCell) -> str:
    parts = [cell.method, cell.task.name, f"slo={cell.slo_ms:g}"]
    parts.append(f"K={cell.num_workers}")
    if len(cell.trace.qps) == 1:
        parts.append(f"load={cell.trace.qps[0]:g}")
    if cell.tag:
        parts.append(cell.tag)
    return " ".join(parts)


def _pool_cell(
    payload: Tuple[int, SweepCell, ExperimentScale, Optional[str], bool]
) -> MethodPoint:
    """Worker-process entry: rebuild the cache handle, run the cell.

    With observability shipping on, the cell runs against this worker's
    shard tracer/registry (installed by the pool initializer), stamped
    with the cell index so the parent can merge shards back into serial
    order, and flushes the shard after the cell completes.
    """
    seq, cell, scale, cache_dir, ship = payload
    obs = worker_obs() if ship else None
    tracer: Optional[Tracer] = None
    registry: Optional["MetricsRegistry"] = None
    if obs is not None:
        obs.tracer.set_sequence(seq)
        # The attributor tap forwards every record to the shard verbatim
        # while folding a live per-worker attribution view; flush() at the
        # end of the task publishes it for ``ramsis top``.
        tracer = obs.attributor if obs.attributor is not None else obs.tracer
        registry = obs.registry
    cache: Optional["PolicyCache"] = None
    if cache_dir is not None:
        from repro.cache import PolicyCache

        cache = PolicyCache(directory=cache_dir, registry=registry, tracer=tracer)
    try:
        return run_cell(cell, scale, cache=cache, tracer=tracer, registry=registry)
    finally:
        if obs is not None:
            obs.flush()


def run_sweep(
    cells: Sequence[SweepCell],
    scale: ExperimentScale,
    jobs: Optional[int] = None,
    cache: Optional[Union["PolicyCache", str, "Path"]] = None,
    tracer: Optional[Tracer] = None,
    registry: Optional["MetricsRegistry"] = None,
    run_dir: Optional[Union[str, "Path"]] = None,
    attributor: Optional["LatencyAttributor"] = None,
) -> List[MethodPoint]:
    """Run every cell; results come back in the order of ``cells``.

    ``jobs > 1`` fans the cells out across a ``ProcessPoolExecutor``;
    otherwise they run serially in this process.  Both paths return
    identical points (see module docstring).  ``cache`` may be a
    :class:`repro.cache.PolicyCache` or a directory path; parallel workers
    always receive the directory and open their own handle.

    ``tracer`` and ``registry`` instrument **both** paths.  Serially they
    are threaded straight into every cell.  In parallel they cross the
    process boundary by *shipping*: each pool worker records into a
    JSONL shard + private registry under a per-run directory
    (:mod:`repro.obs.aggregate`), and after the pool drains the shards
    are merged back into the caller's ``tracer``/``registry`` in serial
    cell order, with worker tracks renamed ``w<idx>/<track>`` —
    ``reconstruct_metrics`` on a traced parallel sweep equals the serial
    traced run exactly.  ``run_dir`` pins the shard directory (merged
    artifacts are then written there for ``ramsis report``); without it a
    temporary directory is used and removed after the merge.  One
    ``run_dir`` serves one ``run_sweep`` call — reusing it across calls
    would mix shards from different pools.

    ``attributor`` streams tail-latency attribution
    (:mod:`repro.obs.attribution`).  Serially it is attached to every
    cell's engine directly; in parallel it is folded from the merged
    shard records after the pool drains — the merge replays in serial
    ``(seq, worker, n)`` cell order, so both paths produce exactly equal
    attribution tables (asserted in the test suite).
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    cells = list(cells)
    results: List[Optional[MethodPoint]] = [None] * len(cells)

    cache_obj: Optional["PolicyCache"] = None
    cache_dir: Optional[str] = None
    if cache is not None:
        from repro.cache import PolicyCache

        if isinstance(cache, PolicyCache):
            cache_obj = cache
        else:
            cache_obj = PolicyCache(directory=cache)
        cache_dir = str(cache_obj.directory)

    parallel = jobs is not None and jobs > 1 and len(cells) > 1
    if not parallel:
        for i, cell in enumerate(cells):
            with tracer.span(
                f"cell {_cell_label(cell)}",
                track="sweep",
                args={"index": i, "method": cell.method},
            ):
                results[i] = run_cell(
                    cell,
                    scale,
                    cache=cache_obj,
                    tracer=tracer,
                    registry=registry,
                    attributor=attributor,
                )
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    ship = (
        tracer.enabled
        or registry is not None
        or run_dir is not None
        or attributor is not None
    )
    owns_run_dir = False
    shard_dir: Optional[Path] = None
    if ship:
        if run_dir is None:
            shard_dir = new_run_dir()
            owns_run_dir = True
        else:
            shard_dir = Path(run_dir)
            shard_dir.mkdir(parents=True, exist_ok=True)

    pool_size = min(jobs, len(cells))
    pool_kwargs = {}
    if shard_dir is not None:
        pool_kwargs = {
            "initializer": init_worker_obs,
            "initargs": (str(shard_dir),),
        }
    with ProcessPoolExecutor(max_workers=pool_size, **pool_kwargs) as pool:
        with tracer.span(
            "sweep_submit",
            track="sweep",
            args={"cells": len(cells), "processes": pool_size},
        ):
            futures = [
                (i, cell, pool.submit(_pool_cell, (i, cell, scale, cache_dir, ship)))
                for i, cell in enumerate(cells)
            ]
        with tracer.span(
            "sweep_collect", track="sweep", args={"cells": len(cells)}
        ):
            # Collect in submit order: placement is positional, so the
            # returned point ordering is deterministic regardless of which
            # worker finishes first.
            for i, cell, future in futures:
                with tracer.span(
                    f"cell {_cell_label(cell)}",
                    track="sweep",
                    args={"index": i, "method": cell.method},
                ):
                    results[i] = future.result()
    if shard_dir is not None:
        merged: MergedRun = merge_run_dir(
            shard_dir,
            tracer=tracer if tracer.enabled else None,
            registry=registry,
        )
        if attributor is not None:
            # The merged tracer replays in serial cell order, so folding
            # it here produces tables exactly equal to a serial run with
            # the attributor attached to every cell.
            attributor.replay_tracer(merged.tracer)
        if owns_run_dir:
            shutil.rmtree(shard_dir, ignore_errors=True)
        else:
            write_merged_artifacts(merged, shard_dir)
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
