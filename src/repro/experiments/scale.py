"""Cluster-scale presets (DESIGN.md §6).

The paper's evaluation runs up to 100 workers at up to 4,000 QPS over a
five-minute trace (554,395 queries) — for every (method, SLO, task, worker
count) cell.  A pure-Python reproduction sweeps dozens of such cells, so the
default preset scales the cluster down by ``cluster_scale`` while keeping
**per-worker load identical**: 6 workers at 240 QPS see the same per-worker
regime as 60 workers at 2,400 QPS, and the per-worker MDP depends on load
only through the per-worker arrival process.

Three presets:

- :meth:`ExperimentScale.smoke` — seconds; used by the test suite;
- :meth:`ExperimentScale.default` — minutes per figure; used by the
  benchmarks (1/10th cluster);
- :meth:`ExperimentScale.paper` — the paper's full parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

__all__ = ["ExperimentScale"]


@dataclass(frozen=True)
class ExperimentScale:
    """All scale-dependent experiment parameters.

    ``cluster_scale`` divides both worker counts and trace/constant loads,
    so ``load / workers`` matches the paper at every point.
    """

    name: str
    cluster_scale: float
    #: Fig. 5 / Tables 3: worker sweep (paper: 20..100 step 10).
    worker_counts: Tuple[int, ...]
    #: Fig. 6 / Table 4: constant loads in QPS (paper: 400..4000 step 400)
    #: — already divided by ``cluster_scale``.
    constant_loads_qps: Tuple[float, ...]
    #: Fig. 6: fixed worker counts (paper: image 60, text 20).
    constant_workers_image: int
    constant_workers_text: int
    #: Trace duration in seconds (paper: 300).
    trace_duration_s: float
    #: Constant-load run duration in seconds (paper: 30).
    constant_duration_s: float
    #: FLD resolution for policy generation (paper: D = 100).
    fld_resolution: int
    #: Number of load levels in a pre-computed policy set.
    policy_grid_points: int
    #: Adjacent expected-accuracy refinement threshold (paper: 1%).
    policy_accuracy_gap: float
    #: ModelSwitching offline profiling: per-cell duration and grid points.
    ms_profile_duration_s: float
    ms_profile_grid_points: int
    #: Supported batch-size cap (paper observed B_w = 29, used N_w = 32).
    max_batch_size: int
    #: Fig. 7 fidelity experiment worker counts (paper: 40, 60, 80).
    fidelity_worker_counts: Tuple[int, ...]
    #: Fig. 8 many-model experiment worker count (paper: 100).
    many_model_workers: int

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @staticmethod
    def paper() -> "ExperimentScale":
        """The paper's full-scale parameters (§7)."""
        return ExperimentScale(
            name="paper",
            cluster_scale=1.0,
            worker_counts=tuple(range(20, 101, 10)),
            constant_loads_qps=tuple(float(q) for q in range(400, 4001, 400)),
            constant_workers_image=60,
            constant_workers_text=20,
            trace_duration_s=300.0,
            constant_duration_s=30.0,
            fld_resolution=100,
            policy_grid_points=20,
            policy_accuracy_gap=0.01,
            ms_profile_duration_s=30.0,
            ms_profile_grid_points=37,  # 400..4000 step 100
            max_batch_size=32,
            fidelity_worker_counts=(40, 60, 80),
            many_model_workers=100,
        )

    @staticmethod
    def default() -> "ExperimentScale":
        """1/10th cluster, same per-worker load — the benchmark preset."""
        return ExperimentScale(
            name="default",
            cluster_scale=10.0,
            worker_counts=(2, 3, 4, 5, 6, 7, 8, 9, 10),
            constant_loads_qps=tuple(float(q) / 10.0 for q in range(400, 4001, 400)),
            constant_workers_image=6,
            constant_workers_text=2,
            trace_duration_s=120.0,
            constant_duration_s=30.0,
            fld_resolution=50,
            policy_grid_points=8,
            policy_accuracy_gap=0.01,
            ms_profile_duration_s=10.0,
            ms_profile_grid_points=10,
            max_batch_size=32,
            fidelity_worker_counts=(4, 6, 8),
            many_model_workers=10,
        )

    @staticmethod
    def smoke() -> "ExperimentScale":
        """Tiny configuration for the test suite (seconds end to end)."""
        return ExperimentScale(
            name="smoke",
            cluster_scale=40.0,
            worker_counts=(1, 2),
            constant_loads_qps=(20.0, 50.0, 80.0),
            constant_workers_image=2,
            constant_workers_text=1,
            trace_duration_s=20.0,
            constant_duration_s=8.0,
            fld_resolution=15,
            policy_grid_points=3,
            policy_accuracy_gap=0.05,
            ms_profile_duration_s=3.0,
            ms_profile_grid_points=4,
            max_batch_size=16,
            fidelity_worker_counts=(1, 2),
            many_model_workers=2,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def scaled_trace_qps(self, paper_qps: float) -> float:
        """A paper-scale QPS value translated to this preset's cluster."""
        return paper_qps / self.cluster_scale

    def with_overrides(self, **kwargs) -> "ExperimentScale":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)
