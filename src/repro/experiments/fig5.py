"""Figure 5: production-trace evaluation (§7.1).

Accuracy (per satisfied query) versus number of workers on the Twitter
trace, for RAMSIS, Jellyfish+, and ModelSwitching, per task and SLO.  Only
cells with a latency SLO violation rate below 5 % are plotted; Table 3
(``repro.experiments.tables``) reports the violation rates of the same
runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.arrivals.traces import LoadTrace, synthesize_twitter_trace
from repro.experiments.reporting import format_table, render_comparison
from repro.experiments.runner import METHODS, MethodPoint
from repro.experiments.scale import ExperimentScale
from repro.experiments.sweep import SweepCell, run_sweep
from repro.experiments.tasks import TaskSpec, image_task, text_task

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.cache import PolicyCache

__all__ = ["Fig5Result", "run_fig5", "render_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """All cells of the production-trace experiment."""

    points: Tuple[MethodPoint, ...]
    trace_name: str

    def series(
        self, task: str, slo_ms: float, method: str
    ) -> List[Tuple[int, float]]:
        """(workers, accuracy) pairs of one plotted line (plottable only)."""
        return [
            (p.num_workers, p.accuracy)
            for p in self.points
            if p.task == task
            and p.slo_ms == slo_ms
            and p.method == method
            and p.plottable
        ]


def production_trace(scale: ExperimentScale) -> LoadTrace:
    """The (synthesized) Twitter trace at this preset's cluster scale."""
    trace = synthesize_twitter_trace(duration_s=scale.trace_duration_s)
    if scale.cluster_scale != 1.0:
        trace = trace.scaled(1.0 / scale.cluster_scale)
    return trace


def run_fig5(
    scale: Optional[ExperimentScale] = None,
    tasks: Optional[Sequence[TaskSpec]] = None,
    methods: Sequence[str] = METHODS,
    slos_per_task: Optional[int] = None,
    seed: int = 11,
    jobs: Optional[int] = None,
    cache: Optional["PolicyCache"] = None,
) -> Fig5Result:
    """Execute the §7.1 sweep: methods x worker counts x SLOs x tasks.

    ``slos_per_task`` limits the SLO grid (1 keeps only the lowest SLO,
    the benchmark default; ``None`` keeps the paper's three).  ``jobs > 1``
    fans the cells across processes (identical points, see
    :mod:`repro.experiments.sweep`); ``cache`` shares solved policies.
    """
    scale = scale or ExperimentScale.default()
    tasks = tasks if tasks is not None else (image_task(), text_task())
    trace = production_trace(scale)
    cells: List[SweepCell] = []
    for task in tasks:
        slos = task.slos_ms[:slos_per_task] if slos_per_task else task.slos_ms
        for slo in slos:
            for workers in scale.worker_counts:
                for method in methods:
                    cells.append(
                        SweepCell(
                            method=method,
                            task=task,
                            slo_ms=slo,
                            num_workers=workers,
                            trace=trace,
                            seed=seed,
                        )
                    )
    points = run_sweep(cells, scale, jobs=jobs, cache=cache)
    return Fig5Result(points=tuple(points), trace_name=trace.name)


def render_fig5(result: Fig5Result) -> str:
    """ASCII rendition: one table per (task, SLO), plus headline stats."""
    blocks: List[str] = [f"Figure 5 — production trace ({result.trace_name})"]
    combos = sorted({(p.task, p.slo_ms) for p in result.points})
    for task, slo in combos:
        cells = [p for p in result.points if p.task == task and p.slo_ms == slo]
        workers = sorted({p.num_workers for p in cells})
        methods = sorted({p.method for p in cells})
        rows = []
        for w in workers:
            row: List[object] = [w]
            for m in methods:
                match = [p for p in cells if p.num_workers == w and p.method == m]
                if match and match[0].plottable:
                    row.append(f"{match[0].accuracy * 100:.2f}%")
                elif match:
                    row.append(f"({match[0].violation_rate * 100:.0f}% viol)")
                else:
                    row.append("-")
            rows.append(row)
        blocks.append(
            format_table(
                ["workers"] + methods,
                rows,
                title=f"\n[{task}] SLO = {slo:g} ms — accuracy per satisfied query",
            )
        )
    blocks.append("")
    blocks.append(render_comparison(result.points, ["MS", "JF"]))
    return "\n".join(blocks)
