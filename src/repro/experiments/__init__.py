"""Experiment harness: regenerates every table and figure of the paper.

Each module reproduces one evaluation artifact (see DESIGN.md §4 for the
full index):

- :mod:`repro.experiments.scale` — cluster-scale presets.  Defaults run
  paper-shaped workloads on a 10x smaller cluster with identical per-worker
  load (DESIGN.md §6); ``ExperimentScale.paper()`` restores full scale.
- :mod:`repro.experiments.tasks` — the image / text task specifications
  (model sets, SLO grids) of §7.
- :mod:`repro.experiments.runner` — shared machinery: policy-set
  construction, ModelSwitching offline profiling, method execution.
- :mod:`repro.experiments.sweep` — parallel sweep engine: fans a figure's
  independent cells across processes with deterministic result ordering
  and a shared persistent policy cache.
- :mod:`repro.experiments.fig5` .. :mod:`repro.experiments.fig8`,
  :mod:`repro.experiments.appendix` — per-figure drivers.
- :mod:`repro.experiments.tables` — Table 2 (policy-generation runtimes)
  and Tables 3/4 (violation-rate grids).
- :mod:`repro.experiments.reporting` — ASCII rendering plus the paper's
  headline statistics (accuracy increase, resource savings).
"""

from repro.experiments.scale import ExperimentScale
from repro.experiments.tasks import TaskSpec, image_task, text_task
from repro.experiments.runner import (
    MethodPoint,
    build_policy_set,
    build_ramsis_policy,
    build_ramsis_result,
    modelswitching_table,
    run_method,
)
from repro.experiments.sweep import SweepCell, run_cell, run_sweep
from repro.experiments.reporting import (
    accuracy_increase_summary,
    format_table,
    resource_savings_summary,
)

__all__ = [
    "ExperimentScale",
    "TaskSpec",
    "image_task",
    "text_task",
    "MethodPoint",
    "SweepCell",
    "build_policy_set",
    "build_ramsis_policy",
    "build_ramsis_result",
    "modelswitching_table",
    "run_cell",
    "run_method",
    "run_sweep",
    "format_table",
    "accuracy_increase_summary",
    "resource_savings_summary",
]
