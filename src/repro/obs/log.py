"""Package-wide logging setup.

All modules obtain loggers via :func:`get_logger` (children of the
``repro`` root logger); the CLI calls :func:`configure` once with the
verbosity derived from ``-v``/``-q`` flags.  Log lines go to **stderr**
so stdout stays reserved for the human-facing result tables the artifact
scripts print.

Library use never configures handlers implicitly — importing ``repro``
leaves the root logger untouched (standard library-logging etiquette).
"""

from __future__ import annotations

import logging
import sys
from typing import IO, Optional

__all__ = ["get_logger", "configure", "ROOT_LOGGER_NAME"]

ROOT_LOGGER_NAME = "repro"

#: Marker attribute identifying handlers installed by :func:`configure`,
#: so reconfiguration replaces them instead of stacking duplicates.
_HANDLER_TAG = "_repro_obs_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure(verbosity: int = 0, stream: Optional[IO[str]] = None) -> logging.Logger:
    """Install a stream handler on the ``repro`` root logger.

    ``verbosity``: negative → WARNING (quiet), 0 → INFO (default),
    positive → DEBUG.  Idempotent — calling again replaces the handler
    (and its level), so tests and long-lived processes can reconfigure.
    """
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        level = logging.INFO
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    if verbosity > 0:
        formatter = logging.Formatter("%(levelname)s %(name)s: %(message)s")
    else:
        formatter = logging.Formatter("%(message)s")
    handler.setFormatter(formatter)
    setattr(handler, _HANDLER_TAG, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root
