"""Tail-latency attribution: per-phase decomposition, blame, burn rate.

The guarantee machinery answers *whether* P(latency <= SLO) holds; this
module answers *why* it stopped holding.  :class:`LatencyAttributor` is a
:class:`~repro.obs.trace.ForwardingTracer` that folds the per-query
lifecycle stream the simulator and runtime already emit (``serve`` spans,
``service_start`` / ``completion`` instants) into three streaming
products:

- **Phase tables.**  Every query's end-to-end latency is decomposed into
  *admission/queue wait* (arrival to dispatch), *batch wait* (dispatch
  latency beyond the queue-wait floor — structurally zero in the
  discrete-event engines, where batches form instantaneously, and kept
  in the schema for the wall-clock runtime), *service* (the residual),
  and *drop slack* (the whole latency of a dropped query).  The split is
  exact by construction: the service residual is corrected by at most
  one ulp so ``queue + batch + service + drop == response`` holds as
  floats for every query (the acceptance test sums them with ``==``).
  Phases aggregate per (SLO class, model, worker) row with mergeable
  sums, so parallel-sweep replays fold to tables float-identical to a
  serial run's.
- **Model-choice blame.**  Each serve decision is charged the profiled
  latency gap between the chosen model and the fastest model at that
  batch size (``profile.latency_ms(batch)`` — the deterministic p95 the
  selectors plan with).  Without a bound model set the gap falls back to
  the fastest *observed* mean serve duration per (worker, batch).  Blame
  is computed from the accumulated decision table at reporting time, so
  it is independent of observation order.
- **Burn rate + exemplars.**  Multi-window rolling violation rates
  (default 1k/10k completions) divided by the violation budget give an
  SLO burn rate per window; crossing the threshold emits an
  :class:`~repro.obs.audit.AuditAlert` (kind ``slo-burn-rate``) through
  the same callback/alert-stream plumbing as the guarantee auditor and
  publishes ``audit_burn_rate`` / ``audit_burn_alerts_total`` metrics.
  Completions above a rolling tail quantile (default p99 of a streaming
  histogram) are retained as full span-chain exemplars, capped at a
  fixed count, keeping the worst offenders inspectable after the run.

Attachment points:

- ``SimulationConfig(attributor=...)`` — both simulator engines call the
  ``observe_*`` hooks directly with the same float expressions, so fast
  and reference runs produce identical attribution (and ``engine="auto"``
  keeps using the fast path: attribution alone does not force the
  reference loop).
- As a forwarding tracer (``tracer=LatencyAttributor(inner=...)``) for
  the wall-clock runtime or any recorded stream.
- Offline: :func:`attribution_from_tracer` replays a
  :class:`~repro.obs.trace.RecordingTracer` (e.g. the merged tracer of a
  parallel sweep, whose ``(seq, worker, n)`` replay order equals serial
  cell order — the parallel == serial contract), and
  :func:`attribution_from_jsonl` folds a ``merged.jsonl`` /
  ``events.jsonl`` file.
"""

from __future__ import annotations

import heapq
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.audit import AuditAlert
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import RecordingTracer, Tracer, ForwardingTracer

__all__ = [
    "PhaseBreakdown",
    "AttributionRow",
    "BurnWindow",
    "LatencyAttributor",
    "attribution_from_tracer",
    "attribution_from_jsonl",
    "exact_phase_split",
]

#: Bump when the ``to_json_dict`` layout changes incompatibly.
ATTRIBUTION_SCHEMA = 1

#: Model label for dropped queries (mirrors the simulator's sentinel).
DROPPED_MODEL = "<dropped>"

_SERVE = "serve"
_SERVICE_START = "service_start"
_COMPLETION = "completion"


def exact_phase_split(response_ms: float, wait_ms: float) -> Tuple[float, float]:
    """Split ``response`` into ``(wait, service)`` with an exact float sum.

    The naive residual ``service = response - wait`` leaves
    ``wait + service != response`` for a few percent of double pairs
    (the subtraction rounds).  Recomputing the wait as the residual of
    the residual moves it by at most one ulp and makes the pair sum back
    exactly — empirically without exception, with a bounded fixpoint
    loop as a guard.  Deterministic in (response, wait), so every replay
    path reproduces the same split.
    """
    service = response_ms - wait_ms
    if wait_ms + service == response_ms:
        return wait_ms, service
    for _ in range(4):
        wait_ms = response_ms - service
        service = response_ms - wait_ms
        if wait_ms + service == response_ms:
            break
    return wait_ms, service


@dataclass(frozen=True)
class PhaseBreakdown:
    """One query's exact latency decomposition.

    ``queue_wait_ms + batch_wait_ms + service_ms + drop_ms ==
    response_ms`` holds exactly (see :func:`exact_phase_split`).
    """

    query_id: int
    worker: int
    model: str
    queue_wait_ms: float
    batch_wait_ms: float
    service_ms: float
    drop_ms: float
    response_ms: float
    satisfied: bool
    dropped: bool
    t_ms: float = 0.0

    @property
    def phase_sum_ms(self) -> float:
        """Left-to-right sum of the four phases (== ``response_ms``)."""
        return (
            self.queue_wait_ms + self.batch_wait_ms + self.service_ms
            + self.drop_ms
        )


@dataclass
class AttributionRow:
    """Streaming aggregate for one (SLO class, model, worker) cell."""

    slo: str
    model: str
    worker: int
    queries: int = 0
    satisfied: int = 0
    dropped: int = 0
    violations: int = 0
    queue_wait_ms: float = 0.0
    batch_wait_ms: float = 0.0
    service_ms: float = 0.0
    drop_ms: float = 0.0
    response_ms: float = 0.0
    #: Served-but-late excess beyond the SLO (informational; not part of
    #: the exact phase partition).  Zero when the SLO is unknown.
    violation_excess_ms: float = 0.0

    def add(self, phases: PhaseBreakdown, excess_ms: float) -> None:
        """Fold one query's breakdown into the row."""
        self.queries += 1
        if phases.satisfied:
            self.satisfied += 1
        else:
            self.violations += 1
        if phases.dropped:
            self.dropped += 1
        self.queue_wait_ms += phases.queue_wait_ms
        self.batch_wait_ms += phases.batch_wait_ms
        self.service_ms += phases.service_ms
        self.drop_ms += phases.drop_ms
        self.response_ms += phases.response_ms
        self.violation_excess_ms += excess_ms

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-ready row (blame fields are attached by the attributor)."""
        return {
            "slo": self.slo,
            "model": self.model,
            "worker": self.worker,
            "queries": self.queries,
            "satisfied": self.satisfied,
            "dropped": self.dropped,
            "violations": self.violations,
            "queue_wait_ms": self.queue_wait_ms,
            "batch_wait_ms": self.batch_wait_ms,
            "service_ms": self.service_ms,
            "drop_ms": self.drop_ms,
            "response_ms": self.response_ms,
            "violation_excess_ms": self.violation_excess_ms,
        }


class BurnWindow:
    """Rolling violation window over the last ``size`` completions."""

    __slots__ = ("size", "_ring", "_head", "_filled", "violations", "alerts", "_armed")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"burn window size must be >= 1, got {size}")
        self.size = size
        self._ring: List[bool] = [False] * size
        self._head = 0
        self._filled = 0
        self.violations = 0
        self.alerts = 0
        self._armed = True

    @property
    def count(self) -> int:
        """Completions currently covered (<= ``size``)."""
        return self._filled

    @property
    def full(self) -> bool:
        """Whether the window has seen at least ``size`` completions."""
        return self._filled == self.size

    @property
    def rate(self) -> float:
        """Violation fraction over the covered completions."""
        return self.violations / self._filled if self._filled else 0.0

    def push(self, violation: bool) -> None:
        """Fold one completion outcome into the ring."""
        if self._filled == self.size:
            if self._ring[self._head]:
                self.violations -= 1
        else:
            self._filled += 1
        self._ring[self._head] = violation
        if violation:
            self.violations += 1
        self._head += 1
        if self._head == self.size:
            self._head = 0

    def check_alert(self, burn: float, threshold: float) -> bool:
        """Hysteresis: fire once per excursion above ``threshold``."""
        if not self.full:
            return False
        if burn > threshold:
            if self._armed:
                self._armed = False
                self.alerts += 1
                return True
            return False
        self._armed = True
        return False


class LatencyAttributor(ForwardingTracer):
    """Streaming tail-latency attribution engine (see module docstring).

    ``slo_ms`` labels the rows and enables violation-excess tracking;
    ``models`` (any iterable of profiles with ``name`` and
    ``latency_ms(batch)``) switches blame to the profiled latency gap.
    ``violation_budget`` is the tolerated violation *rate* (e.g. the
    policy's ``1 - bound``); burn rate is the windowed violation rate
    divided by it.  ``alert_sink`` callables receive each
    :class:`~repro.obs.audit.AuditAlert` — pass an existing
    :meth:`GuaranteeAuditor.emit_alert <repro.obs.audit.GuaranteeAuditor>`
    to feed the auditor's alert stream.  Thread-safe: the wall-clock
    runtime's worker threads may call the hooks concurrently.
    """

    def __init__(
        self,
        slo_ms: Optional[float] = None,
        *,
        models: Optional[Iterable[Any]] = None,
        inner: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        burn_windows: Sequence[int] = (1000, 10000),
        burn_threshold: float = 1.0,
        violation_budget: Optional[float] = None,
        exemplar_quantile: float = 0.99,
        exemplar_capacity: int = 32,
        exemplar_warmup: int = 200,
        alert_sink: Optional[Callable[[AuditAlert], None]] = None,
        record_queries: bool = False,
    ) -> None:
        super().__init__(inner)
        self.slo_ms = float(slo_ms) if slo_ms is not None else None
        self._models = list(models) if models is not None else None
        self._registry = registry
        self._burn_threshold = float(burn_threshold)
        self._budget = float(violation_budget) if violation_budget else None
        self._windows = [BurnWindow(int(s)) for s in sorted(set(burn_windows))]
        self._exemplar_quantile = float(exemplar_quantile)
        self._exemplar_capacity = int(exemplar_capacity)
        self._exemplar_warmup = int(exemplar_warmup)
        self._alert_sinks: List[Callable[[AuditAlert], None]] = (
            [alert_sink] if alert_sink is not None else []
        )
        self._record_queries = record_queries
        self.breakdowns: List[PhaseBreakdown] = []

        self._lock = threading.RLock()
        #: (worker, query_id) -> (wait_ms, model, batch) awaiting completion.
        self._pending: Dict[Tuple[int, int], Tuple[float, str, int]] = {}
        self._rows: Dict[Tuple[str, int], AttributionRow] = {}
        #: (worker, model, batch) -> [decisions, exec-duration sum].
        self._decisions: Dict[Tuple[int, str, int], List[float]] = {}
        # Deterministic reservoir (seeded by name) -> reproducible
        # thresholds for a fixed completion order, every replay path.
        self._response_hist = Histogram("attribution_response_ms")
        #: Min-heap of (response_ms, order, chain) for top-K retention.
        self._exemplars: List[Tuple[float, int, Dict[str, Any]]] = []
        self._order = 0

        if registry is not None:
            self._m_queries = registry.counter(
                "attribution_queries_total",
                help="completions folded into the attribution tables",
            )
            self._m_drops = registry.counter(
                "attribution_drops_total", help="dropped queries attributed"
            )
            self._m_queue_wait = registry.histogram(
                "attribution_queue_wait_ms",
                help="admission/queue-wait phase per query",
            )
            self._m_service = registry.histogram(
                "attribution_service_ms", help="service phase per query"
            )
            self._m_burn = {
                w.size: registry.gauge(
                    "audit_burn_rate",
                    help="windowed violation rate over the violation budget",
                    labels={"window": str(w.size)},
                )
                for w in self._windows
            }
            self._m_burn_alerts = {
                w.size: registry.counter(
                    "audit_burn_alerts_total",
                    help="burn-rate threshold crossings",
                    labels={"window": str(w.size)},
                )
                for w in self._windows
            }
        else:
            self._m_queries = self._m_drops = None
            self._m_queue_wait = self._m_service = None
            self._m_burn = self._m_burn_alerts = {}

    # ------------------------------------------------------------------
    # Alert plumbing (GuaranteeAuditor-compatible)
    # ------------------------------------------------------------------
    def add_alert_callback(self, callback: Callable[[AuditAlert], None]) -> None:
        """Register a callback for burn-rate alerts."""
        self._alert_sinks.append(callback)

    def _alert(self, alert: AuditAlert) -> None:
        for sink in self._alert_sinks:
            sink(alert)

    # ------------------------------------------------------------------
    # Tracer tap: the forwarding-tracer attachment mode
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        track: str,
        start_ms: float,
        duration_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if name == _SERVE and args is not None:
            self.observe_decision(
                int(args.get("worker", _worker_from_track(track))),
                str(args.get("model", "")),
                int(args.get("batch", 1)),
                float(duration_ms),
            )
        self._inner.complete(name, track, start_ms, duration_ms, category, args)

    def instant(
        self,
        name: str,
        track: str,
        ts_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        # Events missing the lifecycle keys (older or foreign trace
        # schemas) are forwarded but not attributed.
        if args is not None:
            if name == _SERVICE_START and "query" in args and "wait_ms" in args:
                self.observe_service_start(
                    int(args["query"]),
                    _worker_from_track(track),
                    str(args.get("model", "")),
                    int(args.get("batch", 1)),
                    float(args["wait_ms"]),
                )
            elif name == _COMPLETION and "query" in args and "response_ms" in args:
                self.observe_completion(
                    int(args["query"]),
                    int(args.get("worker", _worker_from_track(track))),
                    str(args.get("model", "")),
                    float(args["response_ms"]),
                    bool(args.get("satisfied", False)),
                    t_ms=ts_ms,
                    dropped=bool(args.get("dropped", False)),
                )
        self._inner.instant(name, track, ts_ms, category, args)

    # ------------------------------------------------------------------
    # Direct hooks: the engine attachment mode
    # ------------------------------------------------------------------
    def observe_decision(
        self, worker: int, model: str, batch: int, exec_ms: float
    ) -> None:
        """Fold one serve decision (one batch dispatched)."""
        with self._lock:
            cell = self._decisions.get((worker, model, batch))
            if cell is None:
                self._decisions[(worker, model, batch)] = [1.0, exec_ms]
            else:
                cell[0] += 1.0
                cell[1] += exec_ms

    def observe_service_start(
        self, query_id: int, worker: int, model: str, batch: int, wait_ms: float
    ) -> None:
        """Record a query's dispatch: its queue wait is now known."""
        with self._lock:
            self._pending[(worker, query_id)] = (wait_ms, model, batch)

    def observe_completion(
        self,
        query_id: int,
        worker: int,
        model: str,
        response_ms: float,
        satisfied: bool,
        t_ms: float = 0.0,
        dropped: bool = False,
    ) -> None:
        """Fold one completed (or dropped) query into every aggregate."""
        with self._lock:
            pending = self._pending.pop((worker, query_id), None)
            if dropped:
                model = model or DROPPED_MODEL
                queue_wait = batch_wait = service = 0.0
                drop = response_ms
                batch = 0
            else:
                batch_wait = drop = 0.0
                if pending is not None:
                    wait_ms, p_model, batch = pending
                    if not model:
                        model = p_model
                    queue_wait, service = exact_phase_split(
                        response_ms, wait_ms
                    )
                else:
                    # No service_start seen (schema gap or truncated
                    # shard): the whole latency counts as service.
                    queue_wait = 0.0
                    service = response_ms
                    batch = 0
            phases = PhaseBreakdown(
                query_id=query_id,
                worker=worker,
                model=model,
                queue_wait_ms=queue_wait,
                batch_wait_ms=batch_wait,
                service_ms=service,
                drop_ms=drop,
                response_ms=response_ms,
                satisfied=satisfied,
                dropped=dropped,
                t_ms=t_ms,
            )
            excess = 0.0
            if not satisfied and self.slo_ms is not None:
                excess = max(0.0, response_ms - self.slo_ms)
            key = (model, worker)
            row = self._rows.get(key)
            if row is None:
                row = self._rows[key] = AttributionRow(
                    slo=self._slo_label(), model=model, worker=worker
                )
            row.add(phases, excess)
            if self._record_queries:
                self.breakdowns.append(phases)

            self._observe_burn(satisfied, t_ms)
            self._observe_exemplar(phases, batch)

            if self._m_queries is not None:
                self._m_queries.inc()
                if dropped:
                    self._m_drops.inc()
                else:
                    self._m_queue_wait.observe(queue_wait)
                    self._m_service.observe(service)

    # ------------------------------------------------------------------
    # Burn rate
    # ------------------------------------------------------------------
    def _observe_burn(self, satisfied: bool, t_ms: float) -> None:
        violation = not satisfied
        for window in self._windows:
            window.push(violation)
            burn = self._burn(window)
            gauge = self._m_burn.get(window.size)
            if gauge is not None:
                gauge.set(burn, t_ms=t_ms)
            if window.check_alert(burn, self._burn_threshold):
                counter = self._m_burn_alerts.get(window.size)
                if counter is not None:
                    counter.inc()
                detail = (
                    f"burn {burn:.3f} > {self._burn_threshold:.3f} over the "
                    f"last {window.size} queries "
                    f"({window.violations}/{window.size} violations"
                    + (
                        f", budget {self._budget:.4f})"
                        if self._budget is not None
                        else ")"
                    )
                )
                self._inner.instant(
                    "audit_burn",
                    "audit",
                    t_ms,
                    args={
                        "window": window.size,
                        "burn": burn,
                        "rate": window.rate,
                        "threshold": self._burn_threshold,
                    },
                )
                self._alert(AuditAlert("slo-burn-rate", t_ms, detail))

    def _burn(self, window: BurnWindow) -> float:
        rate = window.rate
        return rate / self._budget if self._budget else rate

    # ------------------------------------------------------------------
    # Exemplars
    # ------------------------------------------------------------------
    def _observe_exemplar(self, phases: PhaseBreakdown, batch: int) -> None:
        hist = self._response_hist
        threshold = None
        if hist.count >= self._exemplar_warmup:
            threshold = hist.quantile(self._exemplar_quantile)
        hist.observe(phases.response_ms)
        if threshold is None or phases.response_ms < threshold:
            return
        if self._exemplar_capacity < 1:
            return
        chain = {
            "query": phases.query_id,
            "worker": phases.worker,
            "model": phases.model,
            "batch": batch,
            "queue_wait_ms": phases.queue_wait_ms,
            "batch_wait_ms": phases.batch_wait_ms,
            "service_ms": phases.service_ms,
            "drop_ms": phases.drop_ms,
            "response_ms": phases.response_ms,
            "satisfied": phases.satisfied,
            "dropped": phases.dropped,
            "completed_ms": phases.t_ms,
            "arrival_ms": phases.t_ms - phases.response_ms,
            "threshold_ms": threshold,
        }
        self._order += 1
        entry = (phases.response_ms, self._order, chain)
        if len(self._exemplars) < self._exemplar_capacity:
            heapq.heappush(self._exemplars, entry)
        elif entry[:2] > self._exemplars[0][:2]:
            heapq.heapreplace(self._exemplars, entry)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _slo_label(self) -> str:
        return f"{self.slo_ms:g}" if self.slo_ms is not None else "-"

    def _blame_per_decision(self) -> Dict[Tuple[int, str, int], float]:
        """Per-(worker, model, batch) blame for one decision, >= 0.

        With a bound model set: the profiled p95 gap to the fastest
        model at that batch size (state-independent, like the planner's
        own latency table).  Without: the gap of the observed mean serve
        duration to the fastest observed mean on the same (worker,
        batch) — models never observed contribute no floor.
        """
        blame: Dict[Tuple[int, str, int], float] = {}
        if self._models:
            floor: Dict[int, float] = {}
            profiled: Dict[Tuple[str, int], float] = {}
            batches = {b for (_w, _m, b) in self._decisions}
            for b in batches:
                lats = []
                for m in self._models:
                    lat = float(m.latency_ms(b))
                    profiled[(m.name, b)] = lat
                    lats.append(lat)
                floor[b] = min(lats)
            for (w, m, b) in self._decisions:
                lat = profiled.get((m, b))
                blame[(w, m, b)] = (
                    max(0.0, lat - floor[b]) if lat is not None else 0.0
                )
            return blame
        observed: Dict[Tuple[int, str, int], float] = {
            key: cell[1] / cell[0] for key, cell in self._decisions.items()
        }
        floor_wb: Dict[Tuple[int, int], float] = {}
        for (w, _m, b), mean in observed.items():
            prev = floor_wb.get((w, b))
            if prev is None or mean < prev:
                floor_wb[(w, b)] = mean
        for key, mean in observed.items():
            w, _m, b = key
            blame[key] = max(0.0, mean - floor_wb[(w, b)])
        return blame

    def rows(self) -> List[Dict[str, Any]]:
        """Attribution rows (JSON-ready) with blame, deterministically
        sorted by (slo, model, worker)."""
        with self._lock:
            blame = self._blame_per_decision()
            row_blame: Dict[Tuple[str, int], List[float]] = {}
            for (w, m, b), cell in self._decisions.items():
                agg = row_blame.setdefault((m, w), [0.0, 0.0, 0.0])
                agg[0] += cell[0]
                agg[1] += cell[0] * b
                agg[2] += cell[0] * blame[(w, m, b)]
            out = []
            for key in sorted(self._rows):
                row = self._rows[key].to_json_dict()
                decisions, batch_sum, blame_ms = row_blame.get(
                    key, [0.0, 0.0, 0.0]
                )
                row["decisions"] = int(decisions)
                row["batch_sum"] = int(batch_sum)
                row["blame_ms"] = blame_ms
                row["blame_per_query_ms"] = (
                    blame_ms / batch_sum if batch_sum else 0.0
                )
                out.append(row)
            return out

    def to_json_dict(self) -> Dict[str, Any]:
        """The full attribution snapshot (deterministic, JSON-ready)."""
        with self._lock:
            rows = self.rows()
            totals = {
                "queries": sum(r["queries"] for r in rows),
                "satisfied": sum(r["satisfied"] for r in rows),
                "dropped": sum(r["dropped"] for r in rows),
                "violations": sum(r["violations"] for r in rows),
                "queue_wait_ms": sum(r["queue_wait_ms"] for r in rows),
                "batch_wait_ms": sum(r["batch_wait_ms"] for r in rows),
                "service_ms": sum(r["service_ms"] for r in rows),
                "drop_ms": sum(r["drop_ms"] for r in rows),
                "response_ms": sum(r["response_ms"] for r in rows),
                "violation_excess_ms": sum(
                    r["violation_excess_ms"] for r in rows
                ),
                "blame_ms": sum(r["blame_ms"] for r in rows),
            }
            return {
                "schema": ATTRIBUTION_SCHEMA,
                "slo_ms": self.slo_ms,
                "rows": rows,
                "totals": totals,
                "decisions": [
                    {
                        "worker": w,
                        "model": m,
                        "batch": b,
                        "count": int(cell[0]),
                        "exec_sum_ms": cell[1],
                    }
                    for (w, m, b), cell in sorted(self._decisions.items())
                ],
                "burn": {
                    "budget": self._budget,
                    "threshold": self._burn_threshold,
                    "alerts": sum(w.alerts for w in self._windows),
                    "windows": [
                        {
                            "size": w.size,
                            "count": w.count,
                            "violations": w.violations,
                            "rate": w.rate,
                            "burn": self._burn(w),
                            "alerts": w.alerts,
                        }
                        for w in self._windows
                    ],
                },
                "exemplars": {
                    "quantile": self._exemplar_quantile,
                    "capacity": self._exemplar_capacity,
                    "warmup": self._exemplar_warmup,
                    "chains": [
                        entry[2]
                        for entry in sorted(
                            self._exemplars, key=lambda e: (-e[0], e[1])
                        )
                    ],
                },
            }

    def render_text(self, limit: Optional[int] = None) -> str:
        """The attribution tables as aligned text (``ramsis explain``)."""
        from repro.experiments.reporting import format_table

        snap = self.to_json_dict()
        rows = snap["rows"]
        rows.sort(key=lambda r: -r["response_ms"])
        if limit is not None:
            rows = rows[:limit]
        body = []
        for r in rows:
            n = max(r["queries"], 1)
            body.append(
                [
                    r["slo"],
                    r["model"],
                    str(r["worker"]),
                    str(r["queries"]),
                    f"{r['queue_wait_ms'] / n:.2f}",
                    f"{r['service_ms'] / n:.2f}",
                    f"{r['drop_ms'] / n:.2f}",
                    f"{r['blame_per_query_ms']:.2f}",
                    f"{r['violations'] / n:.1%}",
                    str(r["dropped"]),
                ]
            )
        table = format_table(
            [
                "slo", "model", "worker", "queries", "wait ms", "service ms",
                "drop ms", "blame/q ms", "viol %", "drops",
            ],
            body,
            title="Latency attribution (per-query phase means)",
        )
        burn_lines = ["", "SLO burn rate:"]
        for w in snap["burn"]["windows"]:
            burn_lines.append(
                "  window {:>6}  rate {:.4f}  burn {:.3f}  alerts {}".format(
                    w["size"], w["rate"], w["burn"], w["alerts"]
                )
            )
        chains = snap["exemplars"]["chains"]
        tail_lines = [
            "",
            f"Tail exemplars (p{snap['exemplars']['quantile'] * 100:g} "
            f"threshold, {len(chains)} retained):",
        ]
        for chain in chains[:5]:
            tail_lines.append(
                "  q{query} worker {worker} {model}: {response_ms:.1f} ms "
                "(wait {queue_wait_ms:.1f}, service {service_ms:.1f}, "
                "drop {drop_ms:.1f})".format(**chain)
            )
        return table + "\n" + "\n".join(burn_lines + tail_lines)

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def observe_record(self, record: Mapping[str, Any]) -> None:
        """Fold one ``events_jsonl``-schema record dict."""
        kind = record.get("type")
        name = record.get("name", "")
        args = record.get("args")
        track = record.get("track", "")
        if kind == "span" and name == _SERVE and args:
            self.observe_decision(
                int(args.get("worker", _worker_from_track(track))),
                str(args.get("model", "")),
                int(args.get("batch", 1)),
                float(record.get("dur_ms", 0.0)),
            )
        elif kind == "instant" and args:
            if name == _SERVICE_START and "query" in args and "wait_ms" in args:
                self.observe_service_start(
                    int(args["query"]),
                    _worker_from_track(track),
                    str(args.get("model", "")),
                    int(args.get("batch", 1)),
                    float(args["wait_ms"]),
                )
            elif name == _COMPLETION and "query" in args:
                self.observe_completion(
                    int(args["query"]),
                    int(args.get("worker", _worker_from_track(track))),
                    str(args.get("model", "")),
                    float(args.get("response_ms", 0.0)),
                    bool(args.get("satisfied", False)),
                    t_ms=float(record.get("ts_ms", 0.0)),
                    dropped=bool(args.get("dropped", False)),
                )

    def replay_tracer(self, tracer: RecordingTracer) -> "LatencyAttributor":
        """Fold a recorded trace in its recorded order.

        Spans feed only the decision table and instants only the phase /
        burn / exemplar state, so replaying the two lists separately
        (the recorder keeps them apart) is order-equivalent to the live
        interleaved stream — the float accumulation order within each
        table is identical.
        """
        for span in tracer.spans:
            if span.name == _SERVE and span.args:
                self.observe_decision(
                    int(
                        span.args.get(
                            "worker", _worker_from_track(span.track)
                        )
                    ),
                    str(span.args.get("model", "")),
                    int(span.args.get("batch", 1)),
                    float(span.duration_ms),
                )
        for event in tracer.events:
            if event.is_counter or not event.args:
                continue
            if (
                event.name == _SERVICE_START
                and "query" in event.args
                and "wait_ms" in event.args
            ):
                self.observe_service_start(
                    int(event.args["query"]),
                    _worker_from_track(event.track),
                    str(event.args.get("model", "")),
                    int(event.args.get("batch", 1)),
                    float(event.args["wait_ms"]),
                )
            elif event.name == _COMPLETION and "query" in event.args:
                self.observe_completion(
                    int(event.args["query"]),
                    int(
                        event.args.get(
                            "worker", _worker_from_track(event.track)
                        )
                    ),
                    str(event.args.get("model", "")),
                    float(event.args.get("response_ms", 0.0)),
                    bool(event.args.get("satisfied", False)),
                    t_ms=event.ts_ms,
                    dropped=bool(event.args.get("dropped", False)),
                )
        return self


def _worker_from_track(track: str) -> int:
    """Worker index from a ``worker-<i>`` / ``w<j>/worker-<i>`` track."""
    _, sep, tail = track.rpartition("worker-")
    if sep:
        try:
            return int(tail)
        except ValueError:
            return -1
    return -1


def attribution_from_tracer(
    tracer: RecordingTracer, **kwargs: Any
) -> LatencyAttributor:
    """A fresh attributor folded over a recorded trace.

    On the merged tracer of a parallel sweep the recorded order is the
    serial ``(seq, worker, n)`` cell order, so the resulting tables are
    float-identical to a serially attached attributor's.
    """
    return LatencyAttributor(**kwargs).replay_tracer(tracer)


def attribution_from_jsonl(
    path: Union[str, Path], **kwargs: Any
) -> LatencyAttributor:
    """A fresh attributor folded over a JSONL event log.

    Works on ``events.jsonl`` / ``merged.jsonl`` (timestamp-ordered) and
    raw worker shards.  Truncated trailing lines (a worker crashed
    mid-write) are skipped with a warning, like the reconstruction
    folds.  Note that exported logs are globally timestamp-sorted: on a
    *multi-cell* merged log, query ids may collide across cells, which
    can swap the queue-wait pairing between two colliding queries —
    aggregate sums are unaffected; for exact tables prefer
    :func:`attribution_from_tracer` on the merged tracer (what
    ``run_sweep`` and ``write_merged_artifacts`` do).
    """
    from repro.obs.log import get_logger

    attributor = LatencyAttributor(**kwargs)
    p = Path(path)
    with p.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                get_logger("obs.attribution").warning(
                    "%s:%d: skipping unparseable record (truncated write?)",
                    p, lineno,
                )
                continue
            attributor.observe_record(record)
    return attributor
