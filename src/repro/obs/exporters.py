"""Trace and metrics exporters.

Three output formats, all dependency-free:

- **JSONL event log** — one JSON object per span/event, in timestamp
  order; greppable, and the input format of
  :mod:`repro.obs.reconstruct`;
- **Chrome ``trace_event`` JSON** — loadable in Perfetto or
  ``chrome://tracing``; one named thread per tracer track (worker tracks
  first), spans as complete (``"X"``) events, instants as ``"i"``,
  counter samples as ``"C"``;
- **Prometheus text exposition** — the registry's counters, gauges, and
  histograms as a ``# HELP``/``# TYPE``-annotated dump (final values;
  gauge time series live in the JSONL/Chrome outputs).
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import RecordingTracer

__all__ = [
    "events_jsonl",
    "write_events_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus_text",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------
def events_jsonl(tracer: RecordingTracer) -> List[str]:
    """Serialized records (one JSON string per line), timestamp-ordered."""
    records: List[Dict[str, Any]] = []
    for span in tracer.spans:
        record: Dict[str, Any] = {
            "type": "span",
            "name": span.name,
            "track": span.track,
            "ts_ms": span.start_ms,
            "dur_ms": span.duration_ms,
            "cat": span.category,
        }
        if span.args:
            record["args"] = span.args
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        record["id"] = span.span_id
        records.append(record)
    for event in tracer.events:
        record = {
            "type": "counter" if event.is_counter else "instant",
            "name": event.name,
            "track": event.track,
            "ts_ms": event.ts_ms,
            "cat": event.category,
        }
        if event.is_counter:
            record["value"] = event.value
        if event.args:
            record["args"] = event.args
        records.append(record)
    records.sort(key=lambda r: r["ts_ms"])
    return [json.dumps(r, sort_keys=True) for r in records]


def write_events_jsonl(tracer: RecordingTracer, path: Union[str, Path]) -> Path:
    """Write the JSONL event log to ``path`` and return it."""
    path = Path(path)
    path.write_text("\n".join(events_jsonl(tracer)) + "\n")
    return path


# ----------------------------------------------------------------------
# Chrome trace_event JSON
# ----------------------------------------------------------------------
_GROUP_INDEX_RE = re.compile(r"(\d+)$")


def _track_group(track: str) -> str:
    """The process-group prefix of a merged track (``""`` for the parent).

    Merged worker tracks are named ``w<idx>/<track>`` by
    :func:`repro.obs.aggregate.merge_run_dir`; everything without a
    slash belongs to the parent process group.
    """
    return track.split("/", 1)[0] if "/" in track else ""


def _group_sort_key(group: str):
    # "" (parent) first, then w0 < w1 < ... < w10 numerically.
    match = _GROUP_INDEX_RE.search(group)
    return (group != "", int(match.group(1)) if match else -1, group)


def chrome_trace(
    tracer: RecordingTracer,
    process_name: str = "repro",
    split_processes: bool = False,
) -> Dict:
    """The tracer's records as a Chrome ``trace_event`` JSON object.

    Timestamps/durations are microseconds as the format requires; track
    names become thread names, ordered so ``worker-*`` tracks sort first.
    With ``split_processes``, tracks named ``<group>/<rest>`` (the merged
    cross-process layout, e.g. ``w0/worker-1``) are emitted as separate
    Chrome *processes* — one track group per worker — instead of extra
    threads of the parent.
    """
    tracks = tracer.tracks()

    def sort_key(track: str):
        rest = track.split("/", 1)[1] if "/" in track else track
        return (0 if rest.startswith("worker") else 1, track)

    if split_processes:
        groups = sorted({_track_group(t) for t in tracks}, key=_group_sort_key)
    else:
        groups = [""]
    pids = {group: i + 1 for i, group in enumerate(groups)}

    def track_location(track: str):
        group = _track_group(track) if split_processes else ""
        return pids[group], track

    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for group in groups:
        pid = pids[group]
        label = process_name if not group else f"{process_name}/{group}"
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": label},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": pid},
            }
        )
        members = sorted(
            (
                t
                for t in tracks
                if (_track_group(t) if split_processes else "") == group
            ),
            key=sort_key,
        )
        for i, track in enumerate(members):
            tid = i + 1
            tids[track] = tid
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_sort_index",
                    "args": {"sort_index": tid},
                }
            )
    for span in tracer.spans:
        pid, _ = track_location(span.track)
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tids[span.track],
                "name": span.name,
                "cat": span.category,
                "ts": span.start_ms * 1000.0,
                "dur": span.duration_ms * 1000.0,
                "args": dict(span.args),
            }
        )
    for event in tracer.events:
        pid, _ = track_location(event.track)
        if event.is_counter:
            events.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": tids[event.track],
                    "name": event.name,
                    "ts": event.ts_ms * 1000.0,
                    "args": {"value": event.value},
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": tids[event.track],
                    "name": event.name,
                    "cat": event.category,
                    "ts": event.ts_ms * 1000.0,
                    "s": "t",
                    "args": dict(event.args),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: RecordingTracer,
    path: Union[str, Path],
    process_name: str = "repro",
    split_processes: bool = False,
) -> Path:
    """Write the Chrome trace JSON to ``path`` and return it."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(tracer, process_name, split_processes))
    )
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _escape_label_value(value: str) -> str:
    # Prometheus text exposition: label values escape backslash, double
    # quote, and line feed (in that order — backslash first).
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize(k)}="{_escape_label_value(v)}"' for k, v in labels
    )
    return "{" + inner + "}"


def _merge_labels(labels, extra: str) -> str:
    parts = [f'{_sanitize(k)}="{_escape_label_value(v)}"' for k, v in labels]
    parts.append(extra)
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text-format dump of every metric in ``registry``."""
    lines: List[str] = []
    for name in registry.names():
        kind = registry.kind_of(name)
        safe = _sanitize(name)
        help_text = registry.help_of(name)
        if help_text:
            lines.append(f"# HELP {safe} {help_text}")
        lines.append(f"# TYPE {safe} {kind}")
        for metric in registry.collect(name):
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{safe}{_labels_text(metric.labels)} "
                    f"{_format_value(metric.value)}"
                )
            elif isinstance(metric, Histogram):
                for bound, cumulative in metric.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else f"{bound:g}"
                    le_label = 'le="%s"' % le
                    lines.append(
                        f"{safe}_bucket"
                        f"{_merge_labels(metric.labels, le_label)} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{safe}_sum{_labels_text(metric.labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(
                    f"{safe}_count{_labels_text(metric.labels)} {metric.count}"
                )
    return "\n".join(lines) + "\n"


def write_prometheus_text(
    registry: MetricsRegistry, path: Union[str, Path]
) -> Path:
    """Write the Prometheus text dump to ``path`` and return it."""
    path = Path(path)
    path.write_text(prometheus_text(registry))
    return path
