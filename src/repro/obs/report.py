"""Run reports and benchmark history tracking.

Two consumers of on-disk observability artifacts:

- **Run reports** (:func:`render_run_report`, ``ramsis report
  --run-dir``): fold one run directory — worker shards and merged
  artifacts from :mod:`repro.obs.aggregate`, plus an ``audit.json`` from
  the live guarantee auditor when present — into a single text or HTML
  summary: shard inventory, reconstructed lifecycle aggregates, metric
  highlights, audit verdicts.

- **Bench history** (:func:`append_bench_history` /
  :func:`check_bench_history`, ``ramsis bench-history``): append every
  ``benchmarks/out/*.json`` result as one line of
  ``benchmarks/out/history.jsonl``, then compare each benchmark's latest
  entry against its previous one.  Directionality is inferred from the
  metric-key suffix (``*_s``/``*_ms``/``*_seconds``/``*_bytes``/
  ``*vs_off`` are lower-is-better; ``*_qps``/``*speedup*``/
  ``*throughput*`` are higher-is-better; anything else is informational
  and never flagged), and a change worse than the tolerance fraction is
  a regression — the CI gate that turns one-off bench numbers into a
  tracked series.
"""

from __future__ import annotations

import html
import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.reconstruct import TraceSummary, _iter_jsonl, reconstruct_from_jsonl

__all__ = [
    "render_run_report",
    "write_run_report",
    "render_top_frame",
    "append_bench_history",
    "check_bench_history",
    "Regression",
]

#: Metric-key suffixes where smaller is better (runtimes, footprints).
LOWER_IS_BETTER_SUFFIXES: Tuple[str, ...] = (
    "_s",
    "_ms",
    "_seconds",
    "_bytes",
    "vs_off",
)
#: Metric-key markers where larger is better (rates of useful work).
HIGHER_IS_BETTER_MARKERS: Tuple[str, ...] = ("_qps", "speedup", "throughput")


# ----------------------------------------------------------------------
# Run reports
# ----------------------------------------------------------------------
def _count_lines(path: Path) -> int:
    count = 0
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                count += 1
    return count


def _find_merged_jsonl(run_dir: Path) -> Optional[Path]:
    direct = run_dir / "merged.jsonl"
    if direct.is_file():
        return direct
    batches = sorted(run_dir.glob("batch-*/merged.jsonl"))
    return batches[-1] if batches else None


def _summary_rows(summary: TraceSummary) -> List[Tuple[str, str]]:
    return [
        ("arrivals", str(summary.arrivals)),
        ("completed queries", str(summary.total_queries)),
        ("satisfied queries", str(summary.satisfied_queries)),
        ("violation rate", f"{summary.violation_rate * 100:.3f}%"),
        (
            "accuracy (satisfied)",
            f"{summary.accuracy_per_satisfied_query * 100:.2f}%",
        ),
        ("MS&S decisions", str(summary.decisions)),
        ("mean batch size", f"{summary.mean_batch_size:.3f}"),
    ]


def _metric_rows(metrics_json: Path) -> List[Tuple[str, str]]:
    data = json.loads(metrics_json.read_text())
    rows: List[Tuple[str, str]] = []
    for entry in data.get("metrics", []):
        labels = ",".join(f"{k}={v}" for k, v in entry.get("labels", []))
        label = entry["name"] + (f"{{{labels}}}" if labels else "")
        state = entry.get("state", {})
        kind = entry.get("kind")
        if kind == "counter":
            rows.append((label, f"{state.get('value', 0.0):g}"))
        elif kind == "gauge":
            value = state.get("value")
            series = state.get("series", [])
            shown = "-" if value is None else f"{value:g}"
            rows.append((label, f"{shown} ({len(series)} samples)"))
        elif kind == "histogram":
            count = state.get("count", 0)
            total = state.get("sum", 0.0)
            mean = total / count if count else 0.0
            rows.append((label, f"count={count} mean={mean:.3f}"))
    return rows


def _audit_rows(audit_json: Path) -> List[Tuple[str, str]]:
    data = json.loads(audit_json.read_text())
    rows: List[Tuple[str, str]] = []
    for key in ("ok", "windows", "breaches", "alerts"):
        if key in data:
            value = data[key]
            rows.append((key, str(len(value) if isinstance(value, list) else value)))
    if not rows:
        rows.append(("keys", ", ".join(sorted(data)[:8])))
    return rows


def _load_attribution(run_dir: Path) -> Optional[Dict[str, Any]]:
    """The run's attribution snapshot, preferring the merged artifact.

    Falls back to folding ``merged.jsonl`` when no ``attribution.json``
    was written (e.g. the sweep ran without an attributor attached).
    """
    direct = run_dir / "attribution.json"
    if direct.is_file():
        return json.loads(direct.read_text())
    batches = sorted(run_dir.glob("batch-*/attribution.json"))
    if batches:
        return json.loads(batches[-1].read_text())
    merged = _find_merged_jsonl(run_dir)
    if merged is None:
        return None
    from repro.obs.attribution import attribution_from_jsonl

    snap = attribution_from_jsonl(merged).to_json_dict()
    return snap if snap["totals"]["queries"] else None


def _attribution_rows(snap: Dict[str, Any]) -> List[Tuple[str, str]]:
    rows: List[Tuple[str, str]] = []
    for r in snap.get("rows", []):
        n = max(r["queries"], 1)
        rows.append(
            (
                f"{r['model']} @ worker {r['worker']}",
                "{} queries, wait {:.2f} ms, service {:.2f} ms, "
                "blame/q {:.2f} ms, {} violations, {} drops".format(
                    r["queries"],
                    r["queue_wait_ms"] / n,
                    r["service_ms"] / n,
                    r.get("blame_per_query_ms", 0.0),
                    r["violations"],
                    r["dropped"],
                ),
            )
        )
    totals = snap.get("totals", {})
    if totals:
        rows.append(
            (
                "totals",
                "{} queries, {} violations, {} drops, blame {:.1f} ms".format(
                    totals.get("queries", 0),
                    totals.get("violations", 0),
                    totals.get("dropped", 0),
                    totals.get("blame_ms", 0.0),
                ),
            )
        )
    for w in snap.get("burn", {}).get("windows", []):
        rows.append(
            (
                f"burn window {w['size']}",
                "rate {:.4f}, burn {:.3f}, alerts {}".format(
                    w["rate"], w["burn"], w["alerts"]
                ),
            )
        )
    chains = snap.get("exemplars", {}).get("chains", [])
    if chains:
        rows.append(("tail exemplars", f"{len(chains)} retained"))
    return rows


def _phase_stats(run_dir: Path) -> List[Any]:
    """Offline phase stats from the merged span records (may be empty)."""
    merged = _find_merged_jsonl(run_dir)
    if merged is None:
        return []
    from repro.obs.profile import stats_from_spans

    return stats_from_spans(_iter_jsonl(merged))


def _hotspot_rows(stats: List[Any], n: int = 10) -> List[Tuple[str, str]]:
    return [
        (
            ";".join(stat.path),
            "self {:.3f} ms / total {:.3f} ms over {} spans".format(
                stat.self_ms, stat.total_ms, stat.count
            ),
        )
        for stat in stats[:n]
    ]


def _gather_sections(run_dir: Path) -> List[Tuple[str, List[Tuple[str, str]]]]:
    sections: List[Tuple[str, List[Tuple[str, str]]]] = []

    shard_rows: List[Tuple[str, str]] = []
    for path in sorted(run_dir.glob("shard-*.jsonl")) + sorted(
        run_dir.glob("batch-*/shard-*.jsonl")
    ):
        shard_rows.append(
            (str(path.relative_to(run_dir)), f"{_count_lines(path) - 1} records")
        )
    if shard_rows:
        sections.append(("worker shards", shard_rows))

    merged = _find_merged_jsonl(run_dir)
    if merged is not None:
        summary = reconstruct_from_jsonl(merged)
        sections.append(
            (
                f"reconstructed from {merged.relative_to(run_dir)}",
                _summary_rows(summary),
            )
        )

    metrics_json = run_dir / "metrics.json"
    if metrics_json.is_file():
        sections.append(("merged metrics", _metric_rows(metrics_json)))

    audit_json = run_dir / "audit.json"
    if audit_json.is_file():
        sections.append(("guarantee audit", _audit_rows(audit_json)))

    attribution = _load_attribution(run_dir)
    if attribution is not None:
        sections.append(("latency attribution", _attribution_rows(attribution)))

    hotspot_rows = _hotspot_rows(_phase_stats(run_dir))
    if hotspot_rows:
        sections.append(("phase hotspots (self-time)", hotspot_rows))

    artifact_rows = [
        (name, f"{(run_dir / name).stat().st_size} bytes")
        for name in (
            "merged.jsonl",
            "trace.json",
            "metrics.prom",
            "metrics.json",
            "attribution.json",
            "profile.folded",
        )
        if (run_dir / name).is_file()
    ]
    if artifact_rows:
        sections.append(("merged artifacts", artifact_rows))
    return sections


def render_run_report(run_dir: Union[str, Path], fmt: str = "text") -> str:
    """One summary (text or HTML) of a run directory's artifacts."""
    directory = Path(run_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"run directory not found: {directory}")
    sections = _gather_sections(directory)
    title = f"ramsis run report — {directory}"
    if fmt == "text":
        lines = [title, "=" * len(title)]
        if not sections:
            lines.append("(no observability artifacts found)")
        for heading, rows in sections:
            lines.append("")
            lines.append(heading)
            lines.append("-" * len(heading))
            width = max((len(k) for k, _ in rows), default=0)
            for key, value in rows:
                lines.append(f"  {key.ljust(width)}  {value}")
        return "\n".join(lines) + "\n"
    if fmt == "html":
        parts = [
            "<!doctype html>",
            "<html><head><meta charset='utf-8'>",
            f"<title>{html.escape(title)}</title>",
            "<style>body{font-family:monospace;margin:2em}"
            "table{border-collapse:collapse;margin-bottom:1.5em}"
            "td,th{border:1px solid #999;padding:2px 8px;text-align:left}"
            "</style></head><body>",
            f"<h1>{html.escape(title)}</h1>",
        ]
        if not sections:
            parts.append("<p>(no observability artifacts found)</p>")
        for heading, rows in sections:
            parts.append(f"<h2>{html.escape(heading)}</h2>")
            parts.append("<table>")
            for key, value in rows:
                parts.append(
                    f"<tr><td>{html.escape(key)}</td>"
                    f"<td>{html.escape(value)}</td></tr>"
                )
            parts.append("</table>")
        parts.append("</body></html>")
        return "\n".join(parts) + "\n"
    raise ValueError(f"unknown report format {fmt!r} (expected 'text' or 'html')")


def write_run_report(
    run_dir: Union[str, Path],
    out_path: Optional[Union[str, Path]] = None,
    fmt: str = "text",
) -> Path:
    """Render the run report and write it under (or at) ``out_path``.

    Alongside the report, the merged trace's phase self-times are written
    as ``profile.folded`` in the run directory (flamegraph-folded lines,
    directly consumable by ``flamegraph.pl``/speedscope) whenever the run
    recorded any spans.
    """
    directory = Path(run_dir)
    if out_path is None:
        out_path = directory / ("report.html" if fmt == "html" else "report.txt")
    out_path = Path(out_path)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(render_run_report(directory, fmt=fmt))
    stats = _phase_stats(directory)
    if stats:
        from repro.obs.profile import folded_lines

        lines = folded_lines(stats)
        if lines:
            (directory / "profile.folded").write_text("\n".join(lines) + "\n")
    return out_path


# ----------------------------------------------------------------------
# Live view (``ramsis top``)
# ----------------------------------------------------------------------
def _live_attribution(run_dir: Path) -> Optional[Tuple[str, Dict[str, Any]]]:
    """Freshest attribution snapshot by mtime.

    While a run is in flight the per-pid live feeds are newest; once the
    pool drains, the merged ``attribution.json`` (written last, global
    rather than one worker's view) takes over.
    """
    candidates = list(run_dir.glob("attribution-*.json"))
    merged = run_dir / "attribution.json"
    if merged.is_file():
        candidates.append(merged)
    for path in sorted(
        candidates, key=lambda p: p.stat().st_mtime, reverse=True
    ):
        try:
            return path.name, json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
    return None


def render_top_frame(run_dir: Union[str, Path], limit: int = 12) -> str:
    """One ``ramsis top`` frame: the run directory's freshest state.

    Reads the periodic live snapshots (``metrics-<pid>.json`` /
    ``attribution-<pid>.json``, written by the runtime controller's
    snapshot thread and by ``run_sweep`` pool workers) plus any merged
    artifacts, and renders a single text frame.  Pure read — safe to
    call while the run is still writing (snapshots are atomic renames).
    """
    directory = Path(run_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"run directory not found: {directory}")
    feeds = sorted(directory.glob("metrics*.json")) + sorted(
        directory.glob("attribution*.json")
    )
    title = f"ramsis top — {directory}"
    lines = [title, "=" * len(title)]
    if feeds:
        newest = max(feeds, key=lambda p: p.stat().st_mtime)
        age = max(0.0, time.time() - newest.stat().st_mtime)
        lines.append(f"feeds: {len(feeds)} files, freshest {age:.1f}s ago")
    else:
        lines.append("(no metrics/attribution feeds yet)")

    live = _live_attribution(directory)
    if live is not None:
        source, snap = live
        lines.append("")
        lines.append(f"latency attribution [{source}]")
        rows = _attribution_rows(snap)
        width = max((len(k) for k, _ in rows), default=0)
        for key, value in rows[: limit + 6]:
            lines.append(f"  {key.ljust(width)}  {value}")

    for path in sorted(directory.glob("metrics-*.json")) or sorted(
        directory.glob("metrics.json")
    ):
        try:
            rows = _metric_rows(path)
        except (json.JSONDecodeError, OSError):
            continue
        lines.append("")
        lines.append(path.name)
        width = max((len(k) for k, _ in rows[:limit]), default=0)
        for key, value in rows[:limit]:
            lines.append(f"  {key.ljust(width)}  {value}")
        if len(rows) > limit:
            lines.append(f"  ... {len(rows) - limit} more metrics")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Bench history
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One tracked benchmark metric that got worse beyond tolerance."""

    bench: str
    key: str
    previous: float
    latest: float
    #: "lower" or "higher" — which direction is better for this key.
    better: str

    @property
    def change(self) -> float:
        """Fractional change from previous to latest (signed)."""
        if self.previous == 0:
            return math.inf
        return (self.latest - self.previous) / abs(self.previous)

    def describe(self) -> str:
        """Human-readable one-liner for CLI/CI output."""
        return (
            f"{self.bench}:{self.key} {self.previous:g} -> {self.latest:g} "
            f"({self.change * 100:+.1f}%, {self.better} is better)"
        )


def _flatten(data: Any, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested JSON value, dot-keyed; bools excluded."""
    out: Dict[str, float] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(_flatten(value, path))
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        value = float(data)
        if math.isfinite(value):
            out[prefix] = value
    return out


def metric_direction(key: str) -> Optional[str]:
    """"lower"/"higher" when ``key`` is a tracked metric, else ``None``."""
    leaf = key.rsplit(".", 1)[-1]
    for marker in HIGHER_IS_BETTER_MARKERS:
        if marker in leaf:
            return "higher"
    for suffix in LOWER_IS_BETTER_SUFFIXES:
        if leaf.endswith(suffix):
            return "lower"
    return None


def append_bench_history(
    out_dir: Union[str, Path],
    history_path: Optional[Union[str, Path]] = None,
    timestamp: Optional[float] = None,
) -> List[Dict[str, Any]]:
    """Append every ``<out_dir>/*.json`` bench result to the history log.

    Each appended line is ``{"bench", "recorded_unix", "data"}``; the
    history file itself (``history.jsonl``) is skipped.  Returns the
    entries appended, in bench-name order.
    """
    directory = Path(out_dir)
    history = (
        directory / "history.jsonl" if history_path is None else Path(history_path)
    )
    recorded = time.time() if timestamp is None else float(timestamp)
    entries: List[Dict[str, Any]] = []
    for path in sorted(directory.glob("*.json")):
        if path.resolve() == history.resolve():
            continue
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            continue
        entries.append(
            {"bench": path.stem, "recorded_unix": recorded, "data": data}
        )
    if entries:
        history.parent.mkdir(parents=True, exist_ok=True)
        with history.open("a", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entries


def check_bench_history(
    history_path: Union[str, Path], tolerance: float = 0.25
) -> List[Regression]:
    """Compare each benchmark's latest history entry against its previous.

    A tracked metric (see :func:`metric_direction`) that moved in the
    worse direction by more than ``tolerance`` (fractional) is reported.
    Benchmarks with fewer than two entries, and keys present in only one
    entry, are skipped — the first recorded run can never regress.
    """
    history = Path(history_path)
    if not history.is_file():
        return []
    by_bench: Dict[str, List[Dict[str, Any]]] = {}
    with history.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            by_bench.setdefault(entry["bench"], []).append(entry)

    regressions: List[Regression] = []
    for bench in sorted(by_bench):
        entries = by_bench[bench]
        if len(entries) < 2:
            continue
        previous = _flatten(entries[-2].get("data", {}))
        latest = _flatten(entries[-1].get("data", {}))
        for key in sorted(previous.keys() & latest.keys()):
            better = metric_direction(key)
            if better is None:
                continue
            old, new = previous[key], latest[key]
            if old == 0:
                continue
            change = (new - old) / abs(old)
            worse = change > tolerance if better == "lower" else change < -tolerance
            if worse:
                regressions.append(
                    Regression(
                        bench=bench,
                        key=key,
                        previous=old,
                        latest=new,
                        better=better,
                    )
                )
    return regressions
