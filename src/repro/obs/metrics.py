"""Metrics registry: counters, gauges, and streaming histograms.

Prometheus-flavoured naming (``snake_case`` metric names, optional label
sets) with two additions the experiments need:

- gauges keep their full ``(t_ms, value)`` **time series**, so the
  anticipated vs. realized load of :class:`~repro.sim.monitor.LoadMonitor`
  and per-worker queue depths can be plotted after a run, not just read
  at the end;
- histograms combine **fixed buckets** (exported Prometheus-style) with a
  bounded **reservoir sample** (Vitter's algorithm R, deterministic seed)
  for quantile queries; below the reservoir capacity the quantiles are
  exact.

The registry is passive: instrumented components call ``inc``/``set``/
``observe`` only when a registry was injected, so the default
(unobserved) configuration does no work.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: Default histogram buckets for millisecond latencies (upper bounds).
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "labels", "_value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} increment must be >= 0")
        self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (see :meth:`merge_state`)."""
        return {"value": self._value}

    def merge_state(self, state: Mapping) -> None:
        """Fold another counter's snapshot in: counts **sum**."""
        self.inc(float(state["value"]))


class Gauge:
    """Last-write-wins value that also retains its sample time series."""

    __slots__ = ("name", "labels", "_value", "_series", "_max_samples")

    def __init__(
        self, name: str, labels: LabelItems = (), max_samples: int = 100_000
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = math.nan
        self._series: List[Tuple[float, float]] = []
        self._max_samples = max_samples

    def set(self, value: float, t_ms: Optional[float] = None) -> None:
        """Record a new value; with ``t_ms`` it is kept in the series."""
        self._value = float(value)
        if t_ms is not None and len(self._series) < self._max_samples:
            self._series.append((float(t_ms), float(value)))

    @property
    def value(self) -> float:
        """Most recent value (NaN before the first ``set``)."""
        return self._value

    @property
    def series(self) -> Tuple[Tuple[float, float], ...]:
        """All timestamped samples recorded so far."""
        return tuple(self._series)

    def clear(self) -> None:
        """Drop the time series and return to the unset (NaN) value.

        Components that are reused across runs (e.g. the load monitor)
        call this from their own ``reset`` so stale samples from a prior
        run never leak into the next run's exports.
        """
        self._value = math.nan
        self._series.clear()

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (see :meth:`merge_state`)."""
        value = self._value
        return {
            "value": None if math.isnan(value) else value,
            "series": [list(point) for point in self._series],
        }

    def merge_state(self, state: Mapping) -> None:
        """Fold another gauge's snapshot in.

        The time series is extended (capped at ``max_samples``); the
        scalar value is last-write-wins, i.e. the merged-in snapshot
        overwrites ours when it carries a value.  Cross-process merges
        that must not lose per-worker values should merge each shard
        into a gauge labelled with the worker index instead (see
        :meth:`MetricsRegistry.merge_json_dict`).
        """
        for point in state.get("series", ()):
            t_ms, value = point
            if len(self._series) < self._max_samples:
                self._series.append((float(t_ms), float(value)))
        value = state.get("value")
        if value is not None:
            self._value = float(value)


class Histogram:
    """Streaming histogram: fixed buckets plus a quantile reservoir."""

    __slots__ = (
        "name", "labels", "_bounds", "_bucket_counts", "_count", "_sum",
        "_reservoir", "_capacity", "_rng",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        reservoir_size: int = 4096,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.labels = labels
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow bucket
        self._count = 0
        self._sum = 0.0
        self._reservoir: List[float] = []
        self._capacity = reservoir_size
        # Deterministic reservoir: runs are reproducible for a fixed
        # observation order regardless of global random state.
        self._rng = random.Random(0x5EED ^ zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        """Fold one sample into buckets, sum, and the reservoir."""
        value = float(value)
        self._count += 1
        self._sum += value
        lo, hi = 0, len(self._bounds)
        while lo < hi:  # first bound >= value (bisect_left on bounds)
            mid = (lo + hi) // 2
            if self._bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self._bucket_counts[lo] += 1
        if len(self._reservoir) < self._capacity:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self._capacity:
                self._reservoir[slot] = value

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return 0.0 if self._count == 0 else self._sum / self._count

    def bucket_bounds(self) -> Tuple[float, ...]:
        """The finite bucket upper bounds (``+inf`` is implicit)."""
        return self._bounds

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs incl. +inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self._bounds, self._bucket_counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, self._count))
        return out

    def quantile(self, q: float) -> float:
        """Reservoir quantile for ``q`` in [0, 1]; exact while the number
        of observations is within the reservoir capacity."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self._reservoir:
            return math.nan
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        rank = q * (len(ordered) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (see :meth:`merge_state`)."""
        return {
            "bounds": list(self._bounds),
            "bucket_counts": list(self._bucket_counts),
            "count": self._count,
            "sum": self._sum,
            "reservoir": list(self._reservoir),
        }

    def merge_state(self, state: Mapping) -> None:
        """Fold another histogram's snapshot in.

        Bucket counts, totals, and sums add; the reservoir is topped up
        deterministically (first-come first-kept) until capacity, so
        quantiles stay exact while the combined sample count fits.
        Merging histograms with different bucket bounds raises.
        """
        bounds = tuple(float(b) for b in state["bounds"])
        if bounds != self._bounds:
            raise ValueError(
                f"histogram {self.name!r} bucket bounds differ: "
                f"{bounds} vs {self._bounds}"
            )
        for i, n in enumerate(state["bucket_counts"]):
            self._bucket_counts[i] += int(n)
        self._count += int(state["count"])
        self._sum += float(state["sum"])
        for value in state["reservoir"]:
            if len(self._reservoir) >= self._capacity:
                break
            self._reservoir.append(float(value))


class MetricsRegistry:
    """Get-or-create home for all metrics of one run.

    Metrics are identified by ``(name, labels)``; asking twice returns the
    same object, so instrumentation sites never coordinate.  Registering
    one name as two different kinds raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """The counter registered under ``(name, labels)``."""
        return self._get(name, "counter", help, labels, lambda k: Counter(name, k))

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """The gauge registered under ``(name, labels)``."""
        return self._get(name, "gauge", help, labels, lambda k: Gauge(name, k))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        """The histogram registered under ``(name, labels)``."""
        return self._get(
            name, "histogram", help, labels, lambda k: Histogram(name, k, buckets)
        )

    def _get(self, name, kind, help, labels, make):
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ValueError(
                f"metric {name!r} already registered as {known}, not {kind}"
            )
        self._kinds[name] = kind
        if help:
            self._help[name] = help
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = make(key[1])
            self._metrics[key] = metric
        return metric

    # ------------------------------------------------------------------
    # Introspection (exporters)
    # ------------------------------------------------------------------
    def kind_of(self, name: str) -> Optional[str]:
        """'counter' | 'gauge' | 'histogram', or None if unknown."""
        return self._kinds.get(name)

    def help_of(self, name: str) -> str:
        """The help string registered for ``name`` (may be empty)."""
        return self._help.get(name, "")

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._kinds)

    def collect(self, name: str) -> Iterable[object]:
        """Every metric instance (one per label set) under ``name``."""
        return [
            metric
            for (metric_name, _), metric in sorted(self._metrics.items())
            if metric_name == name
        ]

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Cross-process shipping (obs.aggregate)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Serialize the whole registry to a JSON-compatible dict.

        The inverse is :meth:`merge_json_dict`, which folds a snapshot
        into an existing registry — together they let worker processes
        ship their metrics to the parent as plain JSON.
        """
        metrics = []
        for (name, labels), metric in sorted(self._metrics.items()):
            metrics.append(
                {
                    "name": name,
                    "kind": self._kinds[name],
                    "labels": [list(pair) for pair in labels],
                    "state": metric.state_dict(),  # type: ignore[attr-defined]
                }
            )
        return {
            "help": dict(self._help),
            "metrics": metrics,
        }

    def merge_json_dict(
        self,
        data: Mapping,
        extra_labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold a :meth:`to_json_dict` snapshot into this registry.

        Counters and histograms merge into the metric with the *same*
        label set (counts sum, histograms combine).  Gauges are
        last-write-wins by nature, so when ``extra_labels`` is given
        (e.g. ``{"worker": "3"}``) each gauge is republished under its
        original labels **plus** the extra ones — per-worker values stay
        distinguishable instead of clobbering each other.
        """
        extra = dict(extra_labels or {})
        for name, help_text in data.get("help", {}).items():
            self._help.setdefault(name, help_text)
        for entry in data["metrics"]:
            name = entry["name"]
            kind = entry["kind"]
            labels = {str(k): str(v) for k, v in entry["labels"]}
            if kind == "counter":
                self.counter(name, labels=labels).merge_state(entry["state"])
            elif kind == "histogram":
                bounds = entry["state"]["bounds"]
                hist = self.histogram(name, labels=labels, buckets=bounds)
                hist.merge_state(entry["state"])
            elif kind == "gauge":
                if extra:
                    labels.update(extra)
                self.gauge(name, labels=labels).merge_state(entry["state"])
            else:  # pragma: no cover - future-proofing
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
