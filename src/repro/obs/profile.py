"""Phase profiler: nested wall-clock phase timers on the tracer protocol.

:class:`PhaseProfiler` is a :class:`~repro.obs.trace.ForwardingTracer`:
drop it between any instrumented component and its (optional) sink
tracer, and every wall-clock ``span()`` phase the code already emits —
policy-generation phases, solver Bellman sweeps, transition-kernel
construction, the simulation engine's event loop, cache gets/puts —
is aggregated into per-*path* statistics without new instrumentation::

    profiler = PhaseProfiler()                  # or PhaseProfiler(recorder)
    generate_policy(config, tracer=profiler)
    print(profiler.hotspots())                  # top-N self-time table
    Path("prof.folded").write_text("\\n".join(profiler.folded()))

A *path* is the stack of open phase names rooted at the track
(``generator;generate_policy;value_iteration``), so the
:meth:`folded` output is directly consumable by standard flamegraph
tooling (``flamegraph.pl``, speedscope's folded importer).  *Self* time
is a phase's total minus its direct children's totals, computed at
reporting time.

``sample_every=k`` times only every k-th occurrence of each path (the
rest are forwarded untimed) and scales the reported totals back up by
the observed sampling ratio — for phases hot enough that even two
``perf_counter`` calls matter.

The profiler follows the :data:`~repro.obs.trace.NULL_TRACER` contract:
it is opt-in, and code instrumented with the default null tracer pays
only the usual single ``enabled`` attribute check when no profiler (or
other tracer) is installed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.trace import ForwardingTracer, Tracer

__all__ = [
    "PhaseStats",
    "PhaseProfiler",
    "stats_from_spans",
    "render_hotspots",
    "folded_lines",
]

PhasePath = Tuple[str, ...]


@dataclass(frozen=True)
class PhaseStats:
    """Aggregated timings for one phase path (track-rooted stack)."""

    path: PhasePath
    #: Occurrences observed (timed or not).
    count: int
    #: Occurrences actually timed (== ``count`` unless sampling).
    measured: int
    #: Estimated total wall-clock ms (measured total scaled by the
    #: sampling ratio).
    total_ms: float
    #: Estimated total minus direct children's estimated totals, >= 0.
    self_ms: float
    min_ms: float
    max_ms: float

    @property
    def name(self) -> str:
        """Leaf phase name."""
        return self.path[-1]

    @property
    def depth(self) -> int:
        """Nesting depth (0 = directly under the track root)."""
        return len(self.path) - 2

    @property
    def mean_ms(self) -> float:
        """Estimated mean duration per occurrence."""
        return self.total_ms / self.count if self.count else 0.0


class PhaseProfiler(ForwardingTracer):
    """Aggregate every ``span()`` phase by its nesting path.

    Forwards all records to ``inner`` (default: nothing), so it can sit
    in front of a :class:`~repro.obs.trace.RecordingTracer` or replace
    one when only aggregate timings are wanted.
    """

    def __init__(self, inner: Optional[Tracer] = None, sample_every: int = 1) -> None:
        super().__init__(inner)
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self._sample_every = sample_every
        self._stacks: Dict[str, List[str]] = {}
        self._seen: Dict[PhasePath, int] = {}
        self._measured: Dict[PhasePath, int] = {}
        self._total: Dict[PhasePath, float] = {}
        self._min: Dict[PhasePath, float] = {}
        self._max: Dict[PhasePath, float] = {}

    @contextmanager
    def span(
        self,
        name: str,
        track: str = "offline",
        category: str = "offline",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        stack = self._stacks.setdefault(track, [])
        path: PhasePath = (track, *stack, name)
        seen = self._seen.get(path, 0) + 1
        self._seen[path] = seen
        measure = (seen - 1) % self._sample_every == 0
        stack.append(name)
        start = time.perf_counter() if measure else 0.0
        try:
            with self._inner.span(name, track=track, category=category, args=args):
                yield
        finally:
            stack.pop()
            if measure:
                elapsed_ms = (time.perf_counter() - start) * 1000.0
                self._measured[path] = self._measured.get(path, 0) + 1
                self._total[path] = self._total.get(path, 0.0) + elapsed_ms
                if path not in self._min or elapsed_ms < self._min[path]:
                    self._min[path] = elapsed_ms
                if path not in self._max or elapsed_ms > self._max[path]:
                    self._max[path] = elapsed_ms

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _estimated_totals(self) -> Dict[PhasePath, float]:
        totals = {}
        for path, seen in self._seen.items():
            measured = self._measured.get(path, 0)
            if measured == 0:
                totals[path] = 0.0
            else:
                totals[path] = self._total[path] * (seen / measured)
        return totals

    def stats(self) -> List[PhaseStats]:
        """Per-path statistics, sorted by estimated self-time, descending.

        Self-time is derived here (total minus direct children's totals,
        clamped at zero — sampling can make children's estimates exceed
        the parent's).
        """
        totals = self._estimated_totals()
        out = []
        for path, seen in self._seen.items():
            children_ms = sum(
                total
                for other, total in totals.items()
                if len(other) == len(path) + 1 and other[: len(path)] == path
            )
            out.append(
                PhaseStats(
                    path=path,
                    count=seen,
                    measured=self._measured.get(path, 0),
                    total_ms=totals[path],
                    self_ms=max(0.0, totals[path] - children_ms),
                    min_ms=self._min.get(path, 0.0),
                    max_ms=self._max.get(path, 0.0),
                )
            )
        out.sort(key=lambda s: (-s.self_ms, s.path))
        return out

    def hotspots(self, n: int = 10) -> str:
        """Top-``n`` phases by self-time as an aligned text table."""
        return render_hotspots(self.stats(), n)

    def folded(self) -> List[str]:
        """Flamegraph-folded lines: ``track;phase;subphase <self µs>``.

        Paths whose integer-microsecond self-time rounds to zero are
        dropped, matching what collapsed-stack tooling expects.
        """
        return folded_lines(self.stats())

    def reset(self) -> None:
        """Drop all aggregates (open phases keep profiling into fresh state)."""
        self._seen.clear()
        self._measured.clear()
        self._total.clear()
        self._min.clear()
        self._max.clear()


# ----------------------------------------------------------------------
# Offline: rebuild phase statistics from recorded span records
# ----------------------------------------------------------------------
def stats_from_spans(records: Any) -> List[PhaseStats]:
    """Aggregate recorded span dicts into :class:`PhaseStats`.

    ``records`` is an iterable of JSONL-style record dicts as produced by
    :func:`repro.obs.exporters.events_jsonl` (and found in a run
    directory's ``merged.jsonl``); non-span records are ignored.  Phase
    nesting is rebuilt from each span's ``parent`` id rather than a live
    stack, so the same hotspot table and flamegraph-folded output the
    in-process :class:`PhaseProfiler` gives are available after the fact
    from a shipped trace — no re-run required.
    """
    spans: List[Dict[str, Any]] = [
        r for r in records if r.get("type") == "span" and "name" in r
    ]
    by_id: Dict[Any, Dict[str, Any]] = {
        s["id"]: s for s in spans if s.get("id") is not None
    }
    path_cache: Dict[Any, PhasePath] = {}

    def path_of(span: Dict[str, Any]) -> PhasePath:
        span_id = span.get("id")
        if span_id is not None and span_id in path_cache:
            return path_cache[span_id]
        # Walk up the parent chain iteratively (no recursion limit risk),
        # then fold the names under the track root.
        chain: List[Dict[str, Any]] = []
        cur: Optional[Dict[str, Any]] = span
        seen_ids = set()
        while cur is not None:
            chain.append(cur)
            parent_id = cur.get("parent")
            if parent_id is None or parent_id in seen_ids:
                break
            seen_ids.add(parent_id)
            nxt = by_id.get(parent_id)
            if nxt is not None and nxt.get("id") in path_cache:
                chain.append(nxt)
                cur = None
                break
            cur = nxt
        chain.reverse()
        if chain and chain[0].get("id") in path_cache:
            path: PhasePath = path_cache[chain[0]["id"]]
            chain = chain[1:]
        else:
            path = (str(span.get("track", "offline")),)
        for node in chain:
            path = (*path, str(node["name"]))
            node_id = node.get("id")
            if node_id is not None:
                path_cache[node_id] = path
        return path

    seen: Dict[PhasePath, int] = {}
    total: Dict[PhasePath, float] = {}
    lo: Dict[PhasePath, float] = {}
    hi: Dict[PhasePath, float] = {}
    for span in spans:
        path = path_of(span)
        dur = float(span.get("dur_ms", 0.0))
        seen[path] = seen.get(path, 0) + 1
        total[path] = total.get(path, 0.0) + dur
        if path not in lo or dur < lo[path]:
            lo[path] = dur
        if path not in hi or dur > hi[path]:
            hi[path] = dur

    out = []
    for path, count in seen.items():
        children_ms = sum(
            t
            for other, t in total.items()
            if len(other) == len(path) + 1 and other[: len(path)] == path
        )
        out.append(
            PhaseStats(
                path=path,
                count=count,
                measured=count,
                total_ms=total[path],
                self_ms=max(0.0, total[path] - children_ms),
                min_ms=lo[path],
                max_ms=hi[path],
            )
        )
    out.sort(key=lambda s: (-s.self_ms, s.path))
    return out


def render_hotspots(stats: List[PhaseStats], n: int = 10) -> str:
    """Top-``n`` phases by self-time as an aligned text table."""
    rows = [("phase", "count", "total_ms", "self_ms", "mean_ms")]
    for stat in stats[:n]:
        rows.append(
            (
                ";".join(stat.path),
                str(stat.count),
                f"{stat.total_ms:.3f}",
                f"{stat.self_ms:.3f}",
                f"{stat.mean_ms:.3f}",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = []
    for row in rows:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        lines.append("  ".join(cells).rstrip())
    return "\n".join(lines)


def folded_lines(stats: List[PhaseStats]) -> List[str]:
    """Flamegraph-folded lines from a stats list (zero-µs paths dropped)."""
    lines = []
    for stat in sorted(stats, key=lambda s: s.path):
        micros = int(round(stat.self_ms * 1000.0))
        if micros > 0:
            lines.append("{} {}".format(";".join(stat.path), micros))
    return lines
