"""Tracing core: spans, events, and the :class:`Tracer` protocol.

The simulator, runtime, and solvers are instrumented with *structural*
trace hooks: per-query lifecycle events (arrival → balancer assignment →
queue wait → batch formation → service → completion/violation), per-batch
service spans, per-sweep solver events, and counter samples (queue depth,
anticipated vs. realized load).  All hooks are opt-in: the default tracer
is :data:`NULL_TRACER`, whose methods are no-ops and whose ``enabled``
flag lets hot loops skip argument construction entirely::

    tracer = config.tracer or NULL_TRACER
    if tracer.enabled:
        tracer.instant("arrival", track="balancer", ts_ms=now, args={...})

Timestamps are simulation milliseconds on online tracks and elapsed
wall-clock milliseconds on offline tracks (solver sweeps, policy
generation phases); a ``track`` is a logical timeline (one per worker,
one for the balancer/monitor, one per offline phase) that exporters map
to Chrome ``trace_event`` threads.

:class:`RecordingTracer` appends records to plain lists, so concurrent
use from the wall-clock runtime's worker threads is safe under CPython's
atomic ``list.append``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Span",
    "Event",
    "Tracer",
    "NullTracer",
    "ForwardingTracer",
    "RecordingTracer",
    "NULL_TRACER",
]


@dataclass(frozen=True)
class Span:
    """One timed interval on a track (Chrome ``ph: "X"`` complete event)."""

    name: str
    track: str
    start_ms: float
    duration_ms: float
    category: str = "sim"
    args: Dict[str, Any] = field(default_factory=dict)
    span_id: int = 0
    parent_id: Optional[int] = None

    @property
    def end_ms(self) -> float:
        """Span end timestamp."""
        return self.start_ms + self.duration_ms


@dataclass(frozen=True)
class Event:
    """One point-in-time record: an instant event or a counter sample."""

    name: str
    track: str
    ts_ms: float
    category: str = "sim"
    args: Dict[str, Any] = field(default_factory=dict)
    #: ``None`` for instant events; the sampled value for counter events.
    value: Optional[float] = None

    @property
    def is_counter(self) -> bool:
        """True when this is a counter sample rather than an instant."""
        return self.value is not None


class Tracer:
    """No-op base tracer; the interface every instrumentation site uses.

    ``enabled`` is ``False`` here so instrumented hot paths can guard with
    a single attribute check.  :class:`RecordingTracer` overrides every
    method to actually retain records.
    """

    enabled: bool = False

    def complete(
        self,
        name: str,
        track: str,
        start_ms: float,
        duration_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span whose start and duration are already known."""

    def instant(
        self,
        name: str,
        track: str,
        ts_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a point-in-time event."""

    def counter(self, name: str, track: str, ts_ms: float, value: float) -> None:
        """Record one sample of a time-varying quantity."""

    @contextmanager
    def span(
        self,
        name: str,
        track: str = "offline",
        category: str = "offline",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        """Time a wall-clock phase as a (possibly nested) span; no-op here."""
        yield


class NullTracer(Tracer):
    """The default tracer: records nothing, costs one attribute check."""


#: Shared no-op tracer used wherever no tracer was configured.
NULL_TRACER = NullTracer()


class ForwardingTracer(Tracer):
    """A tracer that relays every record to an inner tracer.

    Subclasses observe the stream (override a method, call ``super()``)
    without owning storage — the pattern the streaming auditor uses to sit
    between the simulator and a :class:`RecordingTracer`.  With no inner
    tracer the records are consumed by the subclass alone.
    """

    enabled = True

    def __init__(self, inner: Optional[Tracer] = None) -> None:
        self._inner = inner if inner is not None else NULL_TRACER

    @property
    def inner(self) -> Tracer:
        """The tracer records are forwarded to (``NULL_TRACER`` if none)."""
        return self._inner

    def complete(
        self,
        name: str,
        track: str,
        start_ms: float,
        duration_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._inner.complete(name, track, start_ms, duration_ms, category, args)

    def instant(
        self,
        name: str,
        track: str,
        ts_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._inner.instant(name, track, ts_ms, category, args)

    def counter(self, name: str, track: str, ts_ms: float, value: float) -> None:
        self._inner.counter(name, track, ts_ms, value)

    @contextmanager
    def span(
        self,
        name: str,
        track: str = "offline",
        category: str = "offline",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        with self._inner.span(name, track=track, category=category, args=args):
            yield


class RecordingTracer(Tracer):
    """Tracer that retains every span/event in memory for export.

    Wall-clock (context-manager) spans are timestamped in milliseconds
    elapsed since this tracer's creation, so offline tracks line up from
    t=0 just like simulation tracks.
    """

    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._events: List[Event] = []
        self._epoch = time.perf_counter()
        #: Wall-clock instant (Unix epoch, ms) paired with the
        #: ``perf_counter`` epoch above.  Cross-process aggregation uses
        #: it to anchor each process's t=0 on a shared timeline.
        self.anchor_unix_ms: float = time.time() * 1000.0
        self._next_id = 1
        #: Open context-manager spans per track (for parent links).
        self._open: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        track: str,
        start_ms: float,
        duration_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        span_id = self._next_id
        self._next_id += 1
        self._spans.append(
            Span(
                name=name,
                track=track,
                start_ms=start_ms,
                duration_ms=duration_ms,
                category=category,
                args=args or {},
                span_id=span_id,
            )
        )

    def instant(
        self,
        name: str,
        track: str,
        ts_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._events.append(
            Event(
                name=name,
                track=track,
                ts_ms=ts_ms,
                category=category,
                args=args or {},
            )
        )

    def counter(self, name: str, track: str, ts_ms: float, value: float) -> None:
        self._events.append(
            Event(
                name=name,
                track=track,
                ts_ms=ts_ms,
                category="counter",
                value=float(value),
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        track: str = "offline",
        category: str = "offline",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        start = self._now_ms()
        span_id = self._next_id
        self._next_id += 1
        stack = self._open.setdefault(track, [])
        parent = stack[-1] if stack else None
        stack.append(span_id)
        try:
            yield
        finally:
            stack.pop()
            self._spans.append(
                Span(
                    name=name,
                    track=track,
                    start_ms=start,
                    duration_ms=self._now_ms() - start,
                    category=category,
                    args=args or {},
                    span_id=span_id,
                    parent_id=parent,
                )
            )

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._epoch) * 1000.0

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        """All recorded spans (context-manager spans appear on exit)."""
        return tuple(self._spans)

    @property
    def events(self) -> Tuple[Event, ...]:
        """All recorded instant events and counter samples."""
        return tuple(self._events)

    def tracks(self) -> List[str]:
        """Every track name seen so far, in deterministic (sorted) order."""
        names = {s.track for s in self._spans} | {e.track for e in self._events}
        return sorted(names)

    def clear(self) -> None:
        """Drop all recorded spans and events (open spans stay open)."""
        self._spans.clear()
        self._events.clear()
