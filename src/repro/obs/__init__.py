"""Observability: tracing, metrics, logging, and exporters.

The paper's claims are distributional (SLO violation rates, expected
accuracy, policy-generation runtime), so this package makes every run
inspectable *as it happens* rather than only through the frozen
end-of-run :class:`~repro.sim.metrics.SimulationMetrics`:

- :mod:`repro.obs.trace` — per-query lifecycle spans/events with a
  no-op default tracer (zero overhead when off);
- :mod:`repro.obs.metrics` — counters, gauges (with time series), and
  streaming histograms in a Prometheus-flavoured registry;
- :mod:`repro.obs.exporters` — JSONL event log, Chrome ``trace_event``
  JSON (Perfetto / ``chrome://tracing``), Prometheus text dump;
- :mod:`repro.obs.reconstruct` — recompute violation rate / batch sizes
  from a trace alone (the instrumentation's correctness oracle);
- :mod:`repro.obs.log` — package-wide logging setup for the CLI.

Typical use::

    from repro.obs import MetricsRegistry, RecordingTracer, exporters

    tracer, registry = RecordingTracer(), MetricsRegistry()
    config = SimulationConfig(..., tracer=tracer, registry=registry)
    Simulation(config).run(selector, trace)
    exporters.write_chrome_trace(tracer, "trace.json")
    exporters.write_prometheus_text(registry, "metrics.prom")
"""

from repro.obs import exporters
from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.reconstruct import (
    TraceSummary,
    reconstruct_from_jsonl,
    reconstruct_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    Event,
    NullTracer,
    RecordingTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "Tracer",
    "TraceSummary",
    "configure",
    "exporters",
    "get_logger",
    "reconstruct_from_jsonl",
    "reconstruct_metrics",
]
