"""Observability: tracing, metrics, auditing, and exporters.

The paper's claims are distributional (SLO violation rates, expected
accuracy, policy-generation runtime), so this package makes every run
inspectable *as it happens* rather than only through the frozen
end-of-run :class:`~repro.sim.metrics.SimulationMetrics`:

- :mod:`repro.obs.trace` — per-query lifecycle spans/events with a
  no-op default tracer (zero overhead when off);
- :mod:`repro.obs.metrics` — counters, gauges (with time series), and
  streaming histograms in a Prometheus-flavoured registry;
- :mod:`repro.obs.audit` — the live guarantee auditor: per-window §5.1
  bound verdicts with confidence intervals, empirical-vs-stationary
  occupancy divergence, and Page–Hinkley load-drift detection;
- :mod:`repro.obs.exporters` — JSONL event log, Chrome ``trace_event``
  JSON (Perfetto / ``chrome://tracing``), Prometheus text dump;
- :mod:`repro.obs.reconstruct` — recompute violation rate / accuracy /
  batch sizes from a trace alone (the instrumentation's correctness
  oracle);
- :mod:`repro.obs.aggregate` — cross-process trace shipping: per-worker
  JSONL shard tracers + registries installed by a pool initializer,
  merged back into one multi-track tracer/registry in serial cell order;
- :mod:`repro.obs.profile` — the phase profiler: nested wall-clock phase
  timers on the tracer protocol, with hotspot tables and
  flamegraph-folded output (online, or rebuilt offline from recorded
  spans);
- :mod:`repro.obs.attribution` — tail-latency attribution: exact
  per-query phase decomposition, model-choice blame, multi-window SLO
  burn-rate alerting, and tail exemplar retention, feeding ``ramsis
  explain`` and the live ``ramsis top`` view;
- :mod:`repro.obs.report` — run-directory reports (text/HTML) and the
  benchmark history log with regression checking;
- :mod:`repro.obs.log` — package-wide logging setup for the CLI.

Typical use::

    from repro.obs import MetricsRegistry, RecordingTracer, exporters

    tracer, registry = RecordingTracer(), MetricsRegistry()
    config = SimulationConfig(..., tracer=tracer, registry=registry)
    Simulation(config).run(selector, trace)
    exporters.write_chrome_trace(tracer, "trace.json")
    exporters.write_prometheus_text(registry, "metrics.prom")
"""

from repro.obs import exporters
from repro.obs.aggregate import (
    MergedRun,
    ShardInfo,
    ShardTracer,
    WorkerObs,
    init_worker_obs,
    merge_run_dir,
    new_run_dir,
    worker_obs,
    write_live_snapshot,
    write_merged_artifacts,
)
from repro.obs.attribution import (
    AttributionRow,
    BurnWindow,
    LatencyAttributor,
    PhaseBreakdown,
    attribution_from_jsonl,
    attribution_from_tracer,
    exact_phase_split,
)
from repro.obs.audit import (
    AuditAlert,
    AuditBounds,
    AuditConfig,
    AuditReport,
    DriftEvent,
    GuaranteeAuditor,
    OccupancySummary,
    PageHinkley,
    WindowVerdict,
    hoeffding_interval,
    wilson_interval,
)
from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    PhaseProfiler,
    PhaseStats,
    folded_lines,
    render_hotspots,
    stats_from_spans,
)
from repro.obs.reconstruct import (
    TraceSummary,
    reconstruct_from_jsonl,
    reconstruct_metrics,
)
from repro.obs.report import (
    Regression,
    append_bench_history,
    check_bench_history,
    render_run_report,
    render_top_frame,
    write_run_report,
)
from repro.obs.trace import (
    NULL_TRACER,
    Event,
    ForwardingTracer,
    NullTracer,
    RecordingTracer,
    Span,
    Tracer,
)

__all__ = [
    "AttributionRow",
    "AuditAlert",
    "AuditBounds",
    "AuditConfig",
    "AuditReport",
    "BurnWindow",
    "Counter",
    "DriftEvent",
    "Event",
    "ForwardingTracer",
    "Gauge",
    "GuaranteeAuditor",
    "Histogram",
    "LatencyAttributor",
    "MergedRun",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OccupancySummary",
    "PageHinkley",
    "PhaseBreakdown",
    "PhaseProfiler",
    "PhaseStats",
    "RecordingTracer",
    "Regression",
    "ShardInfo",
    "ShardTracer",
    "Span",
    "Tracer",
    "TraceSummary",
    "WindowVerdict",
    "WorkerObs",
    "append_bench_history",
    "attribution_from_jsonl",
    "attribution_from_tracer",
    "check_bench_history",
    "configure",
    "exact_phase_split",
    "exporters",
    "folded_lines",
    "get_logger",
    "hoeffding_interval",
    "init_worker_obs",
    "merge_run_dir",
    "new_run_dir",
    "reconstruct_from_jsonl",
    "reconstruct_metrics",
    "render_hotspots",
    "render_run_report",
    "render_top_frame",
    "stats_from_spans",
    "wilson_interval",
    "worker_obs",
    "write_live_snapshot",
    "write_merged_artifacts",
    "write_run_report",
]
