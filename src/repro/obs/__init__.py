"""Observability: tracing, metrics, auditing, and exporters.

The paper's claims are distributional (SLO violation rates, expected
accuracy, policy-generation runtime), so this package makes every run
inspectable *as it happens* rather than only through the frozen
end-of-run :class:`~repro.sim.metrics.SimulationMetrics`:

- :mod:`repro.obs.trace` — per-query lifecycle spans/events with a
  no-op default tracer (zero overhead when off);
- :mod:`repro.obs.metrics` — counters, gauges (with time series), and
  streaming histograms in a Prometheus-flavoured registry;
- :mod:`repro.obs.audit` — the live guarantee auditor: per-window §5.1
  bound verdicts with confidence intervals, empirical-vs-stationary
  occupancy divergence, and Page–Hinkley load-drift detection;
- :mod:`repro.obs.exporters` — JSONL event log, Chrome ``trace_event``
  JSON (Perfetto / ``chrome://tracing``), Prometheus text dump;
- :mod:`repro.obs.reconstruct` — recompute violation rate / accuracy /
  batch sizes from a trace alone (the instrumentation's correctness
  oracle);
- :mod:`repro.obs.log` — package-wide logging setup for the CLI.

Typical use::

    from repro.obs import MetricsRegistry, RecordingTracer, exporters

    tracer, registry = RecordingTracer(), MetricsRegistry()
    config = SimulationConfig(..., tracer=tracer, registry=registry)
    Simulation(config).run(selector, trace)
    exporters.write_chrome_trace(tracer, "trace.json")
    exporters.write_prometheus_text(registry, "metrics.prom")
"""

from repro.obs import exporters
from repro.obs.audit import (
    AuditAlert,
    AuditBounds,
    AuditConfig,
    AuditReport,
    DriftEvent,
    GuaranteeAuditor,
    OccupancySummary,
    PageHinkley,
    WindowVerdict,
    hoeffding_interval,
    wilson_interval,
)
from repro.obs.log import configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.reconstruct import (
    TraceSummary,
    reconstruct_from_jsonl,
    reconstruct_metrics,
)
from repro.obs.trace import (
    NULL_TRACER,
    Event,
    ForwardingTracer,
    NullTracer,
    RecordingTracer,
    Span,
    Tracer,
)

__all__ = [
    "AuditAlert",
    "AuditBounds",
    "AuditConfig",
    "AuditReport",
    "Counter",
    "DriftEvent",
    "Event",
    "ForwardingTracer",
    "Gauge",
    "GuaranteeAuditor",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "OccupancySummary",
    "PageHinkley",
    "RecordingTracer",
    "Span",
    "Tracer",
    "TraceSummary",
    "WindowVerdict",
    "configure",
    "exporters",
    "get_logger",
    "hoeffding_interval",
    "reconstruct_from_jsonl",
    "reconstruct_metrics",
    "wilson_interval",
]
