"""Recompute run statistics from a trace alone.

A correct trace is a *sufficient statistic* for the headline numbers:
every query completion (or drop) appears as a ``completion`` instant with
its ``satisfied`` flag, and every MS&S decision appears as a service span
with its batch size.  :func:`reconstruct_metrics` folds those records
back into the same aggregates :class:`~repro.sim.metrics.SimulationMetrics`
reports, which the integration tests compare *exactly* — any divergence
means the instrumentation dropped or duplicated lifecycle events.

Works from a live :class:`~repro.obs.trace.RecordingTracer` or from a
JSONL event log written by
:func:`repro.obs.exporters.write_events_jsonl`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Union

from repro.obs.trace import RecordingTracer

__all__ = ["TraceSummary", "reconstruct_metrics", "reconstruct_from_jsonl"]

#: Span name used by all service-span emitters.
SERVICE_SPAN = "serve"
#: Instant name used by all completion emitters (drops included).
COMPLETION_EVENT = "completion"
ARRIVAL_EVENT = "arrival"


@dataclass(frozen=True)
class TraceSummary:
    """Aggregates recomputed from lifecycle records only."""

    total_queries: int
    satisfied_queries: int
    decisions: int
    batch_total: int
    arrivals: int
    #: Sum of per-query model accuracy over satisfied completions, folded
    #: in record order — the same summation
    #: :class:`~repro.sim.metrics.MetricsCollector` performs, so the
    #: reconstructed accuracy matches the simulator's float-exactly.
    accuracy_sum: float = 0.0

    @property
    def violation_rate(self) -> float:
        """Fraction of completed queries that missed their deadline."""
        if self.total_queries == 0:
            return 0.0
        return 1.0 - self.satisfied_queries / self.total_queries

    @property
    def accuracy_per_satisfied_query(self) -> float:
        """Mean model accuracy over satisfied completions (0.0 if none)."""
        if self.satisfied_queries == 0:
            return 0.0
        return self.accuracy_sum / self.satisfied_queries

    @property
    def mean_batch_size(self) -> float:
        """Mean served-batch size over all MS&S decisions."""
        if self.decisions == 0:
            return 0.0
        return self.batch_total / self.decisions


def _fold(records: Iterable[Mapping]) -> TraceSummary:
    total = satisfied = decisions = batch_total = arrivals = 0
    accuracy_sum = 0.0
    for record in records:
        name = record.get("name")
        kind = record.get("type")
        if kind == "instant":
            if name == COMPLETION_EVENT:
                total += 1
                args = record.get("args", {})
                if args.get("satisfied"):
                    satisfied += 1
                    accuracy_sum += float(args.get("accuracy", 0.0))
            elif name == ARRIVAL_EVENT:
                arrivals += 1
        elif kind == "span" and name == SERVICE_SPAN:
            decisions += 1
            batch_total += int(record.get("args", {}).get("batch", 0))
    return TraceSummary(
        total_queries=total,
        satisfied_queries=satisfied,
        decisions=decisions,
        batch_total=batch_total,
        arrivals=arrivals,
        accuracy_sum=accuracy_sum,
    )


def reconstruct_metrics(tracer: RecordingTracer) -> TraceSummary:
    """Recompute the summary from an in-memory tracer."""
    records = []
    for span in tracer.spans:
        records.append({"type": "span", "name": span.name, "args": span.args})
    for event in tracer.events:
        if not event.is_counter:
            records.append(
                {"type": "instant", "name": event.name, "args": event.args}
            )
    return _fold(records)


def _iter_jsonl(path: Path) -> Iterable[Mapping]:
    """Stream records, skipping unparseable lines with a warning.

    A crashed worker truncates its shard mid-line; every record before
    the tear is still good, so reconstruction degrades gracefully
    instead of raising on the torn line.
    """
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                from repro.obs.log import get_logger

                get_logger("obs.reconstruct").warning(
                    "%s:%d: skipping unparseable record (truncated write?)",
                    path,
                    lineno,
                )


def reconstruct_from_jsonl(path: Union[str, Path]) -> TraceSummary:
    """Recompute the summary from a JSONL event log on disk.

    The log is streamed line by line — shard files from large parallel
    runs never need to fit in memory.
    """
    return _fold(_iter_jsonl(Path(path)))
