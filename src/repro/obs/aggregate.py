"""Cross-process trace shipping and aggregation.

``ProcessPoolExecutor`` workers cannot share the parent's
:class:`~repro.obs.trace.RecordingTracer` or
:class:`~repro.obs.metrics.MetricsRegistry` — records would have to
cross a pickle boundary on every event.  Instead each worker gets a
file-backed :class:`ShardTracer` plus its own registry (installed by
:func:`init_worker_obs`, the pool initializer) and writes *shards* under
a per-run directory::

    <run_dir>/shard-<pid>.jsonl     one JSONL record per span/event
    <run_dir>/metrics-<pid>.json    the worker registry, serialized

After the pool drains, :func:`merge_run_dir` reads every shard back into
one multi-track tracer and one registry:

- records are replayed in **cell order** — each record carries the cell
  sequence number (``seq``, stamped via :meth:`ShardTracer.set_sequence`)
  and a per-shard emission counter (``n``), and the merge sorts by
  ``(seq, shard, n)``, so a parallel run folds to byte-identical
  aggregates as the serial run (``reconstruct_metrics`` equality is the
  test suite's oracle);
- worker tracks are renamed ``w<idx>/<track>`` so exporters can group
  one track set per worker process (see ``split_processes`` in
  :func:`repro.obs.exporters.chrome_trace`);
- wall-clock (``category == "offline"``) timestamps are re-anchored:
  every shard header records the Unix time paired with the worker's
  ``perf_counter`` epoch, and the merge shifts each shard's offline
  records by its anchor delta against the earliest anchor, making
  cross-process timings comparable and non-negative.  Simulation-time
  records already share a timeline and are never shifted;
- registries merge with counter **sums**, histogram **combines**, and
  gauges republished under a per-worker ``worker=<idx>`` label (gauges
  are last-write-wins, so merging them unlabelled would lose data).

Shards are themselves valid input to
:func:`repro.obs.reconstruct.reconstruct_from_jsonl` — the record schema
is the :func:`repro.obs.exporters.events_jsonl` schema plus the
``seq``/``n`` ordering fields.
"""

from __future__ import annotations

import atexit
import json
import os
import re
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer, Tracer

__all__ = [
    "ShardTracer",
    "WorkerObs",
    "init_worker_obs",
    "worker_obs",
    "new_run_dir",
    "ShardInfo",
    "MergedRun",
    "merge_run_dir",
    "write_merged_artifacts",
    "write_live_snapshot",
]

#: Bump when the shard record layout changes incompatibly.
SHARD_SCHEMA = 1

_SHARD_RE = re.compile(r"shard-(\d+)\.jsonl$")
_METRICS_RE = re.compile(r"metrics-(\d+)\.json$")


def _json_default(value: Any) -> Any:
    """Make numpy scalars (and other exotic leaves) JSON-serializable."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class ShardTracer(Tracer):
    """File-backed JSONL tracer for one worker process.

    Mirrors :class:`~repro.obs.trace.RecordingTracer` (wall-clock spans
    relative to a ``perf_counter`` epoch, per-track parent stacks) but
    appends each record to a shard file instead of keeping it in memory,
    so a long worker's trace never grows the process heap.  Every record
    is stamped with the current *sequence number* (the cell index, set by
    the pool task via :meth:`set_sequence`) and a monotonically
    increasing per-shard counter, which is what lets the parent merge
    shards back into serial cell order.
    """

    enabled = True

    def __init__(self, path: Union[str, Path], pid: Optional[int] = None) -> None:
        self._path = Path(path)
        self.pid = os.getpid() if pid is None else pid
        self._epoch = time.perf_counter()
        #: Unix wall-clock (ms) paired with the ``perf_counter`` epoch.
        self.anchor_unix_ms: float = time.time() * 1000.0
        self._seq = 0
        self._n = 0
        self._next_id = 1
        self._open: Dict[str, List[int]] = {}
        self._fh = self._path.open("w", encoding="utf-8")
        self._write_raw(
            {
                "type": "shard_header",
                "schema": SHARD_SCHEMA,
                "pid": self.pid,
                "anchor_unix_ms": self.anchor_unix_ms,
            }
        )

    @property
    def path(self) -> Path:
        """The shard file this tracer appends to."""
        return self._path

    def set_sequence(self, seq: int) -> None:
        """Stamp subsequent records with cell index ``seq`` (merge order)."""
        self._seq = int(seq)

    # ------------------------------------------------------------------
    # Recording (events_jsonl schema + seq/n)
    # ------------------------------------------------------------------
    def _write_raw(self, record: Dict[str, Any]) -> None:
        self._fh.write(
            json.dumps(record, sort_keys=True, default=_json_default) + "\n"
        )

    def _write(self, record: Dict[str, Any]) -> None:
        record["seq"] = self._seq
        record["n"] = self._n
        self._n += 1
        self._write_raw(record)

    def complete(
        self,
        name: str,
        track: str,
        start_ms: float,
        duration_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        span_id = self._next_id
        self._next_id += 1
        record: Dict[str, Any] = {
            "type": "span",
            "name": name,
            "track": track,
            "ts_ms": start_ms,
            "dur_ms": duration_ms,
            "cat": category,
        }
        if args:
            record["args"] = args
        record["id"] = span_id
        self._write(record)

    def instant(
        self,
        name: str,
        track: str,
        ts_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        record: Dict[str, Any] = {
            "type": "instant",
            "name": name,
            "track": track,
            "ts_ms": ts_ms,
            "cat": category,
        }
        if args:
            record["args"] = args
        self._write(record)

    def counter(self, name: str, track: str, ts_ms: float, value: float) -> None:
        self._write(
            {
                "type": "counter",
                "name": name,
                "track": track,
                "ts_ms": ts_ms,
                "cat": "counter",
                "value": float(value),
            }
        )

    @contextmanager
    def span(
        self,
        name: str,
        track: str = "offline",
        category: str = "offline",
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator[None]:
        start = self._now_ms()
        span_id = self._next_id
        self._next_id += 1
        stack = self._open.setdefault(track, [])
        parent = stack[-1] if stack else None
        stack.append(span_id)
        try:
            yield
        finally:
            stack.pop()
            record: Dict[str, Any] = {
                "type": "span",
                "name": name,
                "track": track,
                "ts_ms": start,
                "dur_ms": self._now_ms() - start,
                "cat": category,
            }
            # ``args`` is captured by reference at exit, like
            # RecordingTracer: a dict mutated inside the with-block
            # records its final contents (the cache get/put outcome
            # pattern).
            if args:
                record["args"] = args
            if parent is not None:
                record["parent"] = parent
            record["id"] = span_id
            self._write(record)

    def _now_ms(self) -> float:
        return (time.perf_counter() - self._epoch) * 1000.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Push buffered records to disk (call after every pool task)."""
        self._fh.flush()

    def close(self) -> None:
        """Flush and close the shard file; further records raise."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


@dataclass
class WorkerObs:
    """The per-worker observability bundle installed by the initializer."""

    tracer: ShardTracer
    registry: MetricsRegistry
    run_dir: Path
    metrics_path: Path
    #: Forwarding-tracer tap around ``tracer``; pool tasks attach this so
    #: the worker accumulates a live attribution view across its cells.
    attributor: Optional[Any] = None

    def flush(self) -> None:
        """Persist the shard tail and fresh registry/attribution snapshots.

        Called at the end of every pool task (and again at interpreter
        exit as a backstop), so the on-disk state is always the state
        after the worker's most recent completed task — this is the
        ``ramsis top`` feed for in-flight parallel sweeps.
        """
        self.tracer.flush()
        self.metrics_path.write_text(
            json.dumps(
                self.registry.to_json_dict(),
                sort_keys=True,
                default=_json_default,
            )
        )
        if (
            self.attributor is not None
            and self.attributor.to_json_dict()["totals"]["queries"]
        ):
            write_live_snapshot(
                self.run_dir,
                attributor=self.attributor,
                pid=self.tracer.pid,
            )


_WORKER_OBS: Optional[WorkerObs] = None


def init_worker_obs(run_dir: str) -> None:
    """Process-pool initializer: install shard tracer + registry.

    Runs once per worker process.  The shard and metrics filenames embed
    the worker pid, so concurrent workers never collide; the merge
    assigns stable worker indices by sorting pids.
    """
    from repro.obs.attribution import LatencyAttributor

    global _WORKER_OBS
    directory = Path(run_dir)
    directory.mkdir(parents=True, exist_ok=True)
    pid = os.getpid()
    tracer = ShardTracer(directory / f"shard-{pid}.jsonl", pid=pid)
    obs = WorkerObs(
        tracer=tracer,
        registry=MetricsRegistry(),
        run_dir=directory,
        metrics_path=directory / f"metrics-{pid}.json",
        attributor=LatencyAttributor(inner=tracer),
    )
    _WORKER_OBS = obs
    atexit.register(obs.flush)


def worker_obs() -> Optional[WorkerObs]:
    """This process's worker bundle, or ``None`` outside an initialized pool."""
    return _WORKER_OBS


def new_run_dir(prefix: str = "ramsis-run-") -> Path:
    """A fresh private directory for one parallel run's shards."""
    return Path(tempfile.mkdtemp(prefix=prefix))


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardInfo:
    """Provenance of one worker shard after a merge."""

    path: Path
    pid: int
    worker_index: int
    anchor_unix_ms: float
    records: int


@dataclass
class MergedRun:
    """The result of folding a run directory back into one timeline."""

    tracer: RecordingTracer
    registry: MetricsRegistry
    shards: List[ShardInfo] = field(default_factory=list)

    @property
    def records(self) -> int:
        """Total merged records across all shards."""
        return sum(s.records for s in self.shards)


def _iter_jsonl(path: Path) -> Iterator[Dict[str, Any]]:
    """Yield one record per parseable line, skipping truncated tails.

    A worker killed mid-write leaves a final line that is not valid
    JSON; merging must degrade to a warning (the remaining records are
    intact) instead of losing the whole run.
    """
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                from repro.obs.log import get_logger

                get_logger("obs.aggregate").warning(
                    "%s:%d: skipping unparseable shard record "
                    "(worker crashed mid-write?)",
                    path,
                    lineno,
                )


def _shard_pid(path: Path) -> int:
    match = _SHARD_RE.search(path.name)
    return int(match.group(1)) if match else 0


def merge_run_dir(
    run_dir: Union[str, Path],
    tracer: Optional[Tracer] = None,
    registry: Optional[MetricsRegistry] = None,
) -> MergedRun:
    """Fold every shard under ``run_dir`` into one tracer + registry.

    Records are replayed in ``(seq, worker, n)`` order — i.e. serial cell
    order — with worker tracks renamed ``w<idx>/<track>`` and offline
    (wall-clock) timestamps re-anchored against the earliest shard/parent
    anchor.  When ``tracer``/``registry`` are given, records and metrics
    merge *into* them (the parent's sweep-level records stay in place);
    otherwise fresh ones are created.  The returned
    :class:`MergedRun.tracer` is always a :class:`RecordingTracer` usable
    with the exporters.
    """
    directory = Path(run_dir)
    shard_paths = sorted(
        (p for p in directory.glob("shard-*.jsonl") if _SHARD_RE.search(p.name)),
        key=_shard_pid,
    )

    if isinstance(tracer, RecordingTracer):
        recorder: RecordingTracer = tracer
        extra_sink: Optional[Tracer] = None
    else:
        recorder = RecordingTracer()
        extra_sink = tracer if (tracer is not None and tracer.enabled) else None
    out_registry = registry if registry is not None else MetricsRegistry()

    keyed: List[Tuple[int, int, int, Dict[str, Any]]] = []
    shards: List[ShardInfo] = []
    pid_to_index: Dict[int, int] = {}
    anchors: List[float] = []
    parent_anchor = getattr(tracer, "anchor_unix_ms", None)
    if parent_anchor is not None:
        anchors.append(float(parent_anchor))

    for widx, path in enumerate(shard_paths):
        pid = _shard_pid(path)
        pid_to_index[pid] = widx
        anchor = 0.0
        count = 0
        for record in _iter_jsonl(path):
            if record.get("type") == "shard_header":
                anchor = float(record.get("anchor_unix_ms", 0.0))
                continue
            count += 1
            keyed.append(
                (int(record.get("seq", 0)), widx, int(record.get("n", 0)), record)
            )
        anchors.append(anchor)
        shards.append(
            ShardInfo(
                path=path,
                pid=pid,
                worker_index=widx,
                anchor_unix_ms=anchor,
                records=count,
            )
        )

    base_anchor = min(anchors) if anchors else 0.0
    offsets = {
        s.worker_index: max(0.0, s.anchor_unix_ms - base_anchor) for s in shards
    }

    keyed.sort(key=lambda item: item[:3])
    for seq, widx, _n, record in keyed:
        kind = record.get("type")
        name = record.get("name", "")
        track = "w{}/{}".format(widx, record.get("track", "offline"))
        category = record.get("cat", "sim")
        ts_ms = float(record.get("ts_ms", 0.0))
        if category == "offline":
            ts_ms += offsets.get(widx, 0.0)
        args = record.get("args")
        if kind == "span":
            dur = float(record.get("dur_ms", 0.0))
            recorder.complete(name, track, ts_ms, dur, category, args)
            if extra_sink is not None:
                extra_sink.complete(name, track, ts_ms, dur, category, args)
        elif kind == "instant":
            recorder.instant(name, track, ts_ms, category, args)
            if extra_sink is not None:
                extra_sink.instant(name, track, ts_ms, category, args)
        elif kind == "counter":
            value = float(record.get("value", 0.0))
            recorder.counter(name, track, ts_ms, value)
            if extra_sink is not None:
                extra_sink.counter(name, track, ts_ms, value)

    metrics_paths = sorted(
        (p for p in directory.glob("metrics-*.json") if _METRICS_RE.search(p.name)),
        key=lambda p: int(_METRICS_RE.search(p.name).group(1)),
    )
    next_index = len(shards)
    for path in metrics_paths:
        pid = int(_METRICS_RE.search(path.name).group(1))
        widx = pid_to_index.get(pid)
        if widx is None:
            widx = next_index
            next_index += 1
        data = json.loads(path.read_text())
        out_registry.merge_json_dict(data, extra_labels={"worker": str(widx)})

    return MergedRun(tracer=recorder, registry=out_registry, shards=shards)


def write_merged_artifacts(
    merged: MergedRun, out_dir: Union[str, Path]
) -> Dict[str, Path]:
    """Write the merged run's exportable artifacts under ``out_dir``.

    Produces ``merged.jsonl`` (reconstruction input), ``trace.json``
    (Chrome/Perfetto, one process group per worker), ``metrics.prom``,
    ``metrics.json`` (the re-mergeable registry snapshot), and
    ``attribution.json`` — the tail-latency attribution tables folded
    from the merged tracer, whose ``(seq, worker, n)`` replay order is
    serial cell order, so the tables equal a serially attached
    attributor's exactly (see :mod:`repro.obs.attribution`).  Returns
    the artifact paths by name.
    """
    from repro.obs import exporters
    from repro.obs.attribution import attribution_from_tracer

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "events": exporters.write_events_jsonl(
            merged.tracer, directory / "merged.jsonl"
        ),
        "chrome": exporters.write_chrome_trace(
            merged.tracer, directory / "trace.json", split_processes=True
        ),
        "prometheus": exporters.write_prometheus_text(
            merged.registry, directory / "metrics.prom"
        ),
    }
    metrics_json = directory / "metrics.json"
    metrics_json.write_text(
        json.dumps(
            merged.registry.to_json_dict(), sort_keys=True, default=_json_default
        )
    )
    paths["metrics"] = metrics_json
    # Only written when the trace carries the lifecycle schema the
    # attributor understands — older shards fold to zero queries.
    snapshot = attribution_from_tracer(merged.tracer).to_json_dict()
    if snapshot["totals"]["queries"]:
        attribution_json = directory / "attribution.json"
        attribution_json.write_text(
            json.dumps(snapshot, sort_keys=True, default=_json_default)
        )
        paths["attribution"] = attribution_json
    return paths


def write_live_snapshot(
    run_dir: Union[str, Path],
    registry: Optional[MetricsRegistry] = None,
    attributor: Optional[Any] = None,
    pid: Optional[int] = None,
) -> List[Path]:
    """Atomically publish ``metrics-<pid>.json`` / ``attribution-<pid>.json``.

    The periodic snapshot feed for ``ramsis top``: the runtime controller
    (and anything else that wants a live view) calls this on a timer;
    sweep workers get the metrics half for free from
    :meth:`WorkerObs.flush`.  Writes go through a temp file + ``rename``
    so a concurrently polling reader never sees a torn snapshot.
    """
    directory = Path(run_dir)
    directory.mkdir(parents=True, exist_ok=True)
    pid = os.getpid() if pid is None else pid
    written: List[Path] = []
    payloads = []
    if registry is not None:
        payloads.append((f"metrics-{pid}.json", registry.to_json_dict()))
    if attributor is not None:
        payloads.append((f"attribution-{pid}.json", attributor.to_json_dict()))
    for name, payload in payloads:
        target = directory / name
        tmp = directory / f".{name}.tmp"
        tmp.write_text(
            json.dumps(payload, sort_keys=True, default=_json_default)
        )
        tmp.replace(target)
        written.append(target)
    return written
