"""Live guarantee auditing: online validation of the §5.1 bounds.

The §5.1 analysis promises that a policy's **expected accuracy** is a lower
bound on online accuracy per satisfied query and its **expected SLO
violation rate** an upper bound on the online violation rate.  Offline the
repo checks this in batch (Tables 3/4); :class:`GuaranteeAuditor` checks it
*while a run is in flight*, turning the static guarantees into a runtime
contract:

1. **Bound audit** — per sliding window of completions, the observed
   violation rate and accuracy per satisfied query are estimated with a
   confidence interval (Wilson for proportions, Hoeffding for the bounded
   accuracy mean) and compared against the active policy's
   :class:`~repro.core.guarantees.PolicyGuarantees`.  A window is verdicted
   ``ok`` unless the *entire* interval sits on the wrong side of the bound
   (``bound-breach-beyond-CI``) — sampling noise alone never raises a
   breach.
2. **Occupancy audit** — every MS&S decision observes the worker state
   ``(n, T_j)``; the empirical decision-epoch histogram is compared by
   total-variation distance against the §5.1 stationary distribution
   (:func:`~repro.core.guarantees.stationary_occupancy`), validating the
   power-iteration machinery online.
3. **Load-drift audit** — a two-sided Page–Hinkley detector runs on the
   realized arrival rate (the auditor keeps its own moving-average
   monitor) and flags when load leaves the active policy's profiled
   operating point before the selector has switched policies.

The auditor is a :class:`~repro.obs.trace.ForwardingTracer`: it taps the
simulator's existing lifecycle stream (``arrival`` instants, ``serve``
spans, ``completion`` instants), relays everything to an optional inner
:class:`~repro.obs.trace.RecordingTracer`, and emits its own ``audit_*``
events onto an ``audit`` track so verdicts flow through the JSONL/Chrome
exporters unchanged.  With no auditor configured the simulator hot path is
untouched (the usual ``tracer.enabled`` guard).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from statistics import NormalDist
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.guarantees import PolicyGuarantees, total_variation
from repro.core.policy import Policy
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import ForwardingTracer, Tracer

__all__ = [
    "wilson_interval",
    "hoeffding_interval",
    "PageHinkley",
    "AuditBounds",
    "AuditConfig",
    "AuditAlert",
    "WindowVerdict",
    "DriftEvent",
    "OccupancySummary",
    "AuditReport",
    "GuaranteeAuditor",
]

#: Window verdict when the whole confidence interval violates a bound.
BREACH = "bound-breach-beyond-CI"
#: Window verdict when the bound is compatible with the observations.
OK = "ok"
#: Verdict when no predicted bound was configured for the check.
UNCHECKED = "unchecked"


# ----------------------------------------------------------------------
# Interval estimators
# ----------------------------------------------------------------------
def wilson_interval(
    successes: int, total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns the trivial ``(0, 1)`` interval when ``total`` is zero, so
    empty windows can never breach a bound.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if total <= 0:
        return (0.0, 1.0)
    z = NormalDist().inv_cdf(0.5 + confidence / 2.0)
    phat = successes / total
    denom = 1.0 + z * z / total
    center = (phat + z * z / (2.0 * total)) / denom
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / total + z * z / (4.0 * total * total))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def hoeffding_interval(
    mean: float, total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Hoeffding interval for the mean of ``total`` values bounded in [0, 1]."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if total <= 0:
        return (0.0, 1.0)
    epsilon = math.sqrt(math.log(2.0 / (1.0 - confidence)) / (2.0 * total))
    return (max(0.0, mean - epsilon), min(1.0, mean + epsilon))


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------
class _RateEstimator:
    """Trailing moving-average arrival rate — the load monitor's rule,
    replicated here so the auditor's drift signal is independent of
    whatever monitor the run uses (e.g. the oracle), and so ``obs`` keeps
    no import edge into the ``sim`` layer."""

    __slots__ = ("_window_ms", "_arrivals")

    def __init__(self, window_ms: float) -> None:
        self._window_ms = window_ms
        self._arrivals: Deque[float] = deque()

    def record(self, t_ms: float) -> float:
        """Fold one arrival at ``t_ms`` and return the current rate (QPS)."""
        arrivals = self._arrivals
        arrivals.append(t_ms)
        cutoff = t_ms - self._window_ms
        while arrivals and arrivals[0] < cutoff:
            arrivals.popleft()
        horizon = min(t_ms, self._window_ms)
        if horizon <= 0.0:
            return 0.0
        return len(arrivals) / horizon * 1000.0


class PageHinkley:
    """Two-sided Page–Hinkley change detector on a normalized stream.

    Samples are fed as ``value / reference - 1`` so the tolerance
    (``delta``) and alarm threshold (``threshold``) are fractions of the
    reference level, independent of the absolute load.  ``update`` returns
    ``"up"``/``"down"`` on the step that crosses the threshold, else
    ``None``; :meth:`reset` re-arms the detector around a new reference.
    """

    def __init__(
        self,
        reference: float,
        delta: float = 0.15,
        threshold: float = 8.0,
        min_samples: int = 30,
    ) -> None:
        if reference <= 0.0:
            raise ValueError(f"reference must be > 0, got {reference}")
        self._reference = reference
        self._delta = delta
        self._threshold = threshold
        self._min_samples = min_samples
        self.reset(reference)

    @property
    def reference(self) -> float:
        """The level deviations are measured against."""
        return self._reference

    def reset(self, reference: Optional[float] = None) -> None:
        """Re-arm around ``reference`` (default: keep the current one)."""
        if reference is not None:
            if reference <= 0.0:
                raise ValueError(f"reference must be > 0, got {reference}")
            self._reference = reference
        self._n = 0
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_down = 0.0
        self._max_down = 0.0

    def update(self, value: float) -> Optional[str]:
        """Fold one observation; returns the drift direction on alarm."""
        v = value / self._reference - 1.0
        self._n += 1
        self._cum_up += v - self._delta
        self._min_up = min(self._min_up, self._cum_up)
        self._cum_down += v + self._delta
        self._max_down = max(self._max_down, self._cum_down)
        if self._n < self._min_samples:
            return None
        if self._cum_up - self._min_up > self._threshold:
            return "up"
        if self._max_down - self._cum_down > self._threshold:
            return "down"
        return None


# ----------------------------------------------------------------------
# Configuration and result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AuditBounds:
    """The predicted §5.1 bounds a run is audited against."""

    accuracy_floor: float
    violation_ceiling: float

    @staticmethod
    def from_guarantees(guarantees: PolicyGuarantees) -> "AuditBounds":
        """Headline (per-query-weighted) bounds of a policy evaluation."""
        return AuditBounds(
            accuracy_floor=guarantees.expected_accuracy,
            violation_ceiling=guarantees.expected_violation_rate,
        )


@dataclass(frozen=True)
class AuditConfig:
    """Knobs of the streaming auditor (defaults documented in README)."""

    #: Completions per audit window.
    window_queries: int = 200
    #: Two-sided confidence level of the window intervals.
    confidence: float = 0.95
    #: Interval estimator for the violation proportion.
    ci_method: str = "wilson"  # "wilson" | "hoeffding"
    #: TV distance above which the occupancy audit reports divergence.
    tv_threshold: float = 0.25
    #: Decision epochs required before the TV verdict is trusted.
    min_occupancy_epochs: int = 200
    #: Averaging window of the auditor's own realized-load monitor.
    drift_window_ms: float = 2000.0
    #: Page–Hinkley tolerance / alarm threshold (fractions of reference).
    drift_delta: float = 0.15
    drift_threshold: float = 8.0
    #: Arrivals required before the drift detector may alarm.
    drift_min_samples: int = 30

    def __post_init__(self) -> None:
        if self.window_queries < 1:
            raise ValueError(
                f"window_queries must be >= 1, got {self.window_queries}"
            )
        if self.ci_method not in ("wilson", "hoeffding"):
            raise ValueError(
                f"ci_method must be 'wilson' or 'hoeffding', got {self.ci_method!r}"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")


@dataclass(frozen=True)
class AuditAlert:
    """One alert delivered to registered callbacks."""

    kind: str  # violation-bound-breach | accuracy-bound-breach |
    #          occupancy-divergence | load-drift
    t_ms: float
    detail: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WindowVerdict:
    """Bound-audit outcome of one completion window."""

    index: int
    start_ms: float
    end_ms: float
    queries: int
    satisfied: int
    violation_rate: float
    violation_ci: Tuple[float, float]
    accuracy: float
    accuracy_ci: Tuple[float, float]
    violation_verdict: str
    accuracy_verdict: str
    occupancy_tv: Optional[float] = None

    @property
    def ok(self) -> bool:
        """True when neither bound is breached beyond its CI."""
        return BREACH not in (self.violation_verdict, self.accuracy_verdict)

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "index": self.index,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "queries": self.queries,
            "satisfied": self.satisfied,
            "violation_rate": self.violation_rate,
            "violation_ci": list(self.violation_ci),
            "accuracy": self.accuracy,
            "accuracy_ci": list(self.accuracy_ci),
            "violation_verdict": self.violation_verdict,
            "accuracy_verdict": self.accuracy_verdict,
            "occupancy_tv": self.occupancy_tv,
        }


@dataclass(frozen=True)
class DriftEvent:
    """One load-drift alarm."""

    t_ms: float
    direction: str  # "up" | "down"
    realized_qps: float
    reference_qps: float

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "t_ms": self.t_ms,
            "direction": self.direction,
            "realized_qps": self.realized_qps,
            "reference_qps": self.reference_qps,
        }


@dataclass(frozen=True)
class OccupancySummary:
    """Final occupancy-audit outcome."""

    tv_distance: float
    decision_epochs: int
    threshold: float
    trusted: bool  # enough epochs to evaluate the threshold

    @property
    def diverged(self) -> bool:
        """True when the empirical occupancy left the predicted one."""
        return self.trusted and self.tv_distance > self.threshold

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "tv_distance": self.tv_distance,
            "decision_epochs": self.decision_epochs,
            "threshold": self.threshold,
            "trusted": self.trusted,
            "diverged": self.diverged,
        }


@dataclass(frozen=True)
class AuditReport:
    """Everything the auditor concluded about one run."""

    bounds: Optional[AuditBounds]
    windows: Tuple[WindowVerdict, ...]
    violation_breaches: int
    accuracy_breaches: int
    occupancy: Optional[OccupancySummary]
    drift_events: Tuple[DriftEvent, ...]
    policy_switches: int
    total_queries: int
    satisfied_queries: int
    observed_violation_rate: float
    observed_accuracy: float

    @property
    def ok(self) -> bool:
        """True when no bound breach, occupancy divergence, or drift."""
        return (
            self.violation_breaches == 0
            and self.accuracy_breaches == 0
            and not (self.occupancy is not None and self.occupancy.diverged)
            and not self.drift_events
        )

    @property
    def verdict(self) -> str:
        """``ok`` or a comma-joined list of what went wrong."""
        if self.ok:
            return OK
        problems = []
        if self.violation_breaches:
            problems.append("violation-bound-breach")
        if self.accuracy_breaches:
            problems.append("accuracy-bound-breach")
        if self.occupancy is not None and self.occupancy.diverged:
            problems.append("occupancy-divergence")
        if self.drift_events:
            problems.append("load-drift")
        return ",".join(problems)

    def to_json_dict(self) -> Dict[str, Any]:
        """The ``ramsis audit`` report schema."""
        return {
            "verdict": self.verdict,
            "ok": self.ok,
            "bounds": (
                None
                if self.bounds is None
                else {
                    "accuracy_floor": self.bounds.accuracy_floor,
                    "violation_ceiling": self.bounds.violation_ceiling,
                }
            ),
            "windows": [w.to_json_dict() for w in self.windows],
            "violation_breaches": self.violation_breaches,
            "accuracy_breaches": self.accuracy_breaches,
            "occupancy": (
                None if self.occupancy is None else self.occupancy.to_json_dict()
            ),
            "drift_events": [d.to_json_dict() for d in self.drift_events],
            "policy_switches": self.policy_switches,
            "total_queries": self.total_queries,
            "satisfied_queries": self.satisfied_queries,
            "observed_violation_rate": self.observed_violation_rate,
            "observed_accuracy": self.observed_accuracy,
        }

    def render_text(self) -> str:
        """Human-readable multi-line report."""
        from repro.experiments.reporting import format_table

        lines: List[str] = [f"Audit verdict: {self.verdict}"]
        if self.bounds is not None:
            lines.append(
                f"predicted bounds: accuracy >= "
                f"{self.bounds.accuracy_floor * 100:.2f}%, violations <= "
                f"{self.bounds.violation_ceiling * 100:.3f}%"
            )
        lines.append(
            f"observed: accuracy {self.observed_accuracy * 100:.2f}%, "
            f"violations {self.observed_violation_rate * 100:.3f}% over "
            f"{self.total_queries} queries"
        )
        if self.occupancy is not None:
            occ = self.occupancy
            status = "diverged" if occ.diverged else (
                "ok" if occ.trusted else "insufficient epochs"
            )
            lines.append(
                f"occupancy: TV {occ.tv_distance:.4f} over "
                f"{occ.decision_epochs} decision epochs "
                f"(threshold {occ.threshold:g}) — {status}"
            )
        if self.drift_events:
            for d in self.drift_events:
                lines.append(
                    f"load drift ({d.direction}) at t={d.t_ms / 1000.0:.1f}s: "
                    f"realized {d.realized_qps:.1f} QPS vs policy reference "
                    f"{d.reference_qps:.1f} QPS"
                )
        else:
            lines.append("load drift: none")
        if self.policy_switches:
            lines.append(f"policy switches observed: {self.policy_switches}")
        if self.windows:
            rows = []
            for w in self.windows:
                rows.append(
                    (
                        w.index,
                        f"{w.end_ms / 1000.0:.1f}",
                        w.queries,
                        f"{w.violation_rate * 100:.2f}%"
                        f" [{w.violation_ci[0] * 100:.2f}, {w.violation_ci[1] * 100:.2f}]",
                        w.violation_verdict,
                        f"{w.accuracy * 100:.2f}%"
                        f" [{w.accuracy_ci[0] * 100:.2f}, {w.accuracy_ci[1] * 100:.2f}]",
                        w.accuracy_verdict,
                    )
                )
            lines.append("")
            lines.append(
                format_table(
                    [
                        "window",
                        "t end (s)",
                        "queries",
                        "violation rate [CI %]",
                        "verdict",
                        "accuracy [CI %]",
                        "verdict",
                    ],
                    rows,
                    title="Per-window bound audit",
                )
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The streaming auditor
# ----------------------------------------------------------------------
class GuaranteeAuditor(ForwardingTracer):
    """Streams a run's lifecycle events and audits them against §5.1.

    Parameters
    ----------
    bounds:
        Predicted bounds, as :class:`AuditBounds` or a
        :class:`~repro.core.guarantees.PolicyGuarantees`; ``None`` leaves
        the bound audit ``unchecked`` (occupancy/drift still run).
    policy:
        The active policy — supplies the slack grid and ``N_w`` used to
        quantize observed decision states, and the default drift
        reference (its generation load).
    expected_occupancy:
        The predicted decision-epoch distribution, normally
        ``stationary_occupancy(mdp, policy).decision_conditional()``.
        ``None`` disables the occupancy audit.
    inner:
        Optional tracer every record is forwarded to (fan-out).
    registry:
        Optional metrics registry receiving ``audit_*`` counters/gauges.
    reference_load_qps:
        Drift-detector reference; defaults to ``policy.load_qps``.
    """

    def __init__(
        self,
        bounds: Optional[object] = None,
        *,
        policy: Optional[Policy] = None,
        expected_occupancy: Optional[Mapping[str, float]] = None,
        config: Optional[AuditConfig] = None,
        inner: Optional[Tracer] = None,
        registry: Optional[MetricsRegistry] = None,
        reference_load_qps: Optional[float] = None,
    ) -> None:
        super().__init__(inner)
        if isinstance(bounds, PolicyGuarantees):
            bounds = AuditBounds.from_guarantees(bounds)
        if bounds is not None and not isinstance(bounds, AuditBounds):
            raise TypeError(
                f"bounds must be AuditBounds or PolicyGuarantees, got {type(bounds)}"
            )
        self._bounds: Optional[AuditBounds] = bounds
        self._policy = policy
        self._expected = dict(expected_occupancy) if expected_occupancy else None
        self._cfg = config or AuditConfig()
        self._alert_callbacks: List[Callable[[AuditAlert], None]] = []

        # Window accumulator.
        self._windows: List[WindowVerdict] = []
        self._win_start_ms = 0.0
        self._win_total = 0
        self._win_satisfied = 0
        self._win_accuracy_sum = 0.0
        # Run-cumulative tallies.
        self._total = 0
        self._satisfied = 0
        self._accuracy_sum = 0.0
        self._violation_breaches = 0
        self._accuracy_breaches = 0

        # Occupancy accumulator (empirical decision-epoch histogram).
        self._occupancy: Dict[str, int] = {}
        self._epochs = 0

        # Drift detector over the auditor's own realized-load estimate.
        self._rate = _RateEstimator(self._cfg.drift_window_ms)
        reference = reference_load_qps
        if reference is None and policy is not None:
            reference = policy.load_qps
        self._detector = (
            PageHinkley(
                reference,
                delta=self._cfg.drift_delta,
                threshold=self._cfg.drift_threshold,
                min_samples=self._cfg.drift_min_samples,
            )
            if reference is not None and reference > 0.0
            else None
        )
        self._drift_events: List[DriftEvent] = []
        self._drift_armed = True
        self._policy_switches = 0
        self._last_ts_ms = 0.0
        self._report: Optional[AuditReport] = None

        if registry is not None:
            self._c_windows = registry.counter(
                "audit_windows_total", help="audit windows closed"
            )
            self._c_breach_viol = registry.counter(
                "audit_breaches_total",
                help="windows breaching a §5.1 bound beyond CI",
                labels={"bound": "violation"},
            )
            self._c_breach_acc = registry.counter(
                "audit_breaches_total",
                help="windows breaching a §5.1 bound beyond CI",
                labels={"bound": "accuracy"},
            )
            self._c_drift = registry.counter(
                "audit_drift_alarms_total", help="load-drift alarms raised"
            )
            self._g_violation = registry.gauge(
                "audit_window_violation_rate",
                help="observed violation rate per audit window",
            )
            self._g_accuracy = registry.gauge(
                "audit_window_accuracy",
                help="observed accuracy per satisfied query per audit window",
            )
            self._g_tv = registry.gauge(
                "audit_occupancy_tv",
                help="TV distance of empirical occupancy vs §5.1 prediction",
            )
        else:
            self._c_windows = self._c_breach_viol = self._c_breach_acc = None
            self._c_drift = self._g_violation = self._g_accuracy = None
            self._g_tv = None

    # ------------------------------------------------------------------
    # Configuration / hooks
    # ------------------------------------------------------------------
    @property
    def config(self) -> AuditConfig:
        """The auditor's knobs."""
        return self._cfg

    @property
    def bounds(self) -> Optional[AuditBounds]:
        """The bounds currently audited against."""
        return self._bounds

    def add_alert_callback(self, callback: Callable[[AuditAlert], None]) -> None:
        """Register an alert-rule callback (called synchronously)."""
        self._alert_callbacks.append(callback)

    def emit_alert(self, alert: AuditAlert) -> None:
        """Inject an externally produced alert into this auditor's stream.

        Lets sibling monitors — e.g.
        :class:`repro.obs.attribution.LatencyAttributor`'s SLO burn-rate
        tracker (``alert_sink=auditor.emit_alert``) — fan their alerts
        through the same registered callbacks as native audit alerts.
        """
        self._alert(alert)

    def note_policy(self, policy: Policy, now_ms: float) -> None:
        """Selector hook: the effective policy changed at ``now_ms``.

        Re-arms the drift detector around the new policy's load and, when
        the policy carries §5.1 metadata, switches the audited bounds.
        Matches :class:`~repro.selectors.ramsis.RamsisSelector`'s
        ``on_policy_change`` signature.
        """
        first = self._policy is None and self._policy_switches == 0
        if self._policy is not policy:
            if not first:
                self._policy_switches += 1
            self._policy = policy
        meta = policy.metadata
        if meta.expected_accuracy is not None and meta.expected_violation_rate is not None:
            self._bounds = AuditBounds(
                accuracy_floor=meta.expected_accuracy,
                violation_ceiling=meta.expected_violation_rate,
            )
        if policy.load_qps > 0.0:
            if self._detector is None:
                self._detector = PageHinkley(
                    policy.load_qps,
                    delta=self._cfg.drift_delta,
                    threshold=self._cfg.drift_threshold,
                    min_samples=self._cfg.drift_min_samples,
                )
            else:
                self._detector.reset(policy.load_qps)
        self._drift_armed = True
        if not first:
            self.inner.instant(
                "audit_policy_switch",
                "audit",
                now_ms,
                category="audit",
                args={"load_qps": policy.load_qps},
            )

    # ------------------------------------------------------------------
    # Tracer interface (tap + forward)
    # ------------------------------------------------------------------
    def complete(
        self,
        name: str,
        track: str,
        start_ms: float,
        duration_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().complete(name, track, start_ms, duration_ms, category, args)
        if name == "serve" and args is not None:
            self._observe_decision(args)
            self._last_ts_ms = max(self._last_ts_ms, start_ms + duration_ms)

    def instant(
        self,
        name: str,
        track: str,
        ts_ms: float,
        category: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().instant(name, track, ts_ms, category, args)
        self._last_ts_ms = max(self._last_ts_ms, ts_ms)
        if name == "completion" and args is not None:
            self._observe_completion(ts_ms, args)
        elif name == "arrival":
            self._observe_arrival(ts_ms)

    # ------------------------------------------------------------------
    # Stream consumers
    # ------------------------------------------------------------------
    def _observe_completion(self, ts_ms: float, args: Mapping[str, Any]) -> None:
        if self._win_total == 0:
            self._win_start_ms = ts_ms
        satisfied = bool(args.get("satisfied"))
        accuracy = float(args.get("accuracy", 0.0))
        self._win_total += 1
        self._total += 1
        if satisfied:
            self._win_satisfied += 1
            self._satisfied += 1
            self._win_accuracy_sum += accuracy
            self._accuracy_sum += accuracy
        if self._win_total >= self._cfg.window_queries:
            self._close_window(ts_ms)

    def _observe_decision(self, args: Mapping[str, Any]) -> None:
        if self._policy is None:
            return
        n = args.get("queue_len")
        slack = args.get("slack_ms")
        if n is None or slack is None:
            return
        if n > self._policy.max_queue:
            key = "full"
        else:
            key = f"{int(n)},{self._policy.grid.floor_index(float(slack))}"
        self._occupancy[key] = self._occupancy.get(key, 0) + 1
        self._epochs += 1

    def _observe_arrival(self, ts_ms: float) -> None:
        realized = self._rate.record(ts_ms)
        if self._detector is None or not self._drift_armed:
            return
        direction = self._detector.update(realized)
        if direction is None:
            return
        # Only flag once the realized level actually sits outside the
        # active policy's tolerance band (the PH statistic is cumulative
        # and can fire on a past excursion that already receded).
        reference = self._detector.reference
        if direction == "up" and realized <= reference * (1.0 + self._cfg.drift_delta):
            return
        if direction == "down" and realized >= reference * (1.0 - self._cfg.drift_delta):
            return
        event = DriftEvent(
            t_ms=ts_ms,
            direction=direction,
            realized_qps=realized,
            reference_qps=reference,
        )
        self._drift_events.append(event)
        self._drift_armed = False  # one alarm per policy period
        if self._c_drift is not None:
            self._c_drift.inc()
        self.inner.instant(
            "audit_drift",
            "audit",
            ts_ms,
            category="audit",
            args=event.to_json_dict(),
        )
        self._alert(
            AuditAlert(kind="load-drift", t_ms=ts_ms, detail=event.to_json_dict())
        )

    # ------------------------------------------------------------------
    # Window evaluation
    # ------------------------------------------------------------------
    def _interval_for_proportion(
        self, successes: int, total: int
    ) -> Tuple[float, float]:
        if self._cfg.ci_method == "hoeffding":
            mean = 0.0 if total == 0 else successes / total
            return hoeffding_interval(mean, total, self._cfg.confidence)
        return wilson_interval(successes, total, self._cfg.confidence)

    def _close_window(self, end_ms: float) -> None:
        total = self._win_total
        satisfied = self._win_satisfied
        violations = total - satisfied
        violation_rate = 0.0 if total == 0 else violations / total
        accuracy = 0.0 if satisfied == 0 else self._win_accuracy_sum / satisfied
        violation_ci = self._interval_for_proportion(violations, total)
        accuracy_ci = hoeffding_interval(accuracy, satisfied, self._cfg.confidence)

        if self._bounds is None:
            violation_verdict = accuracy_verdict = UNCHECKED
        else:
            # The §5.1 numbers are one-sided bounds: breach only when the
            # whole interval sits on the wrong side.
            violation_verdict = (
                BREACH if violation_ci[0] > self._bounds.violation_ceiling else OK
            )
            # An all-violations window has no satisfied queries to average;
            # treat its accuracy as unchecked rather than breached.
            if satisfied == 0:
                accuracy_verdict = UNCHECKED
            else:
                accuracy_verdict = (
                    BREACH if accuracy_ci[1] < self._bounds.accuracy_floor else OK
                )

        tv = self._current_tv()
        verdict = WindowVerdict(
            index=len(self._windows),
            start_ms=self._win_start_ms,
            end_ms=end_ms,
            queries=total,
            satisfied=satisfied,
            violation_rate=violation_rate,
            violation_ci=violation_ci,
            accuracy=accuracy,
            accuracy_ci=accuracy_ci,
            violation_verdict=violation_verdict,
            accuracy_verdict=accuracy_verdict,
            occupancy_tv=tv,
        )
        self._windows.append(verdict)
        self._win_total = 0
        self._win_satisfied = 0
        self._win_accuracy_sum = 0.0

        if self._c_windows is not None:
            self._c_windows.inc()
            self._g_violation.set(violation_rate, t_ms=end_ms)
            self._g_accuracy.set(accuracy, t_ms=end_ms)
            if tv is not None:
                self._g_tv.set(tv, t_ms=end_ms)
        self.inner.instant(
            "audit_window",
            "audit",
            end_ms,
            category="audit",
            args=verdict.to_json_dict(),
        )
        if violation_verdict == BREACH:
            self._violation_breaches += 1
            if self._c_breach_viol is not None:
                self._c_breach_viol.inc()
            self._alert(
                AuditAlert(
                    kind="violation-bound-breach",
                    t_ms=end_ms,
                    detail=verdict.to_json_dict(),
                )
            )
        if accuracy_verdict == BREACH:
            self._accuracy_breaches += 1
            if self._c_breach_acc is not None:
                self._c_breach_acc.inc()
            self._alert(
                AuditAlert(
                    kind="accuracy-bound-breach",
                    t_ms=end_ms,
                    detail=verdict.to_json_dict(),
                )
            )
        if (
            tv is not None
            and self._epochs >= self._cfg.min_occupancy_epochs
            and tv > self._cfg.tv_threshold
        ):
            self._alert(
                AuditAlert(
                    kind="occupancy-divergence",
                    t_ms=end_ms,
                    detail={"tv_distance": tv, "threshold": self._cfg.tv_threshold},
                )
            )

    def _current_tv(self) -> Optional[float]:
        if self._expected is None or self._epochs == 0:
            return None
        empirical = {k: c / self._epochs for k, c in self._occupancy.items()}
        return total_variation(empirical, self._expected)

    def _alert(self, alert: AuditAlert) -> None:
        for callback in self._alert_callbacks:
            callback(alert)

    # ------------------------------------------------------------------
    # Introspection / finalization
    # ------------------------------------------------------------------
    @property
    def windows(self) -> Tuple[WindowVerdict, ...]:
        """Windows closed so far."""
        return tuple(self._windows)

    @property
    def drift_events(self) -> Tuple[DriftEvent, ...]:
        """Drift alarms raised so far."""
        return tuple(self._drift_events)

    def empirical_occupancy(self) -> Dict[str, float]:
        """The normalized decision-epoch histogram observed so far."""
        if self._epochs == 0:
            return {}
        return {k: c / self._epochs for k, c in self._occupancy.items()}

    def finalize(self, now_ms: Optional[float] = None) -> AuditReport:
        """Close any partial window and freeze the report (idempotent)."""
        if self._report is not None:
            return self._report
        end = now_ms if now_ms is not None else self._last_ts_ms
        if self._win_total > 0:
            self._close_window(end)
        tv = self._current_tv()
        occupancy = (
            None
            if tv is None
            else OccupancySummary(
                tv_distance=tv,
                decision_epochs=self._epochs,
                threshold=self._cfg.tv_threshold,
                trusted=self._epochs >= self._cfg.min_occupancy_epochs,
            )
        )
        self._report = AuditReport(
            bounds=self._bounds,
            windows=tuple(self._windows),
            violation_breaches=self._violation_breaches,
            accuracy_breaches=self._accuracy_breaches,
            occupancy=occupancy,
            drift_events=tuple(self._drift_events),
            policy_switches=self._policy_switches,
            total_queries=self._total,
            satisfied_queries=self._satisfied,
            observed_violation_rate=(
                0.0 if self._total == 0 else 1.0 - self._satisfied / self._total
            ),
            observed_accuracy=(
                0.0 if self._satisfied == 0 else self._accuracy_sum / self._satisfied
            ),
        )
        return self._report
