"""Small shared helpers used across the package.

Time convention: the whole library measures *time in milliseconds* and
*query load in queries per second (QPS)*.  The helpers here centralize the
conversions so no module hand-rolls a ``/ 1000.0``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

MS_PER_SECOND = 1000.0


def qps_to_per_ms(qps: float) -> float:
    """Convert a query load in queries/second to a rate in queries/ms."""
    return qps / MS_PER_SECOND


def per_ms_to_qps(rate: float) -> float:
    """Convert a rate in queries/ms to a query load in queries/second."""
    return rate * MS_PER_SECOND


def validate_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def validate_non_negative(name: str, value: float) -> float:
    """Return ``value`` if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def validate_probability(name: str, value: float) -> float:
    """Return ``value`` if in [0, 1], else raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def is_sorted_strict(values: Sequence[float]) -> bool:
    """True when ``values`` is strictly increasing."""
    return all(a < b for a, b in zip(values, values[1:]))


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of ``samples`` for ``q`` in [0, 100].

    A tiny, dependency-free replica of ``numpy.percentile`` used on code
    paths that deal in plain Python lists (e.g. the online metrics of the
    simulator), where converting to an array per call would dominate.
    """
    if not samples:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def mean(samples: Iterable[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty iterable."""
    total = 0.0
    count = 0
    for value in samples:
        total += value
        count += 1
    if count == 0:
        raise ValueError("mean of empty sequence")
    return total / count


def format_pct(value: float, digits: int = 2) -> str:
    """Format a fraction in [0, 1] as a percentage string, e.g. ``'1.23%'``."""
    return f"{value * 100.0:.{digits}f}%"
