"""Exception hierarchy for the RAMSIS reproduction.

All library-raised errors derive from :class:`ReproError` so that callers can
catch the whole family with one handler while still distinguishing categories.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An input configuration is inconsistent or out of range."""


class ProfileError(ReproError):
    """A model latency/accuracy profile is missing or malformed."""


class PolicyError(ReproError):
    """A policy is missing a state, action, or required metadata."""


class SolverError(ReproError):
    """An MDP solver failed to converge or was given an invalid MDP."""


class TraceError(ReproError):
    """A query-load trace is malformed or cannot be parsed."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class CapacityError(ReproError):
    """The requested load is not satisfiable with the given resources."""
