"""Persistent, content-addressed store for generated policies.

Artifacts live under a cache directory (``$RAMSIS_CACHE_DIR``, or
``~/.cache/ramsis`` by default) sharded by digest prefix::

    <cache_dir>/<digest[:2]>/<digest>.json

Each artifact is a self-describing JSON document carrying the canonical key
dictionary it was stored under (so :meth:`PolicyCache.verify` can re-derive
the digest), the serialized policy, its §5.1 guarantees, and solve
statistics.  Writes are atomic (temp file + ``os.replace``); reads treat any
malformed artifact as a miss — the cell is re-solved and the corrupt file is
counted, never trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import numpy as np

from repro.cache.keys import CACHE_SCHEMA_VERSION, cache_key, canonical_config_dict
from repro.core.config import WorkerMDPConfig
from repro.core.guarantees import PolicyGuarantees
from repro.core.policy import Policy
from repro.errors import PolicyError
from repro.obs.log import get_logger
from repro.obs.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.generator import GenerationResult
    from repro.obs.metrics import MetricsRegistry

__all__ = ["PolicyCache", "DEFAULT_CACHE_DIR", "ENV_VAR"]

ENV_VAR = "RAMSIS_CACHE_DIR"
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "ramsis"

_logger = get_logger("cache")

#: Exceptions that mark an artifact as corrupt rather than the cache broken.
_ARTIFACT_ERRORS = (
    json.JSONDecodeError,
    KeyError,
    TypeError,
    ValueError,
    PolicyError,
)


def _resolve_directory(directory: Optional[Union[str, Path]]) -> Path:
    if directory is not None:
        return Path(directory)
    env = os.environ.get(ENV_VAR)
    if env:
        return Path(env)
    return DEFAULT_CACHE_DIR


class PolicyCache:
    """Disk cache mapping canonical config digests to generation results.

    Parameters
    ----------
    directory:
        Cache root.  Defaults to ``$RAMSIS_CACHE_DIR`` when set, else
        ``~/.cache/ramsis``.  Created lazily on first store.
    registry:
        Optional metrics registry; hit/miss/invalidation/store totals are
        published as ``policy_cache_*_total`` counters in addition to the
        instance attributes.
    tracer:
        Optional tracer; every lookup/store becomes a ``cache_get``/
        ``cache_put`` span on the ``cache`` track with its outcome
        (hit/stored) in the span args — the phase profiler's view of
        cache behaviour.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        registry: Optional["MetricsRegistry"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self._directory = _resolve_directory(directory)
        self._registry = registry
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0

    @property
    def directory(self) -> Path:
        """Cache root directory."""
        return self._directory

    def _count(self, name: str) -> None:
        if self._registry is not None:
            self._registry.counter(
                f"policy_cache_{name}_total",
                f"Policy cache {name}",
            ).inc()

    def _path_for(self, digest: str) -> Path:
        return self._directory / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def get(
        self, config: WorkerMDPConfig, tolerance: float
    ) -> Optional["GenerationResult"]:
        """Cached result for ``(config, tolerance)``, or ``None`` on a miss.

        Corrupt or unreadable artifacts are logged, counted as
        invalidations, and reported as misses — callers fall back to
        solving, and the next :meth:`put` overwrites the bad file.
        """
        if not self._tracer.enabled:
            return self._get(config, tolerance)
        # The span args dict is captured by reference at span exit, so
        # mutating it after the lookup records the outcome.
        outcome: Dict[str, Any] = {}
        with self._tracer.span("cache_get", track="cache", args=outcome):
            result = self._get(config, tolerance)
            outcome["hit"] = result is not None
        return result

    def _get(
        self, config: WorkerMDPConfig, tolerance: float
    ) -> Optional["GenerationResult"]:
        digest = cache_key(config, tolerance)
        if digest is None:
            self.misses += 1
            self._count("misses")
            return None
        path = self._path_for(digest)
        try:
            raw = path.read_text()
        except OSError:
            self.misses += 1
            self._count("misses")
            return None
        try:
            result = self._decode(raw)
        except _ARTIFACT_ERRORS as exc:
            _logger.warning(
                "discarding corrupt cache artifact %s (%s: %s); re-solving",
                path,
                type(exc).__name__,
                exc,
            )
            self.invalidations += 1
            self._count("invalidations")
            self.misses += 1
            self._count("misses")
            return None
        self.hits += 1
        self._count("hits")
        return result

    def put(
        self,
        config: WorkerMDPConfig,
        tolerance: float,
        result: "GenerationResult",
    ) -> Optional[Path]:
        """Store ``result`` under its content digest; atomic overwrite.

        Returns the artifact path, or ``None`` when the config is
        uncacheable (no stable key).
        """
        if not self._tracer.enabled:
            return self._put(config, tolerance, result)
        outcome: Dict[str, Any] = {}
        with self._tracer.span("cache_put", track="cache", args=outcome):
            path = self._put(config, tolerance, result)
            outcome["stored"] = path is not None
        return path

    def _put(
        self,
        config: WorkerMDPConfig,
        tolerance: float,
        result: "GenerationResult",
    ) -> Optional[Path]:
        canonical = canonical_config_dict(config, tolerance)
        if canonical is None:
            return None
        rendered = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(rendered.encode("utf-8")).hexdigest()
        path = self._path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = self._encode(digest, canonical, result)
        payload = json.dumps(artifact, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        self._count("stores")
        return path

    # ------------------------------------------------------------------
    # Artifact codec
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(
        digest: str, canonical: Dict[str, Any], result: "GenerationResult"
    ) -> Dict[str, Any]:
        return {
            "schema_version": CACHE_SCHEMA_VERSION,
            "digest": digest,
            "key": canonical,
            "policy": result.policy.to_json_dict(),
            "guarantees": dataclasses.asdict(result.guarantees),
            "iterations": result.iterations,
            "runtime_s": result.runtime_s,
            "residuals": (
                None if result.residuals is None else list(result.residuals)
            ),
            "values": (
                None if result.values is None else result.values.tolist()
            ),
        }

    @staticmethod
    def _decode(raw: str) -> "GenerationResult":
        from repro.core.generator import GenerationResult

        data = json.loads(raw)
        if data["schema_version"] != CACHE_SCHEMA_VERSION:
            raise ValueError(
                f"artifact schema {data['schema_version']} != "
                f"{CACHE_SCHEMA_VERSION}"
            )
        policy = Policy.from_json_dict(data["policy"])
        guarantees = PolicyGuarantees(**data["guarantees"])
        residuals = data.get("residuals")
        values = data.get("values")
        return GenerationResult(
            policy=policy,
            guarantees=guarantees,
            iterations=int(data["iterations"]),
            runtime_s=float(data["runtime_s"]),
            residuals=None if residuals is None else tuple(residuals),
            values=None if values is None else np.asarray(values, dtype=float),
            from_cache=True,
        )

    # ------------------------------------------------------------------
    # Maintenance (`ramsis cache` subcommand)
    # ------------------------------------------------------------------
    def _artifact_paths(self) -> List[Path]:
        if not self._directory.is_dir():
            return []
        return sorted(
            p
            for p in self._directory.glob("??/*.json")
            if not p.name.startswith(".tmp-")
        )

    def stats(self) -> Dict[str, Any]:
        """Directory totals plus this instance's hit/miss counters."""
        paths = self._artifact_paths()
        return {
            "directory": str(self._directory),
            "artifacts": len(paths),
            "total_bytes": sum(p.stat().st_size for p in paths),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
        }

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        for path in self._artifact_paths():
            path.unlink()
            removed += 1
        return removed

    def verify(self) -> Dict[str, List[str]]:
        """Check every artifact decodes and its digest matches its key.

        Returns ``{"ok": [...], "corrupt": [...]}`` artifact paths.  Corrupt
        artifacts are left in place (a subsequent ``get`` re-solves and
        ``put`` overwrites them); use :meth:`clear` to drop everything.
        """
        ok: List[str] = []
        corrupt: List[str] = []
        for path in self._artifact_paths():
            try:
                raw = path.read_text()
                data = json.loads(raw)
                rendered = json.dumps(
                    data["key"], sort_keys=True, separators=(",", ":")
                )
                digest = hashlib.sha256(rendered.encode("utf-8")).hexdigest()
                if digest != path.stem or digest != data["digest"]:
                    raise ValueError("digest mismatch")
                self._decode(raw)
            except _ARTIFACT_ERRORS as exc:
                _logger.warning("cache artifact %s failed verify: %s", path, exc)
                corrupt.append(str(path))
            else:
                ok.append(str(path))
        return {"ok": ok, "corrupt": corrupt}
