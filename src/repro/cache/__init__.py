"""Persistent content-addressed caching of generated policies.

The offline pipeline keys each :class:`~repro.core.generator.GenerationResult`
by a stable hash of its canonicalized configuration plus solver tolerance and
a code-schema version (:mod:`repro.cache.keys`) and stores artifacts under a
shared cache directory (:mod:`repro.cache.store`), so repeated experiment
invocations skip re-solving identical grid cells entirely.
"""

from repro.cache.keys import (
    CACHE_SCHEMA_VERSION,
    cache_key,
    canonical_config_dict,
)
from repro.cache.store import DEFAULT_CACHE_DIR, ENV_VAR, PolicyCache

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ENV_VAR",
    "PolicyCache",
    "cache_key",
    "canonical_config_dict",
]
