"""Stable content-addressed cache keys for generated policies.

A cache key is the SHA-256 digest of a canonical JSON rendering of
everything that determines a :class:`~repro.core.generator.GenerationResult`
bit-for-bit: the full :class:`~repro.core.config.WorkerMDPConfig` (model
profiles, arrival family + load, every MDP knob), the solver tolerance, and
a code-schema version that must be bumped whenever the kernel/solver math
changes in a way that can alter outputs.

Canonicalization relies on two properties:

- ``json.dumps`` renders float64 values with ``repr``-accurate shortest
  round-trip digits, so two configs hash equal iff their floats are
  bit-equal;
- ``sort_keys=True`` makes the rendering independent of dict ordering.

Configs built from components the canonicalizer does not understand (an
arrival family or latency model outside the shipped ones) are *uncacheable*:
:func:`cache_key` returns ``None`` and the disk cache is bypassed rather
than risking digest collisions between semantically different configs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional

from repro.arrivals.distributions import (
    ArrivalDistribution,
    DeterministicArrivals,
    GammaArrivals,
    PoissonArrivals,
)
from repro.core.config import WorkerMDPConfig

__all__ = ["CACHE_SCHEMA_VERSION", "cache_key", "canonical_config_dict"]

#: Bump whenever policy generation can produce different bytes for the same
#: config (kernel math, solver semantics, policy serialization).
CACHE_SCHEMA_VERSION = 1


def _arrivals_dict(arrivals: ArrivalDistribution) -> Optional[Dict[str, Any]]:
    if isinstance(arrivals, PoissonArrivals):
        return {"family": "poisson", "load_qps": arrivals.load_qps}
    if isinstance(arrivals, GammaArrivals):
        return {
            "family": "gamma",
            "load_qps": arrivals.load_qps,
            "shape": arrivals.shape,
        }
    if isinstance(arrivals, DeterministicArrivals):
        return {"family": "deterministic", "load_qps": arrivals.load_qps}
    return None


def _model_set_dict(config: WorkerMDPConfig) -> Optional[Dict[str, Any]]:
    models = []
    for m in config.model_set:
        if not dataclasses.is_dataclass(m.latency):
            return None
        models.append(
            {
                "name": m.name,
                "accuracy": m.accuracy,
                "family": m.family,
                "latency_model": type(m.latency).__name__,
                "latency": dataclasses.asdict(m.latency),
            }
        )
    return {"task": config.model_set.task, "models": models}


def canonical_config_dict(
    config: WorkerMDPConfig, tolerance: float
) -> Optional[Dict[str, Any]]:
    """The canonical key dictionary, or ``None`` when uncacheable."""
    arrivals = _arrivals_dict(config.arrivals)
    model_set = _model_set_dict(config)
    if arrivals is None or model_set is None:
        return None
    return {
        "schema_version": CACHE_SCHEMA_VERSION,
        "tolerance": float(tolerance),
        "slo_ms": config.slo_ms,
        "num_workers": config.num_workers,
        "max_queue": config.max_queue,
        "max_batch_size": config.max_batch_size,
        "discretization": config.discretization.value,
        "fld_resolution": config.fld_resolution,
        "batching": config.batching.value,
        "pareto_prune": config.pareto_prune,
        "view": config.view.value,
        "discount": config.discount,
        "reward_per_query": config.reward_per_query,
        "drop_late": config.drop_late,
        "duration_aware_discount": config.duration_aware_discount,
        "discount_reference_ms": config.discount_reference_ms,
        "arrivals": arrivals,
        "model_set": model_set,
    }


def cache_key(config: WorkerMDPConfig, tolerance: float) -> Optional[str]:
    """SHA-256 hex digest keying ``(config, tolerance, schema version)``.

    ``None`` marks an uncacheable config (see module docstring).
    """
    canonical = canonical_config_dict(config, tolerance)
    if canonical is None:
        return None
    rendered = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()
