"""Table 3 (Appendix F): SLO violation rates on the production trace.

The companion numbers to Fig. 5 — the same runs, reported as violation
rates.  The paper's pattern asserted: at satisfiable worker counts every
method stays under a few percent, and violation rates drop sharply once
the cluster can sustain the trace's peak.
"""

import pytest

from benchmarks._common import cached_fig5, emit, points_payload
from repro.experiments.tables import render_table3


@pytest.fixture(scope="module")
def fig5_result():
    return cached_fig5()


def test_table3_render(benchmark, fig5_result):
    result = benchmark.pedantic(lambda: fig5_result, rounds=1, iterations=1)
    emit(
        "table3_trace_violations",
        render_table3(result),
        data={"points": points_payload(result.points)},
    )


def test_table3_violations_decline_with_workers(fig5_result):
    """For each (task, method): the largest cluster violates no more than
    the smallest (strictly fewer when the small cluster is overloaded)."""
    for task in ("image", "text"):
        for method in ("RAMSIS", "JF", "MS"):
            cells = sorted(
                (
                    p
                    for p in fig5_result.points
                    if p.task == task and p.method == method
                ),
                key=lambda p: p.num_workers,
            )
            if len(cells) >= 2:
                assert cells[-1].violation_rate <= cells[0].violation_rate + 0.02


def test_table3_satisfiable_cells_low_violation(fig5_result):
    """At the largest worker count every method should be satisfiable."""
    top = max(p.num_workers for p in fig5_result.points)
    for p in fig5_result.points:
        if p.num_workers == top:
            assert p.violation_rate < 0.10, (
                f"{p.method} on {p.task} still violating at {top} workers"
            )
