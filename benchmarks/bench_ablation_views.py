"""Ablation: transition-probability views (DESIGN.md §3 substitution).

Compares the three constructions of per-worker transition probabilities on
identical configurations:

- ``exact_rr`` — the paper's phase-conditioned §4.4.2 derivation;
- ``rr_marginal`` — the equilibrium-renewal marginal (this repo's default);
- ``split`` — a random Poisson split (conservative).

Asserted: all three agree exactly at K = 1; at K > 1 the marginal view
tracks the exact view closely while the Poisson split is more conservative
(lower expected accuracy); and the marginal view is cheaper to build than
the exact view.
"""

import time

import pytest

from benchmarks._common import emit
from repro.core.config import TransitionView, WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.reporting import format_table
from repro.experiments.tasks import image_task


def _generate(view, num_workers, load_per_worker=25.0, fld=20):
    task = image_task()
    config = WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=task.slos_ms[0],
        load_qps=load_per_worker * num_workers,
        num_workers=num_workers,
        fld_resolution=fld,
        view=view,
    )
    start = time.perf_counter()
    result = generate_policy(config)
    elapsed = time.perf_counter() - start
    return result, elapsed


@pytest.fixture(scope="module")
def view_results():
    out = {}
    for k in (1, 3):
        for view in TransitionView:
            out[(k, view)] = _generate(view, k)
    return out


def test_views_agree_at_k1(view_results):
    accs = {
        view: view_results[(1, view)][0].guarantees.expected_accuracy
        for view in TransitionView
    }
    baseline = accs[TransitionView.EXACT_ROUND_ROBIN]
    for view, acc in accs.items():
        assert acc == pytest.approx(baseline, abs=1e-6), view


def test_marginal_tracks_exact_at_k3(view_results):
    exact = view_results[(3, TransitionView.EXACT_ROUND_ROBIN)][0]
    marginal = view_results[(3, TransitionView.ROUND_ROBIN_MARGINAL)][0]
    assert marginal.guarantees.expected_accuracy == pytest.approx(
        exact.guarantees.expected_accuracy, abs=0.03
    )


def test_poisson_split_is_conservative_at_k3(view_results):
    exact = view_results[(3, TransitionView.EXACT_ROUND_ROBIN)][0]
    split = view_results[(3, TransitionView.POISSON_SPLIT)][0]
    assert (
        split.guarantees.expected_accuracy
        <= exact.guarantees.expected_accuracy + 0.01
    )


def test_view_report(benchmark, view_results):
    def marginal_policy():
        return _generate(TransitionView.ROUND_ROBIN_MARGINAL, 3)

    benchmark.pedantic(marginal_policy, rounds=1, iterations=1)
    rows = []
    data_rows = []
    for (k, view), (result, elapsed) in sorted(
        view_results.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
    ):
        g = result.guarantees
        rows.append(
            (
                k,
                view.value,
                f"{g.expected_accuracy * 100:.3f}%",
                f"{g.expected_violation_rate * 100:.4f}%",
                f"{elapsed:.2f}",
            )
        )
        data_rows.append(
            {
                "workers": k,
                "view": view.value,
                "expected_accuracy": g.expected_accuracy,
                "expected_violation_rate": g.expected_violation_rate,
                "generation_s": elapsed,
            }
        )
    emit(
        "ablation_views",
        format_table(
            ["K", "view", "E[accuracy]", "E[violation]", "gen time (s)"],
            rows,
            title="Ablation — transition-probability views",
        ),
        data={"rows": data_rows},
    )
