"""Ablation: per-decision vs per-query reward weighting.

The paper's §4.1 reward is ``Accuracy(a) * SLOSatisfied(s, a)`` per
decision epoch; an alternative weights it by the batch size (optimizing
accuracy *per query* directly).  This ablation quantifies the difference:
per-query weighting values big satisfied batches more, nudging the policy
toward slightly larger batches at equal accuracy.
"""

from dataclasses import replace

import pytest

from benchmarks._common import bench_scale, emit
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_method
from repro.experiments.tasks import image_task
from repro.selectors import RamsisSelector


@pytest.fixture(scope="module")
def reward_points():
    scale = bench_scale()
    task = image_task()
    slo = task.slos_ms[0]
    workers = scale.constant_workers_image
    rows = []
    for load in scale.constant_loads_qps[::2]:
        base = WorkerMDPConfig.default_poisson(
            task.model_set,
            slo_ms=slo,
            load_qps=load,
            num_workers=workers,
            fld_resolution=scale.fld_resolution,
            max_batch_size=scale.max_batch_size,
        )
        trace = LoadTrace.constant(
            load, scale.constant_duration_s * 1000.0, name=f"rw-{load:g}"
        )
        for label, per_query in (("per-decision", False), ("per-query", True)):
            config = replace(base, reward_per_query=per_query)
            policy = generate_policy(config, with_guarantees=False).policy
            cell = run_method(
                "RAMSIS",
                task,
                slo,
                workers,
                trace,
                scale,
                oracle_load=True,
                selector=RamsisSelector(policy),
            )
            rows.append((label, load, cell))
    return rows


def test_reward_ablation_report(benchmark, reward_points):
    rows = benchmark.pedantic(lambda: reward_points, rounds=1, iterations=1)
    table = [
        (
            label,
            f"{load:g}",
            f"{cell.accuracy * 100:.2f}%",
            f"{cell.violation_rate * 100:.3f}%",
        )
        for label, load, cell in rows
    ]
    emit(
        "ablation_reward",
        format_table(
            ["reward", "load (QPS)", "accuracy", "violations"],
            table,
            title="Ablation — per-decision (paper) vs per-query reward",
        ),
        data={
            "rows": [
                {
                    "reward": label,
                    "load_qps": load,
                    "accuracy": cell.accuracy,
                    "violation_rate": cell.violation_rate,
                }
                for label, load, cell in rows
            ]
        },
    )


def test_reward_variants_comparable(reward_points):
    """Both objectives land in the same accuracy band when satisfiable."""
    by_load = {}
    for label, load, cell in reward_points:
        by_load.setdefault(load, {})[label] = cell
    compared = 0
    for cells in by_load.values():
        if len(cells) == 2 and all(c.plottable for c in cells.values()):
            compared += 1
            assert cells["per-decision"].accuracy == pytest.approx(
                cells["per-query"].accuracy, abs=0.05
            )
    assert compared > 0
