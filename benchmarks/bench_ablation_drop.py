"""Ablation: serve-late (paper default) vs drop-late (§4.3.1 alternative).

The paper's evaluation never drops queries ("better served late than
never") but notes RAMSIS can be reformulated to drop unsatisfiable queries
via a transition-probability change.  This ablation quantifies the trade:
under overload, dropping sheds the backlog so the *surviving* queries meet
their deadlines, while serve-late grinds through everything late.
"""

import pytest
from dataclasses import replace

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.reporting import format_table
from repro.experiments.tasks import image_task
from repro.selectors import RamsisSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig


def _run(load_qps: float, drop: bool):
    scale = bench_scale()
    task = image_task()
    slo = task.slos_ms[0]
    workers = scale.constant_workers_image
    config = WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=slo,
        load_qps=load_qps,
        num_workers=workers,
        fld_resolution=scale.fld_resolution,
        max_batch_size=scale.max_batch_size,
        drop_late=drop,
    )
    policy = generate_policy(config, with_guarantees=False).policy
    trace = LoadTrace.constant(load_qps, scale.constant_duration_s * 1000.0)
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=slo,
            num_workers=workers,
            max_batch_size=scale.max_batch_size,
            monitor=OracleLoadMonitor(trace),
            drop_late=drop,
            seed=43,
            track_responses=False,
        )
    )
    return sim.run(RamsisSelector(policy), trace, pattern=PoissonArrivals(load_qps))


@pytest.fixture(scope="module")
def drop_cells():
    scale = bench_scale()
    loads = [scale.constant_loads_qps[0], scale.constant_loads_qps[-1]]
    cells = {}
    for load in loads:
        for drop in (False, True):
            cells[(load, drop)] = _run(load, drop)
    return cells


def test_drop_ablation_report(benchmark, drop_cells):
    cells = benchmark.pedantic(lambda: drop_cells, rounds=1, iterations=1)
    rows = []
    data_rows = []
    for (load, drop), m in sorted(cells.items()):
        dropped = m.model_query_counts.get("<dropped>", 0)
        rows.append(
            (
                f"{load:g}",
                "drop" if drop else "serve-late",
                f"{m.accuracy_per_satisfied_query * 100:.2f}%",
                f"{m.violation_rate * 100:.2f}%",
                dropped,
            )
        )
        data_rows.append(
            {
                "load_qps": load,
                "mode": "drop" if drop else "serve-late",
                "accuracy": m.accuracy_per_satisfied_query,
                "violation_rate": m.violation_rate,
                "dropped": int(dropped),
                "queries": m.total_queries,
            }
        )
    emit(
        "ablation_drop_late",
        format_table(
            ["load (QPS)", "mode", "accuracy", "violations", "dropped"],
            rows,
            title="Ablation — serve-late (paper) vs drop-late (§4.3.1)",
        ),
        data={"rows": data_rows},
    )


def test_no_drops_at_satisfiable_load(drop_cells):
    load = min(load for load, _ in drop_cells)
    metrics = drop_cells[(load, True)]
    dropped = metrics.model_query_counts.get("<dropped>", 0)
    assert dropped <= 0.02 * metrics.total_queries


def test_modes_agree_when_satisfiable(drop_cells):
    load = min(load for load, _ in drop_cells)
    serve = drop_cells[(load, False)]
    drop = drop_cells[(load, True)]
    assert serve.accuracy_per_satisfied_query == pytest.approx(
        drop.accuracy_per_satisfied_query, abs=0.03
    )


def test_all_queries_accounted_under_overload(drop_cells):
    load = max(load for load, _ in drop_cells)
    serve = drop_cells[(load, False)]
    drop = drop_cells[(load, True)]
    assert serve.total_queries == drop.total_queries
