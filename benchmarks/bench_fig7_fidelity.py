"""Figure 7: expectation vs simulation vs implementation fidelity (§7.3.1).

Shape assertions from the paper:

- simulation accuracy tracks the expectation closely at satisfiable loads;
- the implementation (stochastic latencies) achieves accuracy and
  violations at least as good as the simulation;
- the expected violation rate upper-bounds the simulated one except near
  peak capacity, where the expectation deliberately over-estimates.
"""

import pytest

from benchmarks._common import bench_scale, emit, points_payload
from repro.experiments.fig7 import render_fig7, run_fig7


@pytest.fixture(scope="module")
def fig7_result():
    scale = bench_scale()
    return run_fig7(scale=scale)


def test_fig7_run_and_render(benchmark, fig7_result):
    result = benchmark.pedantic(lambda: fig7_result, rounds=1, iterations=1)
    emit(
        "fig7_fidelity",
        render_fig7(result),
        data={"points": points_payload(result.points)},
    )
    assert {p.variant for p in result.points} == {
        "expectation",
        "simulation",
        "implementation",
    }


def _by_cell(result, variant):
    return {
        (p.num_workers, p.load_qps): p
        for p in result.points
        if p.variant == variant
    }


def test_fig7_simulation_tracks_expectation(fig7_result):
    expectation = _by_cell(fig7_result, "expectation")
    simulation = _by_cell(fig7_result, "simulation")
    checked = 0
    for key, exp in expectation.items():
        sim = simulation[key]
        # Only satisfiable cells — near/past capacity both saturate low.
        if exp.violation_rate < 0.05 and sim.violation_rate < 0.05:
            checked += 1
            # Expectation is a lower bound on accuracy (§5.1), and should
            # be close, not just below.
            assert sim.accuracy >= exp.accuracy - 0.02
            assert abs(sim.accuracy - exp.accuracy) < 0.06
    assert checked > 0


def test_fig7_expectation_bounds_violations(fig7_result):
    expectation = _by_cell(fig7_result, "expectation")
    simulation = _by_cell(fig7_result, "simulation")
    for key, exp in expectation.items():
        if exp.violation_rate < 0.05:
            assert simulation[key].violation_rate <= exp.violation_rate + 0.02


def test_fig7_implementation_beats_simulation(fig7_result):
    """Stochastic executions usually finish before the planned p95, so the
    implementation variant gets (weakly) better accuracy."""
    simulation = _by_cell(fig7_result, "simulation")
    implementation = _by_cell(fig7_result, "implementation")
    better = 0
    total = 0
    for key, sim in simulation.items():
        impl = implementation[key]
        if sim.violation_rate < 0.05 and impl.violation_rate < 0.05:
            total += 1
            if impl.accuracy >= sim.accuracy - 1e-9:
                better += 1
    assert total > 0
    assert better / total >= 0.7
