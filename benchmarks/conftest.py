"""Benchmark-suite pytest options.

``--workers`` and ``--no-cache`` parameterize the policy-bank benchmarks
(:mod:`benchmarks.bench_policy_bank`) without touching the environment by
hand; they land in ``RAMSIS_BENCH_WORKERS`` / ``RAMSIS_BENCH_NO_CACHE`` so
:func:`benchmarks._common.bench_workers` and friends can read them from any
process.
"""

from __future__ import annotations

import os


def pytest_addoption(parser):
    group = parser.getgroup("ramsis-bench")
    group.addoption(
        "--workers",
        action="store",
        type=int,
        default=None,
        help="processes for parallel policy-bank benchmarks "
        "(default: RAMSIS_BENCH_WORKERS or CPU count)",
    )
    group.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="skip persistent-cache passes in policy-bank benchmarks",
    )


def pytest_configure(config):
    workers = config.getoption("--workers", default=None)
    if workers is not None:
        os.environ["RAMSIS_BENCH_WORKERS"] = str(workers)
    if config.getoption("--no-cache", default=False):
        os.environ["RAMSIS_BENCH_NO_CACHE"] = "1"
