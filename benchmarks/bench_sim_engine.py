"""Online evaluation engine: event-loop throughput and parallel sweeps.

Two measurements, both with hard equivalence gates:

1. **Event-loop throughput** — the same seeded arrival stream is replayed
   through the reference event loop and the optimized fast loop for three
   selector scenarios (RAMSIS and Greedy on per-worker queues, Jellyfish+
   on the central queue).  Timings are best-of-N with the engines
   interleaved, which cancels most scheduler noise on shared runners.  The
   metrics must be **float-identical** per scenario, and the best
   per-worker speedup must clear ``RAMSIS_BENCH_MIN_SPEEDUP`` (default 3x;
   relaxed to 1.5x at smoke scale, where runs are too short to time well).
2. **Sweep wall-clock** — a small constant-load grid is evaluated serially
   and through the parallel sweep engine (``jobs=2``, shared policy
   cache).  The point sequences must be identical; the parallel timing is
   reported but not asserted — on single-core CI runners process fan-out
   cannot win.

Results land in ``benchmarks/out/sim_engine.{txt,json}`` and a copy of the
JSON at the repo root (``BENCH_sim_engine.json``) for trend diffing.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List

import numpy as np

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.cache import PolicyCache
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.runner import clear_caches
from repro.experiments.sweep import SweepCell, run_sweep
from repro.experiments.tasks import image_task
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet
from repro.selectors import (
    GreedyDeadlineSelector,
    JellyfishPlusSelector,
    RamsisSelector,
)
from repro.sim.simulator import Simulation, SimulationConfig

#: Cluster shape of the throughput scenarios.
WORKERS = 8
SLO_MS = 100.0
MAX_BATCH = 8


def _smoke() -> bool:
    return os.environ.get("RAMSIS_BENCH_SCALE", "bench") == "smoke"


def _min_speedup() -> float:
    env = os.environ.get("RAMSIS_BENCH_MIN_SPEEDUP")
    if env:
        return float(env)
    return 1.5 if _smoke() else 3.0


def _bench_models() -> ModelSet:
    """Deterministic three-model zoo: cheap policies, zero-variance p95."""
    return ModelSet(
        [
            ModelProfile(
                name="fast",
                accuracy=0.60,
                latency=LinearLatencyModel(2.0, 8.0, std_ms=0.0),
                family="bench",
            ),
            ModelProfile(
                name="medium",
                accuracy=0.75,
                latency=LinearLatencyModel(3.0, 20.0, std_ms=0.0),
                family="bench",
            ),
            ModelProfile(
                name="slow",
                accuracy=0.90,
                latency=LinearLatencyModel(4.0, 60.0, std_ms=0.0),
                family="bench",
            ),
        ],
        task="bench",
    )


def _time_scenario(
    models: ModelSet,
    factory: Callable[[], object],
    trace: LoadTrace,
    arrivals: np.ndarray,
    reps: int,
) -> Dict[str, float]:
    """Best-of-``reps`` interleaved timing of both engines, one scenario."""
    best = {"reference": float("inf"), "fast": float("inf")}
    metrics = {}
    for _ in range(reps):
        for engine in ("reference", "fast"):
            sim = Simulation(
                SimulationConfig(
                    model_set=models,
                    slo_ms=SLO_MS,
                    num_workers=WORKERS,
                    max_batch_size=MAX_BATCH,
                )
            )
            start = time.perf_counter()
            result = sim.run(
                factory(), trace, arrival_times=arrivals, engine=engine
            )
            elapsed = time.perf_counter() - start
            best[engine] = min(best[engine], elapsed)
            metrics[engine] = result
    assert metrics["fast"] == metrics["reference"], (
        "fast engine metrics diverge from the reference loop"
    )
    queries = metrics["fast"].total_queries
    return {
        "queries": queries,
        "reference_qps": queries / best["reference"],
        "fast_qps": queries / best["fast"],
        "speedup": best["reference"] / best["fast"],
    }


def test_event_loop_throughput():
    models = _bench_models()
    qps = 300.0 if _smoke() else 800.0
    duration_ms = 10_000.0 if _smoke() else 60_000.0
    reps = 3 if _smoke() else 5
    trace = LoadTrace.constant(qps, duration_ms, name="bench-engine")
    arrivals = sample_arrival_times(
        trace, PoissonArrivals(qps), np.random.default_rng(3)
    )

    policy = generate_policy(
        WorkerMDPConfig.default_poisson(
            models,
            slo_ms=SLO_MS,
            load_qps=qps / WORKERS,
            num_workers=WORKERS,
            fld_resolution=10,
            max_batch_size=MAX_BATCH,
        ),
        with_guarantees=False,
    ).policy

    scenarios = {
        "ramsis_per_worker": lambda: RamsisSelector(policy),
        "greedy_per_worker": GreedyDeadlineSelector,
        "jellyfish_central": JellyfishPlusSelector,
    }
    rows = {
        name: _time_scenario(models, factory, trace, arrivals, reps)
        for name, factory in scenarios.items()
    }

    per_worker_best = max(
        rows["ramsis_per_worker"]["speedup"], rows["greedy_per_worker"]["speedup"]
    )
    floor = _min_speedup()
    assert per_worker_best >= floor, (
        f"best per-worker event-loop speedup {per_worker_best:.2f}x "
        f"below the {floor:.1f}x floor"
    )

    lines = [
        f"simulator event loop: K={WORKERS}, {qps:g} QPS x "
        f"{duration_ms / 1000:g} s, best of {reps} (interleaved)",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<20} ref {row['reference_qps']:>9.0f} q/s   "
            f"fast {row['fast_qps']:>9.0f} q/s   "
            f"speedup {row['speedup']:.2f}x"
        )
    data = {
        "workers": WORKERS,
        "qps": qps,
        "duration_ms": duration_ms,
        "reps": reps,
        "min_speedup_floor": floor,
        "scenarios": rows,
    }
    emit("sim_engine", "\n".join(lines), data=data, root=True)


def test_sweep_serial_vs_parallel(tmp_path):
    scale = bench_scale()
    task = image_task()
    loads = scale.constant_loads_qps[:3]
    cells: List[SweepCell] = [
        SweepCell(
            method=method,
            task=task,
            slo_ms=task.slos_ms[0],
            num_workers=scale.constant_workers_image,
            trace=LoadTrace.constant(
                load, scale.constant_duration_s * 1000.0, name=f"be-{load:g}"
            ),
            seed=29,
            oracle_load=True,
        )
        for load in loads
        for method in ("RAMSIS", "JF")
    ]

    clear_caches()
    start = time.perf_counter()
    serial = run_sweep(cells, scale)
    serial_s = time.perf_counter() - start

    clear_caches()
    cache = PolicyCache(directory=tmp_path / "sweep-cache")
    start = time.perf_counter()
    parallel = run_sweep(cells, scale, jobs=2, cache=cache)
    parallel_s = time.perf_counter() - start
    clear_caches()

    assert parallel == serial, "parallel sweep points differ from serial"

    speedup = serial_s / parallel_s
    text = (
        f"experiment sweep: {len(cells)} cells, jobs=2\n"
        f"serial:   {serial_s:8.3f} s\n"
        f"parallel: {parallel_s:8.3f} s ({speedup:.2f}x, "
        f"{os.cpu_count() or 1} cpu(s) — informational on 1-cpu hosts)"
    )
    emit(
        "sim_engine_sweep",
        text,
        data={
            "cells": len(cells),
            "jobs": 2,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
            "cpus": os.cpu_count() or 1,
            "identical": True,
        },
    )
