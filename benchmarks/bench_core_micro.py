"""Micro-benchmarks of the core building blocks.

Not a paper artifact — these time the individual stages that every
experiment composes, so performance regressions are localized:

- transition-kernel construction (split and equilibrium-renewal views);
- one value-iteration sweep and a full solve;
- policy lookup (the online fast path, §3.2.2 — must be microseconds);
- stationary-distribution evaluation (§5.1);
- discrete-event simulator throughput (queries/second of sim time).
"""

import time

import numpy as np

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.discretization import fixed_length_grid
from repro.core.generator import generate_policy
from repro.core.guarantees import stationary_distribution
from repro.core.mdp import build_worker_mdp
from repro.core.solvers import value_iteration
from repro.core.transitions import (
    EquilibriumRenewalKernelBuilder,
    GammaGaps,
    SplitViewKernelBuilder,
)
from repro.experiments.reporting import format_table
from repro.experiments.tasks import image_task
from repro.selectors import JellyfishPlusSelector, RamsisSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig


def _config(load=160.0, workers=8):
    task = image_task()
    return WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=task.slos_ms[0],
        load_qps=load,
        num_workers=workers,
        fld_resolution=bench_scale().fld_resolution,
        max_batch_size=bench_scale().max_batch_size,
    )


def test_split_kernel_row(benchmark):
    grid = fixed_length_grid(150.0, 100)
    builder = SplitViewKernelBuilder(grid, PoissonArrivals(30.0), max_queue=32)

    def build_row():
        builder._service_cache.clear()
        return builder.service_row(63.4)

    row = benchmark(build_row)
    assert abs(row.sum() - 1.0) < 1e-8


def test_equilibrium_kernel_row(benchmark):
    grid = fixed_length_grid(150.0, 100)
    builder = EquilibriumRenewalKernelBuilder(
        grid, GammaGaps(shape=8.0, scale_ms=25.0 / 8.0), max_queue=32
    )

    def build_row():
        builder._service_cache.clear()
        return builder.service_row(63.4)

    row = benchmark(build_row)
    assert abs(row.sum() - 1.0) < 1e-7


def test_value_iteration_sweep(benchmark):
    mdp = build_worker_mdp(_config())
    values = mdp.initial_values()

    result = benchmark(lambda: mdp.backup(values))
    assert result.values.shape == values.shape


def test_full_policy_generation(benchmark):
    result = benchmark.pedantic(
        generate_policy,
        args=(_config(),),
        kwargs={"with_guarantees": False},
        rounds=1,
        iterations=1,
    )
    assert result.iterations > 0


def test_policy_online_lookup(benchmark):
    """§3.2.2: online MS decisions must be effectively free."""
    policy = generate_policy(_config(), with_guarantees=False).policy
    rng = np.random.default_rng(0)
    queue_lengths = rng.integers(1, policy.max_queue + 1, size=256)
    slacks = rng.uniform(-10.0, 150.0, size=256)

    def lookups():
        for n, s in zip(queue_lengths, slacks):
            policy.action_for(int(n), float(s))

    benchmark(lookups)


def test_stationary_distribution(benchmark):
    config = _config()
    mdp = build_worker_mdp(config)
    policy = mdp.extract_policy(value_iteration(mdp).values)

    dist = benchmark.pedantic(
        stationary_distribution, args=(mdp, policy), rounds=1, iterations=1
    )
    assert abs(dist.sum() - 1.0) < 1e-8


def test_simulator_throughput(benchmark):
    """Simulated queries per wall second, RAMSIS discipline."""
    task = image_task()
    load, workers = 160.0, 8
    policy = generate_policy(_config(load, workers), with_guarantees=False).policy
    trace = LoadTrace.constant(load, 20_000.0)
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=task.slos_ms[0],
            num_workers=workers,
            max_batch_size=bench_scale().max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=7,
            track_responses=False,
        )
    )

    metrics = benchmark.pedantic(
        sim.run,
        args=(RamsisSelector(policy), trace),
        kwargs={"pattern": PoissonArrivals(load)},
        rounds=1,
        iterations=1,
    )
    assert metrics.total_queries > 1000


def test_simulator_throughput_central_queue(benchmark):
    """Baseline (central queue) discipline throughput."""
    task = image_task()
    load, workers = 160.0, 8
    trace = LoadTrace.constant(load, 20_000.0)
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=task.slos_ms[0],
            num_workers=workers,
            max_batch_size=bench_scale().max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=7,
            track_responses=False,
        )
    )

    metrics = benchmark.pedantic(
        sim.run,
        args=(JellyfishPlusSelector(), trace),
        kwargs={"pattern": PoissonArrivals(load)},
        rounds=1,
        iterations=1,
    )
    assert metrics.total_queries > 1000


def test_core_micro_report():
    """One self-timed pass over the core stages, persisted for trend diffs.

    The pytest-benchmark fixtures above give precise per-stage numbers
    interactively; this table is the machine-readable record that
    ``ramsis bench-history`` tracks across commits.
    """
    config = _config()
    timings = {}

    start = time.perf_counter()
    mdp = build_worker_mdp(config)
    timings["build_worker_mdp_s"] = time.perf_counter() - start

    values = mdp.initial_values()
    start = time.perf_counter()
    mdp.backup(values)
    timings["vi_sweep_s"] = time.perf_counter() - start

    start = time.perf_counter()
    solution = value_iteration(mdp)
    timings["value_iteration_s"] = time.perf_counter() - start

    policy = mdp.extract_policy(solution.values)
    rng = np.random.default_rng(0)
    queue_lengths = rng.integers(1, policy.max_queue + 1, size=1024)
    slacks = rng.uniform(-10.0, 150.0, size=1024)
    start = time.perf_counter()
    for n, s in zip(queue_lengths, slacks):
        policy.action_for(int(n), float(s))
    elapsed = time.perf_counter() - start
    timings["policy_lookup_us"] = elapsed / len(queue_lengths) * 1e6

    start = time.perf_counter()
    stationary_distribution(mdp, policy)
    timings["stationary_distribution_s"] = time.perf_counter() - start

    emit(
        "core_micro",
        format_table(
            ["stage", "time"],
            [(k, f"{v:.4f}") for k, v in timings.items()],
            title="Core building-block timings (single pass)",
        ),
        data=timings,
    )
    # §3.2.2: online decisions must be effectively free.
    assert timings["policy_lookup_us"] < 1000.0
