"""Figure 10 (Appendix C): impact of time discretization.

FLD with D in {2, 10, 100} versus MD.  Paper findings asserted:

- accuracy (weakly) improves with D — coarser grids under-estimate slack
  and act conservatively;
- FLD with large D matches MD;
- diminishing returns: the D=10 -> D=100 gap is smaller than D=2 -> D=10.
"""

import pytest

from benchmarks._common import bench_scale, emit, points_payload
from repro.experiments.appendix import render_variant_sweep, run_fig10


@pytest.fixture(scope="module")
def fig10_points():
    scale = bench_scale()
    return run_fig10(scale=scale, resolutions=(2, 10, 100))


def _mean_accuracy(points, variant):
    cells = [p for p in points if p.variant == variant and p.violation_rate < 0.05]
    if not cells:
        return None
    return sum(p.accuracy for p in cells) / len(cells)


def test_fig10_run_and_render(benchmark, fig10_points):
    points = benchmark.pedantic(lambda: fig10_points, rounds=1, iterations=1)
    emit(
        "fig10_discretization",
        render_variant_sweep(points, "Figure 10 — FLD resolution vs MD"),
        data={"points": points_payload(points)},
    )
    assert {p.variant for p in points} == {"FLD D=2", "FLD D=10", "FLD D=100", "MD"}


def test_fig10_accuracy_improves_with_resolution(fig10_points):
    d2 = _mean_accuracy(fig10_points, "FLD D=2")
    d10 = _mean_accuracy(fig10_points, "FLD D=10")
    d100 = _mean_accuracy(fig10_points, "FLD D=100")
    assert d2 is not None and d10 is not None and d100 is not None
    assert d10 >= d2 - 0.01
    assert d100 >= d10 - 0.01


def test_fig10_fld100_matches_md(fig10_points):
    d100 = _mean_accuracy(fig10_points, "FLD D=100")
    md = _mean_accuracy(fig10_points, "MD")
    assert d100 == pytest.approx(md, abs=0.02)


def test_fig10_diminishing_returns(fig10_points):
    d2 = _mean_accuracy(fig10_points, "FLD D=2")
    d10 = _mean_accuracy(fig10_points, "FLD D=10")
    d100 = _mean_accuracy(fig10_points, "FLD D=100")
    assert (d100 - d10) <= (d10 - d2) + 0.02
