"""Figure 11 (Appendix D): maximal vs variable batching.

The paper finds variable-batching policies select the maximal batch in 80%
of decisions and perform equivalently online, while costing far more to
generate (Table 2).  Asserted here:

- online accuracy of the two strategies is near-identical per load;
- policy generation with variable batching is measurably slower.
"""

import time

import pytest

from benchmarks._common import bench_scale, emit, points_payload
from repro.experiments.appendix import render_variant_sweep, run_fig11


@pytest.fixture(scope="module")
def fig11_points():
    # Variable-batching policy generation is expensive; keep a trimmed
    # load grid at bench scale.
    scale = bench_scale()
    loads = scale.constant_loads_qps[::2]
    return run_fig11(scale=scale, loads_qps=loads)


def test_fig11_run_and_render(benchmark, fig11_points):
    points = benchmark.pedantic(lambda: fig11_points, rounds=1, iterations=1)
    emit(
        "fig11_batching",
        render_variant_sweep(points, "Figure 11 — maximal vs variable batching"),
        data={"points": points_payload(points)},
    )
    assert {p.variant for p in points} == {"maximal", "variable"}


def test_fig11_equivalent_online_performance(fig11_points):
    maximal = {p.load_qps: p for p in fig11_points if p.variant == "maximal"}
    variable = {p.load_qps: p for p in fig11_points if p.variant == "variable"}
    compared = 0
    for load in set(maximal) & set(variable):
        a, b = maximal[load], variable[load]
        if a.violation_rate < 0.05 and b.violation_rate < 0.05:
            compared += 1
            assert a.accuracy == pytest.approx(b.accuracy, abs=0.03)
    assert compared > 0


def test_fig11_variable_batching_generation_cost(benchmark):
    """Table 2's companion fact: variable batching costs much more."""
    from dataclasses import replace

    from repro.core.config import BatchingMode, WorkerMDPConfig
    from repro.core.mdp import build_worker_mdp
    from repro.core.solvers import value_iteration
    from repro.experiments.tasks import image_task

    scale = bench_scale()
    task = image_task()
    base = WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=task.slos_ms[0],
        load_qps=30.0,
        num_workers=1,
        fld_resolution=scale.fld_resolution,
        max_batch_size=scale.max_batch_size,
    )

    timings = {}
    for mode in (BatchingMode.MAXIMAL, BatchingMode.VARIABLE):
        config = replace(base, batching=mode)
        start = time.perf_counter()
        value_iteration(build_worker_mdp(config))
        timings[mode] = time.perf_counter() - start

    def generate_maximal():
        return value_iteration(build_worker_mdp(base))

    benchmark.pedantic(generate_maximal, rounds=1, iterations=1)
    assert timings[BatchingMode.VARIABLE] > timings[BatchingMode.MAXIMAL]
