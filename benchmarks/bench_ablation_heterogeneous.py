"""Ablation: heterogeneous worker types (§7's homogeneity remark).

The paper notes worker homogeneity is not fundamental — RAMSIS generates
policies per worker (type).  This ablation builds a cluster of half 1.0x
and half 1.6x-slower workers and compares three deployments:

- **matched**: each worker runs the policy generated from its own type's
  latency profile (the paper's per-worker generation);
- **fast-everywhere**: the fast type's policy on every worker (optimistic
  on the slow half);
- **slow-everywhere**: the slow type's policy on every worker
  (conservative on the fast half).

Asserted: matched policies violate no more than the optimistic deployment
and are at least as accurate as the conservative one.
"""

import pytest

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.reporting import format_table
from repro.experiments.tasks import image_task
from repro.selectors import RamsisSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig

SLOW_FACTOR = 1.6


@pytest.fixture(scope="module")
def hetero_cells():
    scale = bench_scale()
    task = image_task()
    slo = task.slos_ms[0]
    workers = 6
    load = 15.0 * workers  # per-worker regime where both types are feasible
    factors = tuple(1.0 if i % 2 == 0 else SLOW_FACTOR for i in range(workers))
    trace = LoadTrace.constant(load, scale.constant_duration_s * 1000.0)

    def policy_for(factor):
        config = WorkerMDPConfig.default_poisson(
            task.model_set.with_latency_scale(factor),
            slo_ms=slo,
            load_qps=load,
            num_workers=workers,
            fld_resolution=scale.fld_resolution,
            max_batch_size=scale.max_batch_size,
        )
        return generate_policy(config, with_guarantees=False).policy

    fast, slow = policy_for(1.0), policy_for(SLOW_FACTOR)
    deployments = {
        "matched": [
            RamsisSelector(fast if f == 1.0 else slow) for f in factors
        ],
        "fast-everywhere": [RamsisSelector(fast) for _ in factors],
        "slow-everywhere": [RamsisSelector(slow) for _ in factors],
    }
    cells = {}
    for label, selectors in deployments.items():
        sim = Simulation(
            SimulationConfig(
                model_set=task.model_set,
                slo_ms=slo,
                num_workers=workers,
                max_batch_size=scale.max_batch_size,
                worker_speed_factors=factors,
                monitor=OracleLoadMonitor(trace),
                seed=51,
                track_responses=False,
            )
        )
        cells[label] = sim.run(selectors, trace, pattern=PoissonArrivals(load))
    return cells


def test_heterogeneous_report(benchmark, hetero_cells):
    cells = benchmark.pedantic(lambda: hetero_cells, rounds=1, iterations=1)
    rows = [
        (
            label,
            f"{m.accuracy_per_satisfied_query * 100:.2f}%",
            f"{m.violation_rate * 100:.3f}%",
        )
        for label, m in cells.items()
    ]
    emit(
        "ablation_heterogeneous",
        format_table(
            ["deployment", "accuracy", "violations"],
            rows,
            title=(
                "Ablation — per-worker-type policies on a half-1.0x / "
                f"half-{SLOW_FACTOR}x cluster"
            ),
        ),
        data={
            "slow_factor": SLOW_FACTOR,
            "deployments": {
                label: {
                    "accuracy": m.accuracy_per_satisfied_query,
                    "violation_rate": m.violation_rate,
                    "queries": m.total_queries,
                }
                for label, m in cells.items()
            },
        },
    )


def test_matched_no_worse_than_optimistic(hetero_cells):
    assert hetero_cells["matched"].violation_rate <= (
        hetero_cells["fast-everywhere"].violation_rate + 0.01
    )


def test_matched_at_least_conservative_accuracy(hetero_cells):
    assert hetero_cells["matched"].accuracy_per_satisfied_query >= (
        hetero_cells["slow-everywhere"].accuracy_per_satisfied_query - 0.01
    )
