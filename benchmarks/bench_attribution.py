"""Attribution-engine overhead micro-benchmark.

Runs the same simulation with the tail-latency attribution engine
detached (the default), attached to the fast engine's direct hooks,
attached with a metrics registry, and attached as a forwarding-tracer
tap on the reference engine — and reports wall time and the relative
cost.  The detached configuration is what every experiment and benchmark
runs, so its overhead must stay negligible with the ``attributing``
guard branches in the event loops: after every attributed variant has
run, the detached path is re-timed against an interleaved detached
control and gated at ≤1% drift (``RAMSIS_BENCH_MAX_OFF_OVERHEAD``
overrides the tolerance; interleaving cancels machine-level clock drift
a sequential before/after comparison would misread as overhead).  The
recorded table under ``benchmarks/out/`` (and the root
``BENCH_attribution.json``) documents what opting in costs.
"""

import os
import time

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.experiments.tasks import image_task
from repro.obs.attribution import LatencyAttributor
from repro.obs.metrics import MetricsRegistry
from repro.experiments.reporting import format_table
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig
from repro.selectors import JellyfishPlusSelector

import numpy as np

LOAD_QPS = 160.0
WORKERS = 8
DURATION_MS = 20_000.0


def _max_off_overhead() -> float:
    return float(os.environ.get("RAMSIS_BENCH_MAX_OFF_OVERHEAD", "1.01"))


def _run(arrivals, trace, attributor=None, registry=None, engine="auto"):
    task = image_task()
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=task.slos_ms[0],
            num_workers=WORKERS,
            max_batch_size=bench_scale().max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=7,
            track_responses=False,
            attributor=attributor,
            registry=registry,
        )
    )
    start = time.perf_counter()
    metrics = sim.run(
        JellyfishPlusSelector(), trace, arrival_times=arrivals, engine=engine
    )
    return time.perf_counter() - start, metrics


def test_attribution_overhead(benchmark):
    """Times detached/attached/attached+registry/tracer-tap variants on
    one arrival realization; the benchmark fixture times the default
    (detached) path, which is re-measured last against an interleaved
    control and gated at ≤1% drift."""
    trace = LoadTrace.constant(LOAD_QPS, DURATION_MS)
    rng = np.random.default_rng(7)
    arrivals = np.sort(
        sample_arrival_times(trace, PoissonArrivals(LOAD_QPS), rng)
    )
    task = image_task()
    slo_ms = task.slos_ms[0]

    # Warm once (JIT-free Python, but primes caches fairly).
    _run(arrivals, trace)

    def _make_attr(registry=None):
        return LatencyAttributor(
            slo_ms=slo_ms, models=list(task.model_set), registry=registry
        )

    def _with_registry():
        # Registry feeds only the attributor's metric publication; the
        # sim itself stays on the fast engine (a config-level registry
        # would flip "auto" to the reference loop and swamp the ratio).
        return _make_attr(MetricsRegistry()), None, "auto"

    rows = []
    baseline_s = None
    variants = (
        ("detached", lambda: (None, None, "auto")),
        ("attributor (fast)", lambda: (_make_attr(), None, "auto")),
        ("attributor + registry", _with_registry),
        ("tracer tap (reference)", lambda: (_make_attr(), None, "reference")),
    )
    reference = None
    attributed = None
    series = {}
    for label, make in variants:
        best = None
        for _ in range(3):
            attributor, registry, engine = make()
            if engine == "reference":
                # Attach through the tracer protocol instead of hooks.
                elapsed, metrics = _run_tap(arrivals, trace, attributor)
            else:
                elapsed, metrics = _run(
                    arrivals, trace, attributor, registry, engine
                )
            best = elapsed if best is None else min(best, elapsed)
        if reference is None:
            reference = metrics
            baseline_s = best
        # Attribution must never change simulation results.
        assert metrics.violation_rate == reference.violation_rate
        assert metrics.total_queries == reference.total_queries
        if attributor is not None:
            snap = attributor.to_json_dict()
            assert snap["totals"]["queries"] == reference.total_queries
            if attributed is None:
                attributed = snap
        series[label] = {
            "best_of_3_ms": best * 1000.0,
            "vs_off": best / baseline_s,
        }
        rows.append(
            [
                label,
                f"{best * 1000.0:.1f}",
                f"{best / baseline_s:.2f}x",
                f"{metrics.total_queries}",
            ]
        )

    # Re-measure the detached path after every attributed variant has
    # run: pins the cost of the ``attributing`` guard branches in the
    # event loops, interleaved with a control so the paired ratio
    # cancels wall-clock drift.
    ceiling = _max_off_overhead()

    def _paired_off_drift(pairs=7):
        control_best = remeasured_best = None
        for _ in range(pairs):
            elapsed, _ = _run(arrivals, trace)
            control_best = (
                elapsed if control_best is None else min(control_best, elapsed)
            )
            elapsed, metrics = _run(arrivals, trace)
            remeasured_best = (
                elapsed
                if remeasured_best is None
                else min(remeasured_best, elapsed)
            )
        assert metrics.total_queries == reference.total_queries
        return remeasured_best / control_best, remeasured_best

    off_drift, remeasured_best = _paired_off_drift()
    if off_drift > ceiling:
        # One retry batch: a genuine guard-branch regression fails both,
        # a scheduler-noise excursion doesn't.
        off_drift, remeasured_best = _paired_off_drift()
    series["detached (re-measured)"] = {
        "best_of_7_ms": remeasured_best * 1000.0,
        "vs_off": off_drift,
    }
    rows.append(
        [
            "detached (re-measured)",
            f"{remeasured_best * 1000.0:.1f}",
            f"{off_drift:.2f}x",
            f"{reference.total_queries}",
        ]
    )

    assert off_drift <= ceiling, (
        f"detached path drifted to {off_drift:.3f}x the interleaved "
        f"control (ceiling {ceiling:.2f}x) — attribution guard branches "
        f"are no longer free"
    )

    emit(
        "attribution",
        format_table(
            ["variant", "best ms", "vs off", "queries"],
            rows,
            title=(
                f"Attribution overhead ({LOAD_QPS:.0f} QPS, {WORKERS} "
                f"workers, {DURATION_MS / 1000.0:.0f} s simulated)"
            ),
        ),
        data={
            "load_qps": LOAD_QPS,
            "workers": WORKERS,
            "duration_ms": DURATION_MS,
            "queries": reference.total_queries,
            "off_overhead_ceiling": ceiling,
            "attributed_rows": len(attributed["rows"]),
            "burn_alerts": attributed["burn"]["alerts"],
            "variants": series,
        },
        root=True,
    )

    # The pytest-benchmark timing tracks the default (detached) path.
    result = benchmark.pedantic(
        lambda: _run(arrivals, trace)[1], rounds=1, iterations=1
    )
    assert result.total_queries > 1000


def _run_tap(arrivals, trace, attributor):
    """Reference engine with the attributor attached as a tracer tap."""
    task = image_task()
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=task.slos_ms[0],
            num_workers=WORKERS,
            max_batch_size=bench_scale().max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=7,
            track_responses=False,
            tracer=attributor,
        )
    )
    start = time.perf_counter()
    metrics = sim.run(JellyfishPlusSelector(), trace, arrival_times=arrivals)
    return time.perf_counter() - start, metrics
