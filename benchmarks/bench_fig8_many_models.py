"""Figure 8: scaling to many models (§7.3.2).

M=9 (Pareto front) vs M=60 (synthetic interpolated superset), RAMSIS vs
ModelSwitching.  Paper insights asserted:

- RAMSIS gains almost nothing from 60 models vs 9 (it already emulates a
  dense model set through per-batch decisions);
- ModelSwitching improves noticeably with more models, yet stays at or
  below RAMSIS.
"""

import pytest

from benchmarks._common import bench_scale, emit, points_payload
from repro.experiments.fig8 import render_fig8, run_fig8


@pytest.fixture(scope="module")
def fig8_result():
    return run_fig8(scale=bench_scale())


def _mean_gain(result, method):
    low = dict(result.series(method, 9))
    high = dict(result.series(method, 60))
    common = sorted(set(low) & set(high))
    if not common:
        return None
    return sum(high[x] - low[x] for x in common) / len(common)


def test_fig8_run_and_render(benchmark, fig8_result):
    result = benchmark.pedantic(lambda: fig8_result, rounds=1, iterations=1)
    emit(
        "fig8_many_models",
        render_fig8(result),
        data={
            "points": [
                dict(method=label, model_count=count, **row)
                for (label, count, p) in result.points
                for row in points_payload([p])
            ]
        },
    )
    assert {c for _, c, _ in result.points} == {9, 60}


def test_fig8_ramsis_insensitive_to_model_count(fig8_result):
    gain = _mean_gain(fig8_result, "RAMSIS")
    assert gain is not None
    assert abs(gain) < 0.02  # "negligible performance improvement"


def test_fig8_modelswitching_benefits_more(fig8_result):
    ramsis_gain = _mean_gain(fig8_result, "RAMSIS")
    ms_gain = _mean_gain(fig8_result, "MS")
    if ramsis_gain is not None and ms_gain is not None:
        assert ms_gain >= ramsis_gain - 0.005


def test_fig8_ramsis_still_ahead_with_60_models(fig8_result):
    ramsis = dict(fig8_result.series("RAMSIS", 60))
    ms = dict(fig8_result.series("MS", 60))
    for load in set(ramsis) & set(ms):
        assert ramsis[load] >= ms[load] - 0.01
