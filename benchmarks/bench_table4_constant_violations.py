"""Table 4 (Appendix F): SLO violation rates under constant load.

Companion to Fig. 6.  Paper pattern asserted: violations stay below 5% for
every method across the satisfiable load range and blow up only at loads
near/beyond the fastest model's peak throughput (the paper's 3600-4000 QPS
band, i.e. the top of the scaled load range).
"""

import pytest

from benchmarks._common import cached_fig6, emit, points_payload
from repro.experiments.tables import render_table4


@pytest.fixture(scope="module")
def fig6_result():
    return cached_fig6()


def test_table4_render(benchmark, fig6_result):
    result = benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    emit(
        "table4_constant_violations",
        render_table4(result),
        data={"points": points_payload(result.points)},
    )


def test_table4_low_loads_satisfiable(fig6_result):
    """In the lower half of the load range, RAMSIS keeps violations < 5%."""
    loads = sorted({p.load_qps for p in fig6_result.points})
    lower_half = set(loads[: max(len(loads) // 2, 1)])
    for p in fig6_result.points:
        if p.method == "RAMSIS" and p.load_qps in lower_half:
            assert p.violation_rate < 0.05, (
                f"RAMSIS violated at low load {p.load_qps} ({p.task})"
            )


def test_table4_ramsis_comparable_to_baselines(fig6_result):
    """Average violation rates are comparable across methods on the cells
    where everyone is satisfiable (paper: 0.30% vs 0.23% vs 0.39%)."""
    by_cell = {}
    for p in fig6_result.points:
        by_cell.setdefault((p.task, p.slo_ms, p.load_qps), {})[p.method] = p
    rates = {"RAMSIS": [], "JF": [], "MS": []}
    for cell in by_cell.values():
        if len(cell) == 3 and all(p.violation_rate < 0.05 for p in cell.values()):
            for method, p in cell.items():
                rates[method].append(p.violation_rate)
    if rates["RAMSIS"]:
        avg = {m: sum(v) / len(v) for m, v in rates.items() if v}
        for m, value in avg.items():
            assert value < 0.05
