"""Figure 2: the motivating demonstration (§2.2).

One shared Poisson arrival realization, two schemes.  Asserted, exactly as
the paper's figure depicts:

- the load-granular baseline pins a single model across the timeline;
- RAMSIS selects more than one model, including upgrades to models more
  accurate than the baseline's choice during lulls;
- RAMSIS's accuracy is higher at a comparable (near-zero) violation rate.
"""

import pytest

from benchmarks._common import bench_scale, emit
from repro.experiments.fig2 import render_fig2, run_fig2


@pytest.fixture(scope="module")
def fig2_result():
    return run_fig2(scale=bench_scale())


def test_fig2_run_and_render(benchmark, fig2_result):
    result = benchmark.pedantic(lambda: fig2_result, rounds=1, iterations=1)
    emit(
        "fig2_motivation",
        render_fig2(result),
        data={
            "ramsis_accuracy": result.ramsis_metrics.accuracy_per_satisfied_query,
            "baseline_accuracy": (
                result.baseline_metrics.accuracy_per_satisfied_query
            ),
            "ramsis_violation_rate": result.ramsis_metrics.violation_rate,
            "baseline_violation_rate": result.baseline_metrics.violation_rate,
            "queries": result.ramsis_metrics.total_queries,
            "ramsis_models_used": sorted(result.ramsis_models_used),
            "baseline_models_used": sorted(result.baseline_models_used),
            "lulls": len(result.lulls),
        },
    )
    assert result.ramsis_metrics.total_queries == (
        result.baseline_metrics.total_queries
    )


def test_fig2_baseline_pins_one_model(fig2_result):
    assert len(fig2_result.baseline_models_used) == 1


def test_fig2_ramsis_exploits_lulls(fig2_result):
    assert len(fig2_result.ramsis_models_used) >= 2
    assert len(fig2_result.ramsis_upgrades()) > 0
    assert len(fig2_result.lulls) > 0


def test_fig2_higher_accuracy_same_violations(fig2_result):
    ramsis, baseline = fig2_result.ramsis_metrics, fig2_result.baseline_metrics
    assert ramsis.accuracy_per_satisfied_query > (
        baseline.accuracy_per_satisfied_query
    )
    assert ramsis.violation_rate < 0.05
    assert baseline.violation_rate < 0.05