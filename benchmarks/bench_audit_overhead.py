"""Live-auditor overhead micro-benchmark.

A/B of the same RAMSIS pinned-policy simulation with auditing off (the
default ``NULL_TRACER`` path every experiment uses), with a bare
:class:`GuaranteeAuditor` as the tracer, and with the auditor fanning out
to a :class:`RecordingTracer`.  The off variant is the PR 1 baseline path
byte-for-byte — the auditor attaches purely through the tracer interface —
so its timing documents that auditing disabled costs nothing; the other
rows document what the runtime contract costs when switched on.
"""

import time

import numpy as np

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_audit_references
from repro.experiments.tasks import text_task
from repro.obs.audit import GuaranteeAuditor
from repro.obs.trace import RecordingTracer
from repro.selectors import RamsisSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.sim.simulator import Simulation, SimulationConfig

LOAD_QPS = 60.0
WORKERS = 2
DURATION_MS = 20_000.0


def _run(task, arrivals, trace, slo_ms, policy, tracer):
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=slo_ms,
            num_workers=WORKERS,
            max_batch_size=bench_scale().max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=7,
            track_responses=False,
            tracer=tracer,
        )
    )
    start = time.perf_counter()
    metrics = sim.run(RamsisSelector(policy), trace, arrival_times=arrivals)
    return time.perf_counter() - start, metrics


def test_audit_overhead(benchmark):
    """Times off / auditor / auditor+recording variants on one arrival
    realization; the benchmark fixture times the default (off) path."""
    task = text_task()
    slo_ms = task.slos_ms[0]
    scale = bench_scale()
    trace = LoadTrace.constant(LOAD_QPS, DURATION_MS)
    rng = np.random.default_rng(7)
    arrivals = np.sort(
        sample_arrival_times(trace, PoissonArrivals(LOAD_QPS), rng)
    )
    policy, guarantees, occupancy = build_audit_references(
        task.model_set, slo_ms, LOAD_QPS, WORKERS, scale
    )

    def make_auditor(inner=None):
        return GuaranteeAuditor(
            guarantees,
            policy=policy,
            expected_occupancy=occupancy,
            inner=inner,
        )

    # Warm once (primes policy/latency caches fairly).
    _run(task, arrivals, trace, slo_ms, policy, None)

    variants = (
        ("off (no auditor)", lambda: None),
        ("auditor", make_auditor),
        ("auditor + recording", lambda: make_auditor(RecordingTracer())),
    )
    rows = []
    series = {}
    baseline_s = None
    reference = None
    for label, make in variants:
        best = None
        for _ in range(3):
            elapsed, metrics = _run(
                task, arrivals, trace, slo_ms, policy, make()
            )
            best = elapsed if best is None else min(best, elapsed)
        if reference is None:
            reference = metrics
            baseline_s = best
        # Auditing must never change simulation results.
        assert metrics.violation_rate == reference.violation_rate
        assert metrics.total_queries == reference.total_queries
        series[label] = {
            "best_of_3_ms": best * 1000.0,
            "vs_off": best / baseline_s,
        }
        rows.append(
            [
                label,
                f"{best * 1000.0:.1f}",
                f"{best / baseline_s:.2f}x",
                f"{metrics.total_queries}",
            ]
        )

    emit(
        "audit_overhead",
        format_table(
            ["variant", "best-of-3 ms", "vs off", "queries"],
            rows,
            title=(
                f"Live-audit overhead ({LOAD_QPS:.0f} QPS, {WORKERS} "
                f"workers, {DURATION_MS / 1000.0:.0f} s simulated)"
            ),
        ),
        data={
            "load_qps": LOAD_QPS,
            "workers": WORKERS,
            "duration_ms": DURATION_MS,
            "queries": reference.total_queries,
            "variants": series,
        },
        root=True,
    )

    # The pytest-benchmark timing tracks the default (auditing-off) path.
    result = benchmark.pedantic(
        lambda: _run(task, arrivals, trace, slo_ms, policy, None)[1],
        rounds=1,
        iterations=1,
    )
    assert result.total_queries > 500
