"""Shared benchmark configuration and result handling.

Every benchmark regenerates one of the paper's tables or figures at
``BENCH_SCALE`` — a 10x-smaller cluster with per-worker load identical to
the paper (DESIGN.md §6) and trimmed sweep densities so the full benchmark
suite completes in minutes.  Rendered tables are written to
``benchmarks/out/<name>.txt`` (and echoed through pytest's captured stdout)
so the reproduced series survive the run.

Set ``RAMSIS_BENCH_SCALE=paper`` in the environment to run any benchmark at
the paper's full parameters (hours).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.experiments.scale import ExperimentScale

__all__ = [
    "bench_scale",
    "bench_workers",
    "bench_use_cache",
    "emit",
    "points_payload",
    "cached_fig5",
    "cached_fig6",
]

_OUT_DIR = Path(__file__).parent / "out"
_ROOT_DIR = Path(__file__).parent.parent


def bench_scale() -> ExperimentScale:
    """The benchmark preset (overridable via RAMSIS_BENCH_SCALE)."""
    name = os.environ.get("RAMSIS_BENCH_SCALE", "bench")
    if name == "paper":
        return ExperimentScale.paper()
    if name == "default":
        return ExperimentScale.default()
    if name == "smoke":
        return ExperimentScale.smoke()
    # The benchmark default: 1/10th cluster, trimmed sweeps.
    return ExperimentScale.default().with_overrides(
        name="bench",
        worker_counts=(4, 6, 8, 10, 12, 14),
        constant_loads_qps=tuple(float(q) for q in range(40, 401, 80)),
        trace_duration_s=60.0,
        constant_duration_s=15.0,
        fld_resolution=30,
        policy_grid_points=5,
        ms_profile_duration_s=5.0,
        ms_profile_grid_points=6,
        fidelity_worker_counts=(2, 4),
        many_model_workers=6,
    )


def bench_workers() -> int:
    """Process count for parallel policy-bank passes.

    Set with ``pytest benchmarks/... --workers N`` (see
    ``benchmarks/conftest.py``) or ``RAMSIS_BENCH_WORKERS``; defaults to the
    machine's CPU count, floored at 2 so the parallel path is exercised
    even on single-core CI runners.
    """
    env = os.environ.get("RAMSIS_BENCH_WORKERS")
    if env:
        return max(int(env), 1)
    return max(os.cpu_count() or 1, 2)


def bench_use_cache() -> bool:
    """Whether policy-bank benchmarks should run their cache passes.

    Disabled with ``pytest benchmarks/... --no-cache`` or
    ``RAMSIS_BENCH_NO_CACHE=1``.
    """
    return os.environ.get("RAMSIS_BENCH_NO_CACHE", "") not in ("1", "true")


def emit(
    name: str,
    text: str,
    data: Optional[Dict] = None,
    root: bool = False,
) -> None:
    """Print a rendered table and persist it under benchmarks/out/.

    When ``data`` is given, a machine-readable ``<name>.json`` is written
    alongside the text table so the performance trajectory can be diffed
    across commits instead of scraped from ASCII (and appended to the
    benchmark history log by ``ramsis bench-history``).  With ``root=True``
    the same payload is also written to ``BENCH_<name>.json`` at the repo
    root — the convention for headline numbers that should be visible
    without digging into ``benchmarks/out/``.
    """
    print()
    print(text)
    _OUT_DIR.mkdir(exist_ok=True)
    (_OUT_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = json.dumps(data, indent=1, sort_keys=True) + "\n"
        (_OUT_DIR / f"{name}.json").write_text(payload)
        if root:
            (_ROOT_DIR / f"BENCH_{name}.json").write_text(payload)


def points_payload(points: Sequence) -> List[Dict]:
    """Convert a sequence of ``MethodPoint``-like rows to JSON-safe dicts.

    Accepts any objects exposing the ``MethodPoint`` fields; missing
    attributes are simply omitted so ablation variants with extra or
    fewer columns serialize without ceremony.
    """
    fields = (
        "task",
        "method",
        "variant",
        "slo_ms",
        "num_workers",
        "load_qps",
        "accuracy",
        "violation_rate",
        "queries",
    )
    rows: List[Dict] = []
    for point in points:
        row: Dict = {}
        for field in fields:
            value = getattr(point, field, None)
            if value is None:
                continue
            row[field] = value.item() if hasattr(value, "item") else value
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure results shared between benchmarks (Fig. 5 <-> Table 3 etc.).
# ----------------------------------------------------------------------
_RESULTS: Dict[str, object] = {}


def cached_fig5(scale: Optional[ExperimentScale] = None):
    """Run (once per session) the Fig. 5 sweep at bench scale."""
    key = "fig5"
    if key not in _RESULTS:
        from repro.experiments.fig5 import run_fig5

        _RESULTS[key] = run_fig5(scale=scale or bench_scale(), slos_per_task=1)
    return _RESULTS[key]


def cached_fig6(scale: Optional[ExperimentScale] = None):
    """Run (once per session) the Fig. 6 sweep at bench scale."""
    key = "fig6"
    if key not in _RESULTS:
        from repro.experiments.fig6 import run_fig6

        _RESULTS[key] = run_fig6(scale=scale or bench_scale(), slos_per_task=1)
    return _RESULTS[key]
