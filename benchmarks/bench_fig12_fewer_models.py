"""Figure 12 (Appendix E): ablating the model set to 3 models.

RAMSIS vs Jellyfish+ with the full 26-model set versus the 3-model subset
(min / medium / long latency).  Paper insights asserted:

- RAMSIS with only 3 models stays close to RAMSIS with 26 — it does not
  rely on a dense model set;
- RAMSIS always at least matches Jellyfish+ under the same model set.
"""

import pytest

from benchmarks._common import bench_scale, emit, points_payload
from repro.experiments.appendix import render_fig12, run_fig12


@pytest.fixture(scope="module")
def fig12_points():
    return run_fig12(scale=bench_scale())


def _series(points, label):
    return {
        p.load_qps: p.accuracy
        for p in points
        if p.method == label and p.plottable
    }


def test_fig12_run_and_render(benchmark, fig12_points):
    points = benchmark.pedantic(lambda: fig12_points, rounds=1, iterations=1)
    emit(
        "fig12_fewer_models",
        render_fig12(points),
        data={"points": points_payload(points)},
    )
    assert {p.method for p in points} == {
        "RAMSIS (26 models)",
        "JF+ (26 models)",
        "RAMSIS (3 models)",
        "JF+ (3 models)",
    }


def test_fig12_ramsis_robust_to_model_removal(fig12_points):
    full = _series(fig12_points, "RAMSIS (26 models)")
    three = _series(fig12_points, "RAMSIS (3 models)")
    common = set(full) & set(three)
    assert common
    for load in common:
        assert three[load] >= full[load] - 0.06


def test_fig12_ramsis_beats_jellyfish_per_model_set(fig12_points):
    for suffix in ("26 models", "3 models"):
        ramsis = _series(fig12_points, f"RAMSIS ({suffix})")
        jf = _series(fig12_points, f"JF+ ({suffix})")
        for load in set(ramsis) & set(jf):
            assert ramsis[load] >= jf[load] - 0.01
