"""Figure 6: accuracy vs constant query load (oracle load monitor).

The §7.2 shape assertions:

- RAMSIS's accuracy is at least the baselines' at every plottable load;
- accuracy declines (weakly) as load approaches peak capacity;
- at the extremes of the load range RAMSIS and the best baseline converge
  (low load: lulls don't matter; high load: only the fastest model works).
"""

import pytest

from benchmarks._common import cached_fig6, emit, points_payload
from repro.experiments.fig6 import render_fig6
from repro.experiments.reporting import accuracy_increase_summary


@pytest.fixture(scope="module")
def fig6_result():
    return cached_fig6()


def test_fig6_run_and_render(benchmark, fig6_result):
    result = benchmark.pedantic(lambda: fig6_result, rounds=1, iterations=1)
    emit(
        "fig6_constant_load",
        render_fig6(result),
        data={"points": points_payload(result.points)},
    )
    assert {p.method for p in result.points} == {"RAMSIS", "JF", "MS"}


def test_fig6_ramsis_dominates_per_load(fig6_result):
    by_cell = {}
    for p in fig6_result.points:
        by_cell.setdefault((p.task, p.slo_ms, p.load_qps), {})[p.method] = p
    compared = 0
    for cell in by_cell.values():
        ramsis = cell.get("RAMSIS")
        if ramsis is None or not ramsis.plottable:
            continue
        for name in ("JF", "MS"):
            other = cell.get(name)
            if other is not None and other.plottable:
                compared += 1
                assert ramsis.accuracy >= other.accuracy - 0.01
    assert compared > 0


def test_fig6_accuracy_declines_with_load(fig6_result):
    for task in ("image", "text"):
        slo = min(p.slo_ms for p in fig6_result.points if p.task == task)
        series = fig6_result.series(task, slo, "RAMSIS")
        if len(series) >= 3:
            first, last = series[0][1], series[-1][1]
            assert last <= first + 0.01


def test_fig6_convergence_at_low_load(fig6_result):
    """At the lowest load, the gap to the best baseline is small."""
    for task in ("image", "text"):
        slo = min(p.slo_ms for p in fig6_result.points if p.task == task)
        low = min(
            (p.load_qps for p in fig6_result.points if p.task == task),
            default=None,
        )
        if low is None:
            continue
        cell = {
            p.method: p
            for p in fig6_result.points
            if p.task == task and p.slo_ms == slo and p.load_qps == low
        }
        ramsis = cell.get("RAMSIS")
        best_baseline = max(
            (
                cell[m].accuracy
                for m in ("JF", "MS")
                if m in cell and cell[m].plottable
            ),
            default=None,
        )
        if ramsis is not None and ramsis.plottable and best_baseline is not None:
            assert ramsis.accuracy - best_baseline <= 0.12


def test_fig6_headline_statistics(fig6_result):
    """Paper: up to 15.4% (avg ~4.8/2.3%) higher accuracy at constant load."""
    for baseline in ("JF", "MS"):
        gains = accuracy_increase_summary(fig6_result.points, baseline)
        if gains is not None:
            avg, best = gains
            assert best >= 0.0
