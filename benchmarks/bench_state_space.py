"""§3.1.2 / §5.2: state-space explosion of the naive MDP formulation.

The paper reports that a direct discrete-time formulation tracking every
pending deadline needs an exponential state space — with their parameters
(N = 32, D = 100) value iteration did not finish in 24 hours — while the
decomposed (n, T_j) formulation is polynomial and solves in seconds.

This benchmark reproduces the claim in miniature: enumerated naive states
grow combinatorially with (D, N) while the decomposed space is N*D + 2,
and the naive solve time explodes correspondingly.
"""

import time

import pytest

from benchmarks._common import emit
from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import WorkerMDPConfig
from repro.core.discretization import fixed_length_grid
from repro.core.mdp import build_worker_mdp
from repro.core.naive import NaiveWorkerMDP
from repro.core.solvers import value_iteration
from repro.experiments.reporting import format_table
from tests.conftest import make_tiny_model_set

CASES = [(3, 2), (5, 3), (6, 4), (7, 4)]


@pytest.fixture(scope="module")
def comparison_rows():
    models = make_tiny_model_set()
    rows = []
    for d, n in CASES:
        grid = fixed_length_grid(100.0, d)
        start = time.perf_counter()
        naive = NaiveWorkerMDP(
            models, grid, PoissonArrivals(30.0), max_queue=n, max_states=100_000
        )
        _, naive_stats = naive.solve(tolerance=1e-6)
        naive_total = time.perf_counter() - start

        config = WorkerMDPConfig(
            model_set=models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(30.0),
            max_queue=n,
            fld_resolution=d,
        )
        start = time.perf_counter()
        decomposed = build_worker_mdp(config)
        value_iteration(decomposed)
        decomposed_total = time.perf_counter() - start
        rows.append(
            (
                d,
                n,
                naive.num_states,
                decomposed.num_states,
                naive_total,
                decomposed_total,
            )
        )
    return rows


def test_state_space_report(benchmark, comparison_rows):
    rows = benchmark.pedantic(lambda: comparison_rows, rounds=1, iterations=1)
    emit(
        "state_space_explosion",
        format_table(
            [
                "D",
                "N",
                "naive |S|",
                "RAMSIS |S|",
                "naive solve (s)",
                "RAMSIS solve (s)",
            ],
            [
                (d, n, ns, ds, f"{nt:.2f}", f"{dt:.3f}")
                for d, n, ns, ds, nt, dt in rows
            ],
            title="§3.1.2 — naive joint-deadline MDP vs RAMSIS decomposition",
        ),
        data={
            "rows": [
                {
                    "fld_resolution": d,
                    "max_queue": n,
                    "naive_states": ns,
                    "decomposed_states": ds,
                    "naive_solve_s": nt,
                    "decomposed_solve_s": dt,
                }
                for d, n, ns, ds, nt, dt in rows
            ]
        },
    )


def test_naive_space_grows_superlinearly(comparison_rows):
    naive_sizes = [row[2] for row in comparison_rows]
    ratios = [b / a for a, b in zip(naive_sizes, naive_sizes[1:])]
    # Growth accelerates case over case.
    assert ratios[-1] > 1.5
    assert naive_sizes[-1] > 8 * naive_sizes[0]


def test_decomposed_space_stays_linear(comparison_rows):
    for d, n, _, decomposed_size, _, _ in comparison_rows:
        assert decomposed_size == n * (d + 1) + 2


def test_naive_dwarfs_decomposed(comparison_rows):
    d, n, naive_size, decomposed_size, naive_t, decomposed_t = comparison_rows[-1]
    assert naive_size > 3 * decomposed_size
    assert naive_t > decomposed_t
