"""§3.1.2 / §5.2: state-space scale — naive explosion, and the solver gate.

The paper reports that a direct discrete-time formulation tracking every
pending deadline needs an exponential state space — with their parameters
(N = 32, D = 100) value iteration did not finish in 24 hours — while the
decomposed (n, T_j) formulation is polynomial and solves in seconds.

This benchmark reproduces the claim in miniature (enumerated naive states
grow combinatorially with (D, N) while the decomposed space is N*D + 2),
and then gates the **tensorized solver backend** end-to-end:

- ``tensor`` and ``loop`` backends must agree *exactly* — float-``==``
  value functions, identical sweep counts, byte-identical saved policies,
  identical policy-iteration tables — on a variable-batching cell;
- the combined solve (value iteration + policy iteration) must clear
  ``RAMSIS_BENCH_MIN_SPEEDUP`` (default 3x at bench scale, 1.5x at
  ``RAMSIS_BENCH_SCALE=smoke``);
- a many-model MD-grid cell (M = 60 at bench scale) far past what the
  loop backend solves comfortably must converge on the tensor backend.

Headline numbers land in ``BENCH_state_space.json`` at the repo root and
are regression-gated in CI via ``ramsis bench-history --check``.
"""

import os
import time

import numpy as np
import pytest

from benchmarks._common import emit
from repro.arrivals.distributions import PoissonArrivals
from repro.core.config import (
    BatchingMode,
    Discretization,
    WorkerMDPConfig,
)
from repro.core.discretization import fixed_length_grid
from repro.core.mdp import build_worker_mdp
from repro.core.naive import NaiveWorkerMDP
from repro.core.solvers import policy_iteration, value_iteration
from repro.experiments.reporting import format_table
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet
from tests.conftest import make_tiny_model_set

CASES = [(3, 2), (5, 3), (6, 4), (7, 4)]


def _smoke() -> bool:
    return os.environ.get("RAMSIS_BENCH_SCALE", "bench") == "smoke"


def _min_speedup() -> float:
    env = os.environ.get("RAMSIS_BENCH_MIN_SPEEDUP")
    if env:
        return float(env)
    return 1.5 if _smoke() else 3.0


def _bench_zoo(num_models: int) -> ModelSet:
    """A synthetic accuracy/latency ladder wide enough to stress the fold."""
    return ModelSet(
        [
            ModelProfile(
                name=f"m{i:02d}",
                accuracy=0.55 + 0.4 * i / (num_models - 1),
                latency=LinearLatencyModel(
                    2.0 + 0.35 * i, 6.0 + 1.8 * i, std_ms=0.0
                ),
                family="bench",
            )
            for i in range(num_models)
        ],
        task="bench",
    )


@pytest.fixture(scope="module")
def comparison_rows():
    models = make_tiny_model_set()
    rows = []
    for d, n in CASES:
        grid = fixed_length_grid(100.0, d)
        start = time.perf_counter()
        naive = NaiveWorkerMDP(
            models, grid, PoissonArrivals(30.0), max_queue=n, max_states=100_000
        )
        _, naive_stats = naive.solve(tolerance=1e-6)
        naive_total = time.perf_counter() - start

        config = WorkerMDPConfig(
            model_set=models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(30.0),
            max_queue=n,
            fld_resolution=d,
        )
        start = time.perf_counter()
        decomposed = build_worker_mdp(config)
        value_iteration(decomposed)
        decomposed_total = time.perf_counter() - start
        rows.append(
            (
                d,
                n,
                naive.num_states,
                decomposed.num_states,
                naive_total,
                decomposed_total,
            )
        )
    return rows


def test_state_space_report(benchmark, comparison_rows):
    rows = benchmark.pedantic(lambda: comparison_rows, rounds=1, iterations=1)
    emit(
        "state_space_explosion",
        format_table(
            [
                "D",
                "N",
                "naive |S|",
                "RAMSIS |S|",
                "naive solve (s)",
                "RAMSIS solve (s)",
            ],
            [
                (d, n, ns, ds, f"{nt:.2f}", f"{dt:.3f}")
                for d, n, ns, ds, nt, dt in rows
            ],
            title="§3.1.2 — naive joint-deadline MDP vs RAMSIS decomposition",
        ),
        data={
            "rows": [
                {
                    "fld_resolution": d,
                    "max_queue": n,
                    "naive_states": ns,
                    "decomposed_states": ds,
                    "naive_solve_s": nt,
                    "decomposed_solve_s": dt,
                }
                for d, n, ns, ds, nt, dt in rows
            ]
        },
    )


def test_naive_space_grows_superlinearly(comparison_rows):
    naive_sizes = [row[2] for row in comparison_rows]
    ratios = [b / a for a, b in zip(naive_sizes, naive_sizes[1:])]
    # Growth accelerates case over case.
    assert ratios[-1] > 1.5
    assert naive_sizes[-1] > 8 * naive_sizes[0]


def test_decomposed_space_stays_linear(comparison_rows):
    for d, n, _, decomposed_size, _, _ in comparison_rows:
        assert decomposed_size == n * (d + 1) + 2


def test_naive_dwarfs_decomposed(comparison_rows):
    d, n, naive_size, decomposed_size, naive_t, decomposed_t = comparison_rows[-1]
    assert naive_size > 3 * decomposed_size
    assert naive_t > decomposed_t


# ----------------------------------------------------------------------
# Solver-backend gate: exact tensor/loop agreement + speedup floor
# ----------------------------------------------------------------------
def _gate_config() -> WorkerMDPConfig:
    """The gated cell: variable batching, where the fold dominates.

    Variable batching is the expensive mode — the loop backend folds every
    partial-drain action with a Python-level pass — so it is both the
    honest headline for the tensor backend and the mode the paper's
    Table 2 extension needs at scale.
    """
    num_models = 8 if _smoke() else 16
    queue = 8 if _smoke() else 10
    resolution = 16 if _smoke() else 24
    return WorkerMDPConfig(
        model_set=_bench_zoo(num_models),
        slo_ms=110.0,
        arrivals=PoissonArrivals(60.0),
        num_workers=1,
        max_batch_size=queue,
        max_queue=queue,
        fld_resolution=resolution,
        batching=BatchingMode.VARIABLE,
        pareto_prune=False,
    )


@pytest.fixture(scope="module")
def solver_gate(tmp_path_factory):
    """Solve the gated cell with both backends, interleaved best-of-reps."""
    config = _gate_config()
    loop = build_worker_mdp(config, solver="loop")
    tensor = build_worker_mdp(config, solver="tensor")
    reps = 2 if _smoke() else 3

    vi_times = {"loop": [], "tensor": []}
    vi_stats = {}
    for _ in range(reps):
        for name, mdp in (("loop", loop), ("tensor", tensor)):
            start = time.perf_counter()
            vi_stats[name] = value_iteration(mdp, tolerance=1e-7)
            vi_times[name].append(time.perf_counter() - start)

    pi_times = {"loop": [], "tensor": []}
    pi_results = {}
    for _ in range(reps):
        for name, mdp in (("loop", loop), ("tensor", tensor)):
            start = time.perf_counter()
            pi_results[name] = policy_iteration(mdp, evaluation_sweeps=100)
            pi_times[name].append(time.perf_counter() - start)

    out_dir = tmp_path_factory.mktemp("solver_gate")
    policy_bytes = {}
    for name, mdp in (("loop", loop), ("tensor", tensor)):
        path = out_dir / f"{name}.json"
        mdp.extract_policy(vi_stats[name].values).save(path)
        policy_bytes[name] = path.read_bytes()

    return {
        "config": config,
        "states": loop.num_states,
        "plan_entries": len(loop._partial_plan),
        "vi_times": {k: min(v) for k, v in vi_times.items()},
        "pi_times": {k: min(v) for k, v in pi_times.items()},
        "vi_stats": vi_stats,
        "pi_results": pi_results,
        "policy_bytes": policy_bytes,
    }


def test_solver_backends_agree_exactly(solver_gate):
    """The acceptance bar: float-``==``, not allclose."""
    vi = solver_gate["vi_stats"]
    assert np.array_equal(vi["loop"].values, vi["tensor"].values)
    assert vi["loop"].iterations == vi["tensor"].iterations
    assert solver_gate["policy_bytes"]["loop"] == (
        solver_gate["policy_bytes"]["tensor"]
    )
    pi_loop, table_loop = solver_gate["pi_results"]["loop"]
    pi_tensor, table_tensor = solver_gate["pi_results"]["tensor"]
    assert table_loop == table_tensor
    assert pi_loop.iterations == pi_tensor.iterations


def test_solver_speedup_floor(solver_gate):
    loop_s = solver_gate["vi_times"]["loop"] + solver_gate["pi_times"]["loop"]
    tensor_s = (
        solver_gate["vi_times"]["tensor"] + solver_gate["pi_times"]["tensor"]
    )
    floor = _min_speedup()
    speedup = loop_s / tensor_s
    assert speedup >= floor, (
        f"tensor backend solved only {speedup:.2f}x faster than the loop "
        f"backend (floor {floor:.1f}x): loop {loop_s:.3f}s vs "
        f"tensor {tensor_s:.3f}s"
    )


# ----------------------------------------------------------------------
# Scale demo: the cell the loop backend cannot serve interactively
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scale_demo():
    """Many-model MD-grid variable-batching cell on the tensor backend.

    At bench scale this is M = 60 on a model-based grid — roughly 2k
    states and ~180 partial-drain actions, the regime the tensorized
    sweeps were built for.  The loop backend is only sampled per-sweep
    (full solves take many times longer), and only at bench scale.
    """
    num_models = 24 if _smoke() else 60
    config = WorkerMDPConfig(
        model_set=_bench_zoo(num_models),
        slo_ms=140.0,
        arrivals=PoissonArrivals(80.0),
        num_workers=1,
        max_batch_size=6 if _smoke() else 8,
        max_queue=8 if _smoke() else 12,
        discretization=Discretization.MODEL_BASED,
        batching=BatchingMode.VARIABLE,
        pareto_prune=False,
    )
    tensor = build_worker_mdp(config, solver="tensor")
    start = time.perf_counter()
    stats = value_iteration(tensor, tolerance=1e-6)
    tensor_solve_s = time.perf_counter() - start

    est_loop_solve_s = None
    per_sweep_speedup = None
    if not _smoke():
        loop = build_worker_mdp(config, solver="loop")
        values = loop.initial_values()
        start = time.perf_counter()
        for _ in range(3):
            values = loop.backup(values).values
        loop_sweep_s = (time.perf_counter() - start) / 3
        est_loop_solve_s = loop_sweep_s * stats.iterations
        per_sweep_speedup = loop_sweep_s / (tensor_solve_s / stats.iterations)

    return {
        "num_models": num_models,
        "states": tensor.num_states,
        "plan_entries": len(tensor._partial_plan),
        "stats": stats,
        "tensor_solve_s": tensor_solve_s,
        "est_loop_solve_s": est_loop_solve_s,
        "per_sweep_speedup": per_sweep_speedup,
    }


def test_scale_demo_converges(scale_demo):
    assert scale_demo["stats"].converged
    floor = 300 if _smoke() else 1500
    assert scale_demo["states"] >= floor
    assert scale_demo["plan_entries"] >= (60 if _smoke() else 150)


def test_solver_gate_report(benchmark, solver_gate, scale_demo):
    payload = benchmark.pedantic(
        lambda: (solver_gate, scale_demo), rounds=1, iterations=1
    )
    gate, demo = payload
    vi = gate["vi_stats"]
    loop_s = gate["vi_times"]["loop"] + gate["pi_times"]["loop"]
    tensor_s = gate["vi_times"]["tensor"] + gate["pi_times"]["tensor"]
    config = gate["config"]
    rows = [
        (
            "gate (FLD, variable)",
            len(config.model_set),
            gate["states"],
            gate["plan_entries"],
            f"{loop_s:.3f}",
            f"{tensor_s:.3f}",
            f"{loop_s / tensor_s:.2f}x",
        ),
        (
            "scale demo (MD, variable)",
            demo["num_models"],
            demo["states"],
            demo["plan_entries"],
            "-"
            if demo["est_loop_solve_s"] is None
            else f"~{demo['est_loop_solve_s']:.1f}",
            f"{demo['tensor_solve_s']:.3f}",
            "-"
            if demo["per_sweep_speedup"] is None
            else f"{demo['per_sweep_speedup']:.2f}x/sweep",
        ),
    ]
    data = {
        "solver_gate": {
            "models": len(config.model_set),
            "states": gate["states"],
            "plan_entries": gate["plan_entries"],
            "vi_iterations": vi["loop"].iterations,
            "values_exactly_equal": bool(
                np.array_equal(vi["loop"].values, vi["tensor"].values)
            ),
            "policy_bytes_equal": gate["policy_bytes"]["loop"]
            == gate["policy_bytes"]["tensor"],
            "loop_vi_solve_s": gate["vi_times"]["loop"],
            "tensor_vi_solve_s": gate["vi_times"]["tensor"],
            "vi_speedup": gate["vi_times"]["loop"] / gate["vi_times"]["tensor"],
            "loop_pi_solve_s": gate["pi_times"]["loop"],
            "tensor_pi_solve_s": gate["pi_times"]["tensor"],
            "pi_speedup": gate["pi_times"]["loop"] / gate["pi_times"]["tensor"],
            "solve_speedup": loop_s / tensor_s,
            "min_speedup": _min_speedup(),
        },
        "scale_demo": {
            "models": demo["num_models"],
            "states": demo["states"],
            "plan_entries": demo["plan_entries"],
            "vi_iterations": demo["stats"].iterations,
            "tensor_solve_s": demo["tensor_solve_s"],
            "est_loop_solve_s": demo["est_loop_solve_s"],
            "per_sweep_speedup": demo["per_sweep_speedup"],
        },
        "scale": "smoke" if _smoke() else "bench",
    }
    emit(
        "state_space",
        format_table(
            [
                "cell",
                "M",
                "|S|",
                "plan",
                "loop solve (s)",
                "tensor solve (s)",
                "speedup",
            ],
            rows,
            title=(
                "solver backends — exact-equivalence gate and tensor scale demo"
            ),
        ),
        data=data,
        root=True,
    )
