"""Figure 5: accuracy vs workers on the production (Twitter-shaped) trace.

RAMSIS vs Jellyfish+ vs ModelSwitching across the worker sweep, both tasks,
lowest SLO.  The paper's qualitative results asserted here:

- RAMSIS's accuracy is at least each baseline's at every plottable cell;
- RAMSIS achieves some baseline accuracies with strictly fewer workers
  (the "fewer resources" headline).
"""

import pytest

from benchmarks._common import cached_fig5, emit, points_payload
from repro.experiments.fig5 import render_fig5
from repro.experiments.reporting import (
    accuracy_increase_summary,
    resource_savings_summary,
    series_by_method,
)


@pytest.fixture(scope="module")
def fig5_result():
    return cached_fig5()


def test_fig5_run_and_render(benchmark, fig5_result):
    result = benchmark.pedantic(lambda: fig5_result, rounds=1, iterations=1)
    emit(
        "fig5_production_trace",
        render_fig5(result),
        data={"points": points_payload(result.points)},
    )
    # Every (task, method) series produced points.
    methods = {p.method for p in result.points}
    assert methods == {"RAMSIS", "JF", "MS"}
    tasks = {p.task for p in result.points}
    assert tasks == {"image", "text"}


def test_fig5_ramsis_dominates_plottable_cells(fig5_result):
    grouped = series_by_method(fig5_result.points)
    ramsis = {
        (p.task, p.slo_ms, p.num_workers): p
        for p in grouped["RAMSIS"]
        if p.plottable
    }
    for name in ("JF", "MS"):
        for b in grouped[name]:
            if not b.plottable:
                continue
            r = ramsis.get((b.task, b.slo_ms, b.num_workers))
            if r is not None:
                assert r.accuracy >= b.accuracy - 0.01, (
                    f"RAMSIS below {name} at {b.task}/{b.num_workers}w"
                )


def test_fig5_headline_statistics(fig5_result):
    """Accuracy gains positive on average; resource savings exist.

    Paper (full scale): up to 15.1% / avg 4.4% accuracy gain (image), and
    as low as 50% / avg ~19% fewer resources.  At bench scale we assert
    sign and order of magnitude, not the exact values.
    """
    for baseline in ("JF", "MS"):
        gains = accuracy_increase_summary(fig5_result.points, baseline)
        assert gains is not None
        avg, best = gains
        assert avg >= -0.5  # never meaningfully below the baseline
        assert best >= 0.0
    savings = resource_savings_summary(fig5_result.points, "JF")
    if savings is not None:
        _, best_saving = savings
        assert best_saving >= 0.0
