"""Offline policy-bank generation: serial vs. pool vs. stacked bank.

Times four passes over the same 32-cell load grid and gates the tentpole
invariants of the pipeline:

- **cold serial**: every cell solved in-process by the per-load tensor
  backend, persisting into a fresh cache directory;
- **cold parallel**: the same cells fanned across ``--workers`` processes
  (the PR 3 process-pool path) into a second fresh directory;
- **cold stacked**: the whole grid solved as *one* batched tensor program
  by :class:`repro.core.bank.StackedBankMDP`;
- **warm cross-backend**: the stacked generator pointed at the serial
  pass's cache directory, resolving every cell from disk — proving the
  backends share per-load cache keys.

All banks must be byte-identical (the stacked sweep is float-``==`` to
independent per-load solves), a subset of loads is additionally checked
against the reference ``loop`` backend, and the stacked pass must beat
the process-pool pass by ``RAMSIS_BENCH_MIN_SPEEDUP`` (default 2x at
bench scale, 1.2x at ``RAMSIS_BENCH_SCALE=smoke``).

Headline numbers land in ``benchmarks/out/policy_bank.{txt,json}`` and
``BENCH_policy_bank.json`` at the repo root, regression-gated in CI via
``ramsis bench-history --check``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks._common import bench_scale, bench_use_cache, bench_workers, emit
from repro.cache import PolicyCache
from repro.core.config import WorkerMDPConfig
from repro.core.generator import PolicyGenerator
from repro.experiments.tasks import image_task

#: Load grid (QPS) — 32 cells, the acceptance benchmark's shape.
LOADS = [20.0 + 2.5 * i for i in range(32)]

#: Subset cross-checked against the reference loop backend (exact but
#: far too slow to run on all 32 cells every benchmark run).
LOOP_CHECK_LOADS = LOADS[::8]


def _smoke() -> bool:
    return os.environ.get("RAMSIS_BENCH_SCALE", "bench") == "smoke"


def _min_speedup() -> float:
    env = os.environ.get("RAMSIS_BENCH_MIN_SPEEDUP")
    if env:
        return float(env)
    return 1.2 if _smoke() else 2.0


def _bank_config() -> WorkerMDPConfig:
    scale = bench_scale()
    task = image_task()
    return WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=task.slos_ms[0],
        load_qps=max(LOADS),
        num_workers=2,
        fld_resolution=scale.fld_resolution,
        max_batch_size=scale.max_batch_size,
    )


def _bank_bytes(results) -> str:
    return json.dumps(
        [r.policy.to_json_dict() for r in results], sort_keys=True
    )


def test_policy_bank_speedups(tmp_path):
    config = _bank_config()
    workers = bench_workers()
    use_cache = bench_use_cache()

    dir_serial = tmp_path / "cache-serial"
    dir_parallel = tmp_path / "cache-parallel"

    start = time.perf_counter()
    serial = PolicyGenerator(
        config,
        solver="tensor",
        cache=PolicyCache(directory=dir_serial) if use_cache else None,
    ).generate_many(LOADS)
    cold_serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = PolicyGenerator(
        config,
        solver="tensor",
        cache=PolicyCache(directory=dir_parallel) if use_cache else None,
    ).generate_many(LOADS, max_workers=workers)
    cold_parallel_s = time.perf_counter() - start

    start = time.perf_counter()
    stacked = PolicyGenerator(config, solver="stacked").generate_many(LOADS)
    stacked_s = time.perf_counter() - start

    assert _bank_bytes(serial) == _bank_bytes(parallel), (
        "parallel bank differs from serial bank"
    )
    assert _bank_bytes(serial) == _bank_bytes(stacked), (
        "stacked bank differs from serial bank"
    )
    assert all(
        a.guarantees == b.guarantees for a, b in zip(serial, stacked)
    ), "stacked guarantees differ from serial guarantees"

    # Spot-check the stack against the reference loop backend: exact
    # agreement on a subset ties the whole chain back to PR 1's solver.
    loop_gen = PolicyGenerator(config, solver="loop")
    for load in LOOP_CHECK_LOADS:
        reference = stacked[LOADS.index(load)]
        looped = loop_gen.generate(load)
        assert json.dumps(
            looped.policy.to_json_dict(), sort_keys=True
        ) == json.dumps(reference.policy.to_json_dict(), sort_keys=True), (
            f"stacked policy at {load} qps differs from loop backend"
        )

    warm_s = None
    if use_cache:
        # Cross-backend cache sharing: the stacked generator resolves the
        # serial pass's artifacts — per-load keys are backend-agnostic.
        warm_cache = PolicyCache(directory=dir_serial)
        start = time.perf_counter()
        warm = PolicyGenerator(
            config, solver="stacked", cache=warm_cache
        ).generate_many(LOADS)
        warm_s = time.perf_counter() - start
        assert warm_cache.hits == len(LOADS), (
            f"expected {len(LOADS)} warm hits, got {warm_cache.hits}"
        )
        assert all(r.from_cache for r in warm)
        assert _bank_bytes(warm) == _bank_bytes(serial), (
            "cached bank differs from solved bank"
        )
        assert warm_s < cold_serial_s, (
            f"warm cache ({warm_s:.3f}s) not faster than cold serial "
            f"({cold_serial_s:.3f}s)"
        )

    floor = _min_speedup()
    stacked_speedup_vs_pool = cold_parallel_s / stacked_s
    stacked_speedup_vs_serial = cold_serial_s / stacked_s
    parallel_speedup = cold_serial_s / cold_parallel_s
    warm_speedup = None if warm_s is None else cold_serial_s / warm_s
    assert stacked_speedup_vs_pool >= floor, (
        f"stacked bank solve {stacked_s:.3f}s vs pool {cold_parallel_s:.3f}s "
        f"= {stacked_speedup_vs_pool:.2f}x, below the {floor:.1f}x floor"
    )

    lines = [
        f"policy bank: {len(LOADS)}-cell grid, "
        f"fld_resolution={config.fld_resolution}, workers={workers}",
        f"cold serial:   {cold_serial_s:8.3f} s",
        f"cold parallel: {cold_parallel_s:8.3f} s "
        f"({parallel_speedup:.2f}x)",
        f"cold stacked:  {stacked_s:8.3f} s "
        f"({stacked_speedup_vs_pool:.2f}x vs pool, "
        f"{stacked_speedup_vs_serial:.2f}x vs serial, "
        f"floor {floor:.1f}x vs pool)",
    ]
    if warm_s is not None:
        lines.append(
            f"warm cache:    {warm_s:8.3f} s ({warm_speedup:.2f}x)"
        )
    emit(
        "policy_bank",
        "\n".join(lines),
        data={
            "loads_qps": LOADS,
            "fld_resolution": config.fld_resolution,
            "workers": workers,
            "scale": "smoke" if _smoke() else "bench",
            "min_speedup": floor,
            "cold_serial_s": cold_serial_s,
            "cold_parallel_s": cold_parallel_s,
            "cold_stacked_s": stacked_s,
            "warm_cache_s": warm_s,
            "parallel_speedup": parallel_speedup,
            "stacked_speedup_vs_pool": stacked_speedup_vs_pool,
            "stacked_speedup_vs_serial": stacked_speedup_vs_serial,
            "warm_cache_speedup": warm_speedup,
        },
        root=True,
    )


def test_policy_bank_corruption_fallback(tmp_path):
    """A truncated artifact falls back to a solve and is overwritten."""
    if not bench_use_cache():
        pytest.skip("--no-cache")
    config = _bank_config()
    cache = PolicyCache(directory=tmp_path / "cache")
    reference = PolicyGenerator(config, cache=cache).generate(LOADS[0])
    artifact = next((tmp_path / "cache").glob("??/*.json"))
    artifact.write_text(artifact.read_text()[:100])

    recovery_cache = PolicyCache(directory=tmp_path / "cache")
    recovered = PolicyGenerator(config, cache=recovery_cache).generate(LOADS[0])
    assert recovery_cache.invalidations == 1
    assert not recovered.from_cache
    assert json.dumps(recovered.policy.to_json_dict(), sort_keys=True) == (
        json.dumps(reference.policy.to_json_dict(), sort_keys=True)
    )
