"""Offline policy-bank generation: serial vs. parallel vs. warm cache.

Times three passes over the same 8-cell load grid and checks the tentpole
invariants of the pipeline:

- **cold serial**: every cell solved in-process, persisting into a fresh
  cache directory;
- **cold parallel**: the same cells fanned across ``--workers`` processes
  into a second fresh directory;
- **warm cache**: the serial path again, resolving every cell from the
  first pass's disk artifacts.

All three banks must be byte-identical, and the warm pass must beat the
cold serial pass.  The parallel speedup is reported but only asserted to be
a valid run — on single-core CI runners process fan-out cannot win.

Results land in ``benchmarks/out/policy_bank.{txt,json}``.
"""

from __future__ import annotations

import json
import time

import pytest

from benchmarks._common import bench_scale, bench_use_cache, bench_workers, emit
from repro.cache import PolicyCache
from repro.core.config import WorkerMDPConfig
from repro.core.generator import PolicyGenerator
from repro.experiments.tasks import image_task

#: Load grid (QPS) — 8 cells, the acceptance benchmark's shape.
LOADS = [20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0]


def _bank_config() -> WorkerMDPConfig:
    scale = bench_scale()
    task = image_task()
    return WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=task.slos_ms[0],
        load_qps=max(LOADS),
        num_workers=2,
        fld_resolution=scale.fld_resolution,
        max_batch_size=scale.max_batch_size,
    )


def _bank_bytes(results) -> str:
    return json.dumps(
        [r.policy.to_json_dict() for r in results], sort_keys=True
    )


def test_policy_bank_speedups(tmp_path):
    config = _bank_config()
    workers = bench_workers()
    use_cache = bench_use_cache()

    dir_serial = tmp_path / "cache-serial"
    dir_parallel = tmp_path / "cache-parallel"

    start = time.perf_counter()
    serial = PolicyGenerator(
        config, cache=PolicyCache(directory=dir_serial) if use_cache else None
    ).generate_many(LOADS)
    cold_serial_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = PolicyGenerator(
        config,
        cache=PolicyCache(directory=dir_parallel) if use_cache else None,
    ).generate_many(LOADS, max_workers=workers)
    cold_parallel_s = time.perf_counter() - start

    assert _bank_bytes(serial) == _bank_bytes(parallel), (
        "parallel bank differs from serial bank"
    )

    warm_s = None
    if use_cache:
        warm_cache = PolicyCache(directory=dir_serial)
        start = time.perf_counter()
        warm = PolicyGenerator(config, cache=warm_cache).generate_many(LOADS)
        warm_s = time.perf_counter() - start
        assert warm_cache.hits == len(LOADS), (
            f"expected {len(LOADS)} warm hits, got {warm_cache.hits}"
        )
        assert all(r.from_cache for r in warm)
        assert _bank_bytes(warm) == _bank_bytes(serial), (
            "cached bank differs from solved bank"
        )
        assert warm_s < cold_serial_s, (
            f"warm cache ({warm_s:.3f}s) not faster than cold serial "
            f"({cold_serial_s:.3f}s)"
        )

    parallel_speedup = cold_serial_s / cold_parallel_s
    warm_speedup = None if warm_s is None else cold_serial_s / warm_s
    lines = [
        "policy bank: 8-cell grid, "
        f"fld_resolution={config.fld_resolution}, workers={workers}",
        f"cold serial:   {cold_serial_s:8.3f} s",
        f"cold parallel: {cold_parallel_s:8.3f} s "
        f"({parallel_speedup:.2f}x)",
    ]
    if warm_s is not None:
        lines.append(
            f"warm cache:    {warm_s:8.3f} s ({warm_speedup:.2f}x)"
        )
    emit(
        "policy_bank",
        "\n".join(lines),
        data={
            "loads_qps": LOADS,
            "fld_resolution": config.fld_resolution,
            "workers": workers,
            "cold_serial_s": cold_serial_s,
            "cold_parallel_s": cold_parallel_s,
            "warm_cache_s": warm_s,
            "parallel_speedup": parallel_speedup,
            "warm_cache_speedup": warm_speedup,
        },
    )


def test_policy_bank_corruption_fallback(tmp_path):
    """A truncated artifact falls back to a solve and is overwritten."""
    if not bench_use_cache():
        pytest.skip("--no-cache")
    config = _bank_config()
    cache = PolicyCache(directory=tmp_path / "cache")
    reference = PolicyGenerator(config, cache=cache).generate(LOADS[0])
    artifact = next((tmp_path / "cache").glob("??/*.json"))
    artifact.write_text(artifact.read_text()[:100])

    recovery_cache = PolicyCache(directory=tmp_path / "cache")
    recovered = PolicyGenerator(config, cache=recovery_cache).generate(LOADS[0])
    assert recovery_cache.invalidations == 1
    assert not recovered.from_cache
    assert json.dumps(recovered.policy.to_json_dict(), sort_keys=True) == (
        json.dumps(reference.policy.to_json_dict(), sort_keys=True)
    )
