"""Ablation: per-epoch (paper) vs duration-aware (semi-MDP) discounting.

The paper solves a discrete-time MDP over decision epochs, discounting once
per epoch regardless of how long the epoch lasts in real time; it cites the
semi-Markov literature [8] for complexity but does not use duration-aware
discounting.  This ablation quantifies the difference online: semi-MDP
policies discount long services more, which tilts them slightly toward
conservatism.
"""

import pytest
from dataclasses import replace

from benchmarks._common import bench_scale, emit
from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_method
from repro.experiments.tasks import image_task
from repro.selectors import RamsisSelector


@pytest.fixture(scope="module")
def semimdp_cells():
    scale = bench_scale()
    task = image_task()
    slo = task.slos_ms[0]
    workers = scale.constant_workers_image
    cells = []
    for load in scale.constant_loads_qps[:3]:
        base = WorkerMDPConfig.default_poisson(
            task.model_set,
            slo_ms=slo,
            load_qps=load,
            num_workers=workers,
            fld_resolution=scale.fld_resolution,
            max_batch_size=scale.max_batch_size,
        )
        trace = LoadTrace.constant(load, scale.constant_duration_s * 1000.0)
        for label, duration_aware in (("per-epoch", False), ("semi-MDP", True)):
            config = replace(base, duration_aware_discount=duration_aware)
            policy = generate_policy(config, with_guarantees=False).policy
            cell = run_method(
                "RAMSIS",
                task,
                slo,
                workers,
                trace,
                scale,
                oracle_load=True,
                selector=RamsisSelector(policy),
            )
            cells.append((label, load, cell))
    return cells


def test_semimdp_report(benchmark, semimdp_cells):
    cells = benchmark.pedantic(lambda: semimdp_cells, rounds=1, iterations=1)
    rows = [
        (
            label,
            f"{load:g}",
            f"{cell.accuracy * 100:.2f}%",
            f"{cell.violation_rate * 100:.3f}%",
        )
        for label, load, cell in cells
    ]
    emit(
        "ablation_semimdp",
        format_table(
            ["discounting", "load (QPS)", "accuracy", "violations"],
            rows,
            title="Ablation — per-epoch (paper) vs semi-MDP discounting",
        ),
        data={
            "rows": [
                {
                    "discounting": label,
                    "load_qps": load,
                    "accuracy": cell.accuracy,
                    "violation_rate": cell.violation_rate,
                }
                for label, load, cell in cells
            ]
        },
    )


def test_semimdp_comparable_accuracy(semimdp_cells):
    by_load = {}
    for label, load, cell in semimdp_cells:
        by_load.setdefault(load, {})[label] = cell
    compared = 0
    for cells in by_load.values():
        if len(cells) == 2 and all(c.plottable for c in cells.values()):
            compared += 1
            assert cells["semi-MDP"].accuracy == pytest.approx(
                cells["per-epoch"].accuracy, abs=0.05
            )
    assert compared > 0


def test_semimdp_never_more_violations_when_feasible(semimdp_cells):
    """Duration-aware discounting penalizes long services, so it should
    not violate more where the per-epoch policy is feasible."""
    by_load = {}
    for label, load, cell in semimdp_cells:
        by_load.setdefault(load, {})[label] = cell
    for cells in by_load.values():
        if len(cells) == 2 and cells["per-epoch"].plottable:
            assert cells["semi-MDP"].violation_rate <= (
                cells["per-epoch"].violation_rate + 0.02
            )
