"""Appendix I: extending RAMSIS to shortest-queue-first load balancing.

Only the MDP transition probabilities change: SQF policies are generated
from the Gupta et al. conditional per-worker arrival rate and deployed with
the SQF balancer.  Asserted: both balancing strategies serve the load with
comparable accuracy and violations across the satisfiable range.
"""

import pytest

from benchmarks._common import bench_scale, emit, points_payload
from repro.experiments.appendix import render_appendix_i, run_appendix_i


@pytest.fixture(scope="module")
def appi_points():
    scale = bench_scale()
    return run_appendix_i(scale=scale, loads_qps=scale.constant_loads_qps[::2])


def test_appi_run_and_render(benchmark, appi_points):
    points = benchmark.pedantic(lambda: appi_points, rounds=1, iterations=1)
    emit(
        "appi_sqf",
        render_appendix_i(points),
        data={
            "points": [
                dict(balancer=label, **row)
                for (label, p) in points
                for row in points_payload([p])
            ]
        },
    )
    assert {label for label, _ in points} == {"round-robin", "shortest-queue"}


def test_appi_sqf_comparable_to_round_robin(appi_points):
    rr = {p.load_qps: p for label, p in appi_points if label == "round-robin"}
    sqf = {p.load_qps: p for label, p in appi_points if label == "shortest-queue"}
    compared = 0
    for load in set(rr) & set(sqf):
        if rr[load].plottable and sqf[load].plottable:
            compared += 1
            assert sqf[load].accuracy == pytest.approx(
                rr[load].accuracy, abs=0.06
            )
    assert compared > 0


def test_appi_sqf_satisfiable_at_low_load(appi_points):
    lows = sorted({p.load_qps for _, p in appi_points})[:2]
    for label, p in appi_points:
        if label == "shortest-queue" and p.load_qps in lows:
            assert p.violation_rate < 0.05
