"""Resource-manager view of §7.1's headline: accuracy at provisioned cost.

Uses the §5.1-driven capacity planner to ask, per accuracy target, how many
workers RAMSIS needs versus how many a load-granular selection needs — the
"same accuracy with fewer resources" claim expressed as a provisioning
decision — and times a trace-wide autoscaling schedule.
"""

import pytest

from benchmarks._common import bench_scale, emit
from repro.core.config import WorkerMDPConfig
from repro.experiments.fig5 import production_trace
from repro.experiments.reporting import format_table
from repro.experiments.tasks import image_task
from repro.manager import CapacityPlanner


def _planner(accuracy_floor: float) -> CapacityPlanner:
    scale = bench_scale()
    task = image_task()
    base = WorkerMDPConfig.default_poisson(
        task.model_set,
        slo_ms=task.slos_ms[0],
        load_qps=100.0,
        num_workers=1,
        fld_resolution=scale.fld_resolution,
        max_batch_size=scale.max_batch_size,
    )
    return CapacityPlanner(
        base,
        accuracy_floor=accuracy_floor,
        violation_ceiling=0.02,
        max_workers=32,
    )


@pytest.fixture(scope="module")
def capacity_rows():
    load = 160.0
    rows = []
    for floor in (0.62, 0.68, 0.72, 0.76):
        plan = _planner(floor).plan(load)
        rows.append(
            {
                "accuracy_floor": floor,
                "workers": plan.num_workers,
                "expected_accuracy": plan.guarantees.expected_accuracy,
                "expected_violation_rate": (
                    plan.guarantees.expected_violation_rate
                ),
            }
        )
    return rows


def test_capacity_plan_report(benchmark, capacity_rows):
    rows = benchmark.pedantic(lambda: capacity_rows, rounds=1, iterations=1)
    emit(
        "capacity_planning",
        format_table(
            ["accuracy target", "workers", "E[accuracy]", "E[violation]"],
            [
                (
                    f"{r['accuracy_floor'] * 100:.0f}%",
                    r["workers"],
                    f"{r['expected_accuracy'] * 100:.2f}%",
                    f"{r['expected_violation_rate'] * 100:.3f}%",
                )
                for r in rows
            ],
            title="Capacity planning at 160 QPS, SLO 150 ms (§5.1 loop)",
        ),
        data={"rows": rows},
    )


def test_higher_targets_cost_more_workers(capacity_rows):
    workers = [row["workers"] for row in capacity_rows]
    assert workers == sorted(workers)
    assert workers[-1] > workers[0]


def test_autoscaling_schedule(benchmark):
    scale = bench_scale()
    trace = production_trace(scale).truncated(60_000.0)
    planner = _planner(0.66)

    schedule = benchmark.pedantic(
        planner.schedule_for_trace,
        args=(trace,),
        kwargs={"load_quantum_qps": 50.0, "cooldown_intervals": 1},
        rounds=1,
        iterations=1,
    )
    # Autoscaling must beat static peak provisioning on cost.
    static_cost = schedule.peak_workers * trace.duration_ms / 1000.0
    assert schedule.worker_seconds <= static_cost
    assert schedule.entries[0].start_ms == 0.0
