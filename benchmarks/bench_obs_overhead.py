"""Observability overhead micro-benchmark.

Runs the same simulation three ways — tracing off (the default
``NULL_TRACER`` path), with a live :class:`RecordingTracer`, and with a
tracer plus a :class:`MetricsRegistry` — and reports wall time and the
relative cost.  The tracing-off configuration is the one every experiment
and benchmark uses, so its overhead versus the pre-observability simulator
must be negligible; the recorded table under ``benchmarks/out/`` documents
what opting in costs.
"""

import time

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.experiments.tasks import image_task
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingTracer
from repro.selectors import JellyfishPlusSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.experiments.reporting import format_table
from repro.sim.simulator import Simulation, SimulationConfig

import numpy as np

LOAD_QPS = 160.0
WORKERS = 8
DURATION_MS = 20_000.0


def _run(arrivals, trace, tracer=None, registry=None):
    task = image_task()
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=task.slos_ms[0],
            num_workers=WORKERS,
            max_batch_size=bench_scale().max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=7,
            track_responses=False,
            tracer=tracer,
            registry=registry,
        )
    )
    start = time.perf_counter()
    metrics = sim.run(
        JellyfishPlusSelector(), trace, arrival_times=arrivals
    )
    return time.perf_counter() - start, metrics


def test_tracing_overhead(benchmark):
    """Times the off/tracer/tracer+registry variants on one arrival
    realization; the benchmark fixture times the default (off) path."""
    trace = LoadTrace.constant(LOAD_QPS, DURATION_MS)
    rng = np.random.default_rng(7)
    arrivals = np.sort(
        sample_arrival_times(trace, PoissonArrivals(LOAD_QPS), rng)
    )

    # Warm once (JIT-free Python, but primes caches fairly).
    _run(arrivals, trace)

    rows = []
    baseline_s = None
    variants = (
        ("off (NULL_TRACER)", lambda: (None, None)),
        ("tracer", lambda: (RecordingTracer(), None)),
        ("tracer + registry", lambda: (RecordingTracer(), MetricsRegistry())),
    )
    reference = None
    series = {}
    for label, make in variants:
        best = None
        for _ in range(3):
            tracer, registry = make()
            elapsed, metrics = _run(arrivals, trace, tracer, registry)
            best = elapsed if best is None else min(best, elapsed)
        if reference is None:
            reference = metrics
            baseline_s = best
        # Instrumentation must never change simulation results.
        assert metrics.violation_rate == reference.violation_rate
        assert metrics.total_queries == reference.total_queries
        series[label] = {
            "best_of_3_ms": best * 1000.0,
            "vs_off": best / baseline_s,
        }
        rows.append(
            [
                label,
                f"{best * 1000.0:.1f}",
                f"{best / baseline_s:.2f}x",
                f"{metrics.total_queries}",
            ]
        )

    emit(
        "obs_overhead",
        format_table(
            ["variant", "best-of-3 ms", "vs off", "queries"],
            rows,
            title=(
                f"Observability overhead ({LOAD_QPS:.0f} QPS, {WORKERS} "
                f"workers, {DURATION_MS / 1000.0:.0f} s simulated)"
            ),
        ),
        data={
            "load_qps": LOAD_QPS,
            "workers": WORKERS,
            "duration_ms": DURATION_MS,
            "queries": reference.total_queries,
            "variants": series,
        },
    )

    # The pytest-benchmark timing tracks the default (tracing-off) path.
    result = benchmark.pedantic(
        lambda: _run(arrivals, trace)[1], rounds=1, iterations=1
    )
    assert result.total_queries > 1000
