"""Observability overhead micro-benchmark.

Runs the same simulation several ways — tracing off (the default
``NULL_TRACER`` path), with a live :class:`RecordingTracer`, with a tracer
plus a :class:`MetricsRegistry`, and with the :class:`PhaseProfiler` (full
and sampled) — and reports wall time and the relative cost.  The
tracing-off configuration is the one every experiment and benchmark uses,
so its overhead must stay negligible with the aggregation and profiler
code in place: after every instrumented variant has run, the off path is
re-timed against an interleaved off control and gated at ≤1% drift
(``RAMSIS_BENCH_MAX_OFF_OVERHEAD`` overrides the tolerance; interleaving
cancels machine-level clock drift a sequential before/after comparison
would misread as overhead).  The recorded table under ``benchmarks/out/``
(and the root ``BENCH_obs_overhead.json``) documents what opting in costs.
"""

import os
import time

from benchmarks._common import bench_scale, emit
from repro.arrivals.distributions import PoissonArrivals
from repro.arrivals.processes import sample_arrival_times
from repro.arrivals.traces import LoadTrace
from repro.experiments.tasks import image_task
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import RecordingTracer
from repro.selectors import JellyfishPlusSelector
from repro.sim.monitor import OracleLoadMonitor
from repro.experiments.reporting import format_table
from repro.sim.simulator import Simulation, SimulationConfig

import numpy as np

LOAD_QPS = 160.0
WORKERS = 8
DURATION_MS = 20_000.0


def _max_off_overhead() -> float:
    return float(os.environ.get("RAMSIS_BENCH_MAX_OFF_OVERHEAD", "1.01"))


def _run(arrivals, trace, tracer=None, registry=None):
    task = image_task()
    sim = Simulation(
        SimulationConfig(
            model_set=task.model_set,
            slo_ms=task.slos_ms[0],
            num_workers=WORKERS,
            max_batch_size=bench_scale().max_batch_size,
            monitor=OracleLoadMonitor(trace),
            seed=7,
            track_responses=False,
            tracer=tracer,
            registry=registry,
        )
    )
    start = time.perf_counter()
    metrics = sim.run(
        JellyfishPlusSelector(), trace, arrival_times=arrivals
    )
    return time.perf_counter() - start, metrics


def test_tracing_overhead(benchmark):
    """Times the off/tracer/tracer+registry/profiler variants on one
    arrival realization; the benchmark fixture times the default (off)
    path, which is re-measured last against an interleaved control and
    gated at ≤1% drift."""
    trace = LoadTrace.constant(LOAD_QPS, DURATION_MS)
    rng = np.random.default_rng(7)
    arrivals = np.sort(
        sample_arrival_times(trace, PoissonArrivals(LOAD_QPS), rng)
    )

    # Warm once (JIT-free Python, but primes caches fairly).
    _run(arrivals, trace)

    rows = []
    baseline_s = None
    variants = (
        ("off (NULL_TRACER)", lambda: (None, None)),
        ("tracer", lambda: (RecordingTracer(), None)),
        ("tracer + registry", lambda: (RecordingTracer(), MetricsRegistry())),
        ("phase profiler", lambda: (PhaseProfiler(), None)),
        ("profiler 1/16 sampled", lambda: (PhaseProfiler(sample_every=16), None)),
    )
    reference = None
    series = {}
    for label, make in variants:
        best = None
        for _ in range(3):
            tracer, registry = make()
            elapsed, metrics = _run(arrivals, trace, tracer, registry)
            best = elapsed if best is None else min(best, elapsed)
        if reference is None:
            reference = metrics
            baseline_s = best
        # Instrumentation must never change simulation results.
        assert metrics.violation_rate == reference.violation_rate
        assert metrics.total_queries == reference.total_queries
        series[label] = {
            "best_of_3_ms": best * 1000.0,
            "vs_off": best / baseline_s,
        }
        rows.append(
            [
                label,
                f"{best * 1000.0:.1f}",
                f"{best / baseline_s:.2f}x",
                f"{metrics.total_queries}",
            ]
        )

    # Re-measure the off path after every instrumented variant has run:
    # pins the cost of the guard branches the aggregation/profiler code
    # added to the hot paths, and catches instrumentation state leaking
    # across runs.  The control and re-measured samples interleave so the
    # paired ratio cancels wall-clock drift (turbo/scheduler noise over
    # the minutes the instrumented variants take) that a sequential
    # before/after comparison would misread as overhead.
    ceiling = _max_off_overhead()

    def _paired_off_drift(pairs=7):
        control_best = remeasured_best = None
        for _ in range(pairs):
            elapsed, _ = _run(arrivals, trace)
            control_best = (
                elapsed if control_best is None else min(control_best, elapsed)
            )
            elapsed, metrics = _run(arrivals, trace)
            remeasured_best = (
                elapsed
                if remeasured_best is None
                else min(remeasured_best, elapsed)
            )
        assert metrics.total_queries == reference.total_queries
        return remeasured_best / control_best, remeasured_best

    off_drift, remeasured_best = _paired_off_drift()
    if off_drift > ceiling:
        # One retry batch: a genuine guard-branch regression fails both,
        # a scheduler-noise excursion doesn't.
        off_drift, remeasured_best = _paired_off_drift()
    series["off (re-measured)"] = {
        "best_of_7_ms": remeasured_best * 1000.0,
        "vs_off": off_drift,
    }
    rows.append(
        [
            "off (re-measured)",
            f"{remeasured_best * 1000.0:.1f}",
            f"{off_drift:.2f}x",
            f"{reference.total_queries}",
        ]
    )

    assert off_drift <= ceiling, (
        f"tracing-off path drifted to {off_drift:.3f}x the interleaved "
        f"control (ceiling {ceiling:.2f}x) — obs guard branches are no "
        f"longer free"
    )

    emit(
        "obs_overhead",
        format_table(
            ["variant", "best ms", "vs off", "queries"],
            rows,
            title=(
                f"Observability overhead ({LOAD_QPS:.0f} QPS, {WORKERS} "
                f"workers, {DURATION_MS / 1000.0:.0f} s simulated)"
            ),
        ),
        data={
            "load_qps": LOAD_QPS,
            "workers": WORKERS,
            "duration_ms": DURATION_MS,
            "queries": reference.total_queries,
            "off_overhead_ceiling": ceiling,
            "variants": series,
        },
        root=True,
    )

    # The pytest-benchmark timing tracks the default (tracing-off) path.
    result = benchmark.pedantic(
        lambda: _run(arrivals, trace)[1], rounds=1, iterations=1
    )
    assert result.total_queries > 1000
