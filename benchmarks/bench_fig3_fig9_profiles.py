"""Figures 3 & 9: model accuracy-latency profiles.

Regenerates the data behind the paper's profile scatter plots: 26 ImageNet
models (9 on the Pareto front) and 5 BERT models (all on the front), plus
the offline profiling step itself (timed — this is the paper's
"collect a latency profile for every (model, batch size)" pass).
"""

from benchmarks._common import emit
from repro.experiments.reporting import format_table
from repro.experiments.tasks import image_task, text_task
from repro.profiles.profiler import SimulatedHardware, profile_model_set


def _profile_rows(task):
    front = set(task.model_set.pareto_front().names)
    rows = []
    for m in sorted(task.model_set, key=lambda m: m.latency_ms(1)):
        rows.append(
            (
                m.name,
                f"{m.accuracy * 100:.2f}%",
                f"{m.latency_ms(1):.1f}",
                f"{m.latency_ms(4):.1f}",
                "front" if m.name in front else "",
            )
        )
    return rows


def _profile_data(task):
    front = set(task.model_set.pareto_front().names)
    return {
        "models": [
            {
                "name": m.name,
                "accuracy": m.accuracy,
                "p95_b1_ms": m.latency_ms(1),
                "p95_b4_ms": m.latency_ms(4),
                "pareto_front": m.name in front,
            }
            for m in sorted(task.model_set, key=lambda m: m.latency_ms(1))
        ]
    }


def test_fig3_image_profiles(benchmark):
    task = image_task()
    hardware = SimulatedHardware(seed=3)

    profiles = benchmark.pedantic(
        profile_model_set,
        args=(task.model_set,),
        kwargs={"max_batch_size": 8, "hardware": hardware, "runs": 50},
        rounds=1,
        iterations=1,
    )
    assert len(profiles) == 26

    text = format_table(
        ["model", "accuracy", "p95@b1 (ms)", "p95@b4 (ms)", "Pareto"],
        _profile_rows(task),
        title="Figure 3 — image classification model profiles (26 models)",
    )
    emit("fig3_image_profiles", text, data=_profile_data(task))
    assert len(task.model_set.pareto_front()) == 9


def test_fig9_text_profiles(benchmark):
    task = text_task()
    hardware = SimulatedHardware(seed=5)

    profiles = benchmark.pedantic(
        profile_model_set,
        args=(task.model_set,),
        kwargs={"max_batch_size": 8, "hardware": hardware, "runs": 50},
        rounds=1,
        iterations=1,
    )
    assert len(profiles) == 5

    text = format_table(
        ["model", "accuracy", "p95@b1 (ms)", "p95@b4 (ms)", "Pareto"],
        _profile_rows(task),
        title="Figure 9 — text classification model profiles (5 BERTs)",
    )
    emit("fig9_text_profiles", text, data=_profile_data(task))
    assert len(task.model_set.pareto_front()) == 5
