"""Sharded serving-tier stress: sustained throughput, audits, pacing.

Four measurements, gated where the result is deterministic:

1. **Sustained fan-out throughput** — every benchmark process replays its
   own seeded realization of the synthesized Twitter-shaped trace
   (scaled to the bench cluster) through one unpaced
   :class:`~repro.runtime.shard.ShardedController` serving the pinned
   RAMSIS policy with one §5.1 guarantee auditor per shard.  The gate is
   twofold: the summed per-process throughput must clear
   ``RAMSIS_BENCH_MIN_QPS`` (default 100k q/s at bench scale, 10k at
   smoke), and the runs must finish with **zero** violation/accuracy
   breaches.  Breach counts are a pure function of the seeded virtual
   timelines, so the audit half of the gate is machine-independent.
2. **Dispatch-loop overhead vs. the fast simulator engine** — the same
   arrival stream, models and policy through the discrete-event fast
   engine and through a single sharded runtime (no auditors in either);
   the ratio isolates what the asyncio dispatch path costs over the
   engine's raw event loop.
3. **Paced added latency** — a paced run on the scaled wall clock; p99 of
   how far (wall ms) batch completions lag their virtual instants.
4. **Layout invariance** — re-served with a different shard topology, the
   stress trace must produce float-identical metrics (asserted, not
   timed).

Results land in ``benchmarks/out/runtime.{txt,json}`` and the JSON also at
the repo root (``BENCH_runtime.json``) for trend diffing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List

from benchmarks._common import bench_workers, emit
from repro.arrivals.traces import LoadTrace, synthesize_twitter_trace
from repro.core.config import WorkerMDPConfig
from repro.core.generator import generate_policy
from repro.core.guarantees import stationary_occupancy
from repro.core.mdp import build_worker_mdp
from repro.obs.audit import GuaranteeAuditor
from repro.profiles.latency import LinearLatencyModel
from repro.profiles.models import ModelProfile, ModelSet
from repro.runtime import ShardedController
from repro.selectors import RamsisSelector
from repro.sim.latency_model import DeterministicLatency
from repro.sim.simulator import Simulation, SimulationConfig

SLO_MS = 100.0
MAX_BATCH = 8
#: Stress topology per process: 4 shards x 2 workers.
NUM_SHARDS = 4
WORKERS_PER_SHARD = 2
TOTAL_WORKERS = NUM_SHARDS * WORKERS_PER_SHARD
#: Mean per-worker load of the scaled Twitter trace (QPS).
PER_WORKER_QPS = 40.0


def _smoke() -> bool:
    return os.environ.get("RAMSIS_BENCH_SCALE", "bench") == "smoke"


def _min_qps() -> float:
    env = os.environ.get("RAMSIS_BENCH_MIN_QPS")
    if env:
        return float(env)
    return 10_000.0 if _smoke() else 100_000.0


def _bench_models() -> ModelSet:
    """Deterministic three-model zoo (shared with bench_sim_engine)."""
    return ModelSet(
        [
            ModelProfile(
                name="fast",
                accuracy=0.60,
                latency=LinearLatencyModel(2.0, 8.0, std_ms=0.0),
                family="bench",
            ),
            ModelProfile(
                name="medium",
                accuracy=0.75,
                latency=LinearLatencyModel(3.0, 20.0, std_ms=0.0),
                family="bench",
            ),
            ModelProfile(
                name="slow",
                accuracy=0.90,
                latency=LinearLatencyModel(4.0, 60.0, std_ms=0.0),
                family="bench",
            ),
        ],
        task="bench",
    )


def _stress_trace() -> LoadTrace:
    """The Twitter-shaped trace scaled to the bench cluster's capacity."""
    duration_s = 10.0 if _smoke() else 60.0
    # Keep the paper's 30-interval diurnal shape at any duration.
    trace = synthesize_twitter_trace(
        duration_s=duration_s, interval_s=duration_s / 30.0
    )
    target_mean = PER_WORKER_QPS * TOTAL_WORKERS
    return trace.scaled(target_mean / trace.mean_qps, name="twitter-bench")


def _audit_refs(models: ModelSet, cluster_qps: float):
    """(policy, guarantees, occupancy) pinned for cluster load ``cluster_qps``.

    ``load_qps`` is the *cluster* arrival rate; the MDP splits it across
    ``num_workers`` internally (see ``WorkerMDPConfig.per_worker_arrivals``).
    """
    config = WorkerMDPConfig.default_poisson(
        models,
        slo_ms=SLO_MS,
        load_qps=cluster_qps,
        num_workers=TOTAL_WORKERS,
        fld_resolution=12,
        max_batch_size=MAX_BATCH,
    )
    result = generate_policy(config)
    occupancy = stationary_occupancy(
        build_worker_mdp(config), result.policy
    ).decision_conditional()
    return result.policy, result.guarantees, occupancy


def _stress_run(payload) -> Dict[str, float]:
    """One process's audited unpaced replay of the stress trace."""
    policy, guarantees, occupancy, seed = payload
    models = _bench_models()
    trace = _stress_trace()
    auditors = [
        GuaranteeAuditor(
            guarantees, policy=policy, expected_occupancy=occupancy
        )
        for _ in range(NUM_SHARDS)
    ]
    controller = ShardedController(
        models,
        slo_ms=SLO_MS,
        num_shards=NUM_SHARDS,
        workers_per_shard=WORKERS_PER_SHARD,
        max_batch_size=MAX_BATCH,
        latency_model=DeterministicLatency(),
        seed=seed,
        paced=False,
    )
    report = controller.serve(
        lambda s: RamsisSelector(policy), trace, auditors=auditors
    )
    breaches = [a.finalize() for a in auditors]
    return {
        "queries": report.submitted,
        "wall_s": report.wall_seconds,
        "qps": report.qps,
        "violation_rate": report.metrics.violation_rate,
        "accuracy": report.metrics.accuracy_per_satisfied_query,
        "violation_breaches": sum(b.violation_breaches for b in breaches),
        "accuracy_breaches": sum(b.accuracy_breaches for b in breaches),
    }


def test_runtime_stress():
    models = _bench_models()
    trace = _stress_trace()
    # Conservative pin: the policy generated for the trace's *peak* load
    # keeps the §5.1 bounds valid across the whole diurnal shape (the
    # accuracy floor and violation ceiling are one-sided, so serving any
    # lighter interval only moves the observables the safe way).
    policy, guarantees, occupancy = _audit_refs(models, trace.peak_qps)

    processes = max(2, min(bench_workers(), 4))
    payloads = [
        (policy, guarantees, occupancy, 100 + seed)
        for seed in range(processes)
    ]

    start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=processes) as pool:
        rows: List[Dict[str, float]] = list(pool.map(_stress_run, payloads))
    fanout_wall_s = time.perf_counter() - start

    total_queries = sum(int(r["queries"]) for r in rows)
    aggregate_qps = sum(r["qps"] for r in rows)
    breaches = sum(
        int(r["violation_breaches"]) + int(r["accuracy_breaches"])
        for r in rows
    )
    assert breaches == 0, (
        f"{breaches} guarantee breach(es) across the stress fan-out"
    )
    floor = _min_qps()
    assert aggregate_qps >= floor, (
        f"aggregate throughput {aggregate_qps:,.0f} q/s below the "
        f"{floor:,.0f} q/s floor"
    )

    # ------------------------------------------------------------------
    # Dispatch overhead vs. the fast simulator engine (single process,
    # identical arrival stream, no auditors on either side).
    # ------------------------------------------------------------------
    from repro.runtime.workload import WorkloadGenerator

    arrivals = WorkloadGenerator(trace, SLO_MS, seed=100).sample()
    sim = Simulation(
        SimulationConfig(
            model_set=models,
            slo_ms=SLO_MS,
            num_workers=TOTAL_WORKERS,
            max_batch_size=MAX_BATCH,
        )
    )
    t0 = time.perf_counter()
    sim.run(RamsisSelector(policy), trace, arrival_times=arrivals, engine="fast")
    fast_s = time.perf_counter() - t0
    fast_qps = arrivals.shape[0] / fast_s

    single = ShardedController(
        models,
        slo_ms=SLO_MS,
        num_shards=NUM_SHARDS,
        workers_per_shard=WORKERS_PER_SHARD,
        max_batch_size=MAX_BATCH,
        latency_model=DeterministicLatency(),
        seed=100,
        paced=False,
    )
    single_report = single.serve(
        lambda s: RamsisSelector(policy), trace, arrivals=arrivals
    )
    overhead = fast_qps / single_report.qps if single_report.qps else 0.0

    # ------------------------------------------------------------------
    # Paced added latency: a short run on the scaled wall clock.
    # ------------------------------------------------------------------
    paced_trace = LoadTrace.constant(
        PER_WORKER_QPS * TOTAL_WORKERS, 3_000.0, name="paced-bench"
    )
    paced = ShardedController(
        models,
        slo_ms=SLO_MS,
        num_shards=NUM_SHARDS,
        workers_per_shard=WORKERS_PER_SHARD,
        max_batch_size=MAX_BATCH,
        latency_model=DeterministicLatency(),
        seed=7,
        time_scale=0.02,
        paced=True,
    )
    paced_report = paced.serve(lambda s: RamsisSelector(policy), paced_trace)

    # ------------------------------------------------------------------
    # Layout invariance on the stress stream (asserted, not timed).
    # ------------------------------------------------------------------
    other = ShardedController(
        models,
        slo_ms=SLO_MS,
        num_shards=1,
        workers_per_shard=TOTAL_WORKERS,
        max_batch_size=MAX_BATCH,
        latency_model=DeterministicLatency(),
        seed=100,
        paced=False,
    )
    other_report = other.serve(
        lambda s: RamsisSelector(policy), trace, arrivals=arrivals
    )
    assert other_report.metrics == single_report.metrics, (
        "shard layout changed the served results"
    )

    lines = [
        f"sharded runtime: {processes} process(es) x {NUM_SHARDS} shards "
        f"x {WORKERS_PER_SHARD} workers, {trace.name} "
        f"({trace.mean_qps:,.0f} QPS mean x {trace.duration_ms / 1000:g} s)",
        f"aggregate    {aggregate_qps:>10,.0f} q/s over {total_queries:,} "
        f"queries (floor {floor:,.0f}, fan-out wall {fanout_wall_s:.2f} s)",
        f"fast engine  {fast_qps:>10,.0f} q/s -> dispatch overhead "
        f"{overhead:.2f}x (single-process runtime "
        f"{single_report.qps:,.0f} q/s)",
        f"paced        p99 added latency {paced_report.p99_added_latency_ms:.3f} ms "
        f"wall over {paced_report.submitted} queries",
        f"audits       {breaches} breaches across "
        f"{processes * NUM_SHARDS} shard auditors",
    ]
    data = {
        "processes": processes,
        "num_shards": NUM_SHARDS,
        "workers_per_shard": WORKERS_PER_SHARD,
        "trace_mean_qps": trace.mean_qps,
        "trace_duration_ms": trace.duration_ms,
        "total_queries": total_queries,
        "aggregate_qps": aggregate_qps,
        "min_qps_floor": floor,
        "fanout_wall_s": fanout_wall_s,
        "fast_engine_qps": fast_qps,
        "single_process_qps": single_report.qps,
        "dispatch_overhead_vs_fast": overhead,
        "p99_added_latency": paced_report.p99_added_latency_ms,
        "violation_breaches": 0,
        "accuracy_breaches": 0,
        "per_process": rows,
    }
    emit("runtime", "\n".join(lines), data=data, root=True)
