"""Appendix H: the INFaaS-adapted comparison.

INFaaS takes accuracy + latency SLOs and picks the lowest-cost (lowest
latency) model meeting both; adapting it to the paper's setting by sweeping
accuracy targets shows its minimize-latency objective effectively minimizes
accuracy.  Asserted: no INFaaS target beats RAMSIS at any plottable load —
"INFaaS performs no better than RAMSIS or the baselines".
"""

import pytest

from benchmarks._common import bench_scale, emit, points_payload
from repro.experiments.appendix import render_appendix_h, run_appendix_h


@pytest.fixture(scope="module")
def apph_points():
    scale = bench_scale()
    return run_appendix_h(scale=scale, loads_qps=scale.constant_loads_qps[::2])


def test_apph_run_and_render(benchmark, apph_points):
    points = benchmark.pedantic(lambda: apph_points, rounds=1, iterations=1)
    emit(
        "apph_infaas",
        render_appendix_h(points),
        data={
            "points": [
                dict(scheme=label, **row)
                for (label, p) in points
                for row in points_payload([p])
            ]
        },
    )
    labels = {label for label, _ in points}
    assert "RAMSIS" in labels
    assert any(label.startswith("INFaaS") for label in labels)


def test_apph_infaas_never_beats_ramsis(apph_points):
    ramsis = {
        p.load_qps: p.accuracy
        for label, p in apph_points
        if label == "RAMSIS" and p.plottable
    }
    for label, p in apph_points:
        if label.startswith("INFaaS") and p.plottable and p.load_qps in ramsis:
            assert p.accuracy <= ramsis[p.load_qps] + 0.01


def test_apph_target_selects_minimally_accurate_model(apph_points):
    """With a low accuracy target, INFaaS serves the least accurate model
    that meets it, leaving accuracy on the table."""
    infaas = [
        p
        for label, p in apph_points
        if label.startswith("INFaaS") and p.plottable
    ]
    ramsis = [p for label, p in apph_points if label == "RAMSIS" and p.plottable]
    if infaas and ramsis:
        assert min(p.accuracy for p in infaas) < max(p.accuracy for p in ramsis)
