"""Table 2: policy-generation runtimes.

Times value iteration across the paper's strategy grid — MD vs FLD(100) vs
FLD(10), variable vs maximal batching — for the 9-model Pareto set and the
60-model synthetic set.  The paper's orderings must hold:

- FLD D=10 is fastest; MD and FLD D=100 are comparable (max batching);
- variable batching is far slower than maximal batching;
- the 60-model set is slower than the 9-model set everywhere.

(The absolute numbers are smaller than the paper's — its Table 2 runs
``B_w = 29``/``N_w = 32`` per cell on a 2019-era VM; the bench preset uses
the same grid at the preset's batch cap.)
"""

import pytest

from benchmarks._common import bench_scale, emit
from repro.experiments.tables import render_table2, run_table2


@pytest.fixture(scope="module")
def table2_rows():
    scale = bench_scale()
    rows = run_table2(scale=scale, include_variable=True)
    emit(
        "table2_policy_gen_runtimes",
        render_table2(rows),
        data={
            "rows": [
                {
                    "discretization": r.discretization,
                    "batching": r.batching,
                    "model_count": r.model_count,
                    "runtime_s": r.runtime_s,
                    "iterations": r.iterations,
                    "states": r.states,
                }
                for r in rows
            ]
        },
    )
    return rows


def _runtime(rows, disc, batching, count):
    """Measured runtime of a cell; None marks a paper-timeout cell."""
    return [
        r.runtime_s
        for r in rows
        if r.discretization == disc
        and r.batching == batching
        and r.model_count == count
    ][0]


def test_table2_generation_grid(benchmark, table2_rows):
    """Benchmark one representative cell (FLD D=100, max batching, M=9)."""
    from repro.core.config import WorkerMDPConfig
    from repro.core.mdp import build_worker_mdp
    from repro.core.solvers import value_iteration
    from repro.experiments.tasks import image_task

    task = image_task()
    config = WorkerMDPConfig.default_poisson(
        task.model_set.pareto_front(),
        slo_ms=task.slos_ms[-1],
        load_qps=30.0,
        num_workers=1,
        fld_resolution=100,
        max_batch_size=bench_scale().max_batch_size,
    )

    def generate():
        return value_iteration(build_worker_mdp(config))

    stats = benchmark.pedantic(generate, rounds=1, iterations=1)
    assert stats.converged


def test_table2_orderings(table2_rows):
    rows = table2_rows
    # FLD D=10 fastest at max batching, both model counts.
    for count in (9, 60):
        assert _runtime(rows, "FLD D=10", "max", count) <= _runtime(
            rows, "FLD D=100", "max", count
        )
    # Variable batching slower than maximal (paper: 3693s vs 115s for MD).
    assert _runtime(rows, "MD", "variable", 9) > _runtime(rows, "MD", "max", 9)
    assert _runtime(rows, "FLD D=100", "variable", 9) > _runtime(
        rows, "FLD D=100", "max", 9
    )
    # More models cost more (max batching, FLD 100).
    assert _runtime(rows, "FLD D=100", "max", 60) > _runtime(
        rows, "FLD D=100", "max", 9
    )


def test_table2_paper_timeout_cells(table2_rows):
    """The |M| = 60 cells the paper marks "timeout" are reported as such:
    every variable-batching strategy and MD even at maximal batching."""
    rows = table2_rows
    assert _runtime(rows, "MD", "variable", 60) is None
    assert _runtime(rows, "FLD D=100", "variable", 60) is None
    assert _runtime(rows, "MD", "max", 60) is None
    # ... while the FLD max-batching cells complete (paper: 1355s / 149s).
    assert _runtime(rows, "FLD D=100", "max", 60) is not None
    assert _runtime(rows, "FLD D=10", "max", 60) is not None
