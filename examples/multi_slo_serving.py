#!/usr/bin/env python3
"""Serving multiple latency SLOs at once (Appendix G).

Three applications share one cluster, each with its own latency SLO:

- an interactive vision app (tight 150 ms SLO, heavy traffic),
- an analytics pipeline (relaxed 500 ms SLO, moderate traffic),
- a batch tagger (300 ms SLO, light traffic).

Per the paper, each worker is assigned one SLO and attaches to the matching
per-SLO queue.  The partitioner splits the cluster by expected work; each
class gets its own RAMSIS policy, generated for its per-class load and
worker count.

Run:  python examples/multi_slo_serving.py
"""

from repro import LoadTrace, WorkerMDPConfig, build_image_model_set, generate_policy
from repro.selectors import GreedyDeadlineSelector, RamsisSelector
from repro.sim import SLOClass, partition_workers, run_multi_slo

TOTAL_WORKERS = 12
APPS = [
    ("interactive", 150.0, 180.0),
    ("tagger", 300.0, 60.0),
    ("analytics", 500.0, 90.0),
]


def main() -> None:
    models = build_image_model_set()

    # First pass: let the partitioner size each class, then generate a
    # RAMSIS policy per (SLO, load, workers) cell.
    skeleton = [
        SLOClass(
            slo_ms=slo,
            trace=LoadTrace.constant(qps, 20_000.0, name=name),
            selector=GreedyDeadlineSelector(),  # sizing only; replaced below
        )
        for name, slo, qps in APPS
    ]
    shares = partition_workers(skeleton, models, TOTAL_WORKERS)
    print(f"worker partition over {TOTAL_WORKERS} workers:")
    for name, slo, qps in APPS:
        print(f"  {name:<12} SLO {slo:>5g} ms  {qps:>5g} QPS  "
              f"-> {shares[slo]} workers")

    classes = []
    for name, slo, qps in APPS:
        workers = shares[slo]
        config = WorkerMDPConfig.default_poisson(
            models, slo_ms=slo, load_qps=qps, num_workers=workers,
        )
        result = generate_policy(config)
        print(f"  {name}: E[acc] >= {result.guarantees.expected_accuracy * 100:.2f}%, "
              f"E[viol] <= {result.guarantees.expected_violation_rate * 100:.3f}%")
        classes.append(
            SLOClass(
                slo_ms=slo,
                trace=LoadTrace.constant(qps, 20_000.0, name=name),
                selector=RamsisSelector(result.policy),
                num_workers=workers,
            )
        )

    report = run_multi_slo(models, classes, seed=11)
    print("\nonline results:")
    for name, slo, _ in APPS:
        m = report.per_class[slo]
        print(f"  {name:<12} accuracy={m.accuracy_per_satisfied_query * 100:.2f}%  "
              f"violations={m.violation_rate * 100:.3f}%  "
              f"({m.total_queries} queries)")
    print(f"\naggregate: accuracy={report.aggregate_accuracy * 100:.2f}%, "
          f"violations={report.aggregate_violation_rate * 100:.3f}% over "
          f"{report.total_queries} queries")
    print("looser SLO classes exploit slower, more accurate models —"
          "\nthe per-class policies encode exactly that trade-off.")


if __name__ == "__main__":
    main()
