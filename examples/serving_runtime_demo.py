#!/usr/bin/env python3
"""Wall-clock serving with the prototype-style runtime (§6).

The paper evaluates a real client-server prototype next to its simulator.
This example runs the in-process equivalent: worker threads "execute"
inference by sleeping the sampled latency on a compressed wall clock, a
workload-generator thread replays the trace, and the central controller
wires the queue, balancer, and monitor together.  The same policy is then
run through the discrete-event simulator to show the two agree — the
runtime slightly beats the simulator because real executions usually finish
ahead of the planned p95 latency (§7.3.1's finding, reproduced).

Run:  python examples/serving_runtime_demo.py
"""

from repro import (
    LoadTrace,
    PoissonArrivals,
    WorkerMDPConfig,
    build_text_model_set,
    generate_policy,
)
from repro.runtime import CentralController
from repro.selectors import RamsisSelector
from repro.sim import (
    OracleLoadMonitor,
    Simulation,
    SimulationConfig,
    StochasticLatency,
)

WORKERS = 4
LOAD_QPS = 120.0
SLO_MS = 200.0
DURATION_MS = 8_000.0
TIME_SCALE = 0.25  # 4x faster than real time


def main() -> None:
    models = build_text_model_set()
    config = WorkerMDPConfig.default_poisson(
        models, slo_ms=SLO_MS, load_qps=LOAD_QPS, num_workers=WORKERS,
    )
    result = generate_policy(config)
    policy = result.policy
    trace = LoadTrace.constant(LOAD_QPS, DURATION_MS)

    print(f"text task, {WORKERS} workers, {LOAD_QPS:g} QPS, SLO {SLO_MS:g} ms")
    print(f"policy: E[acc] >= {result.guarantees.expected_accuracy * 100:.2f}%, "
          f"E[viol] <= {result.guarantees.expected_violation_rate * 100:.3f}%\n")

    # Wall-clock runtime: threads + sleeps, stochastic latencies.
    controller = CentralController(
        models, SLO_MS, WORKERS, time_scale=TIME_SCALE, seed=3,
    )
    report = controller.serve(
        RamsisSelector(policy), trace, pattern=PoissonArrivals(LOAD_QPS)
    )
    print(f"runtime (threads, {1 / TIME_SCALE:.0f}x speed): "
          f"{report.metrics.summary()}")
    print(f"  wall time: {report.wall_seconds:.1f}s for "
          f"{DURATION_MS / 1000:.0f}s of virtual serving\n")

    # Discrete-event simulator on the same workload, both latency modes.
    for label, latency in (
        ("simulator (deterministic p95)", None),
        ("simulator (stochastic)", StochasticLatency(seed=3)),
    ):
        sim_config = SimulationConfig(
            model_set=models,
            slo_ms=SLO_MS,
            num_workers=WORKERS,
            monitor=OracleLoadMonitor(trace),
            seed=3,
        )
        if latency is not None:
            sim_config.latency_model = latency
        metrics = Simulation(sim_config).run(
            RamsisSelector(policy), trace, pattern=PoissonArrivals(LOAD_QPS)
        )
        print(f"{label}: {metrics.summary()}")


if __name__ == "__main__":
    main()
