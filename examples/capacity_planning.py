#!/usr/bin/env python3
"""Capacity planning with RAMSIS's offline guarantees (§5.1).

The paper notes that an ISS resource manager can use the expected accuracy
and expected SLO violation rate that RAMSIS computes offline to direct
resource-scaling decisions — an offline search over worker counts, without
running a single query.  This example performs that search:

    "How many workers do I need to serve 480 QPS of ImageNet traffic at a
     150 ms SLO, with at least 72% accuracy and under 1% violations?"

and then validates the chosen configuration in simulation.

Run:  python examples/capacity_planning.py
"""

from repro import (
    LoadTrace,
    PoissonArrivals,
    WorkerMDPConfig,
    build_image_model_set,
    generate_policy,
)
from repro.selectors import RamsisSelector
from repro.sim import OracleLoadMonitor, Simulation, SimulationConfig

TOTAL_LOAD_QPS = 480.0
SLO_MS = 150.0
ACCURACY_FLOOR = 0.72
VIOLATION_CEILING = 0.01


def main() -> None:
    models = build_image_model_set()
    print(f"target: {TOTAL_LOAD_QPS:g} QPS, SLO {SLO_MS:g} ms, "
          f"accuracy >= {ACCURACY_FLOOR * 100:.0f}%, "
          f"violations <= {VIOLATION_CEILING * 100:.0f}%\n")

    chosen = None
    print(f"{'workers':>8} {'E[accuracy]':>12} {'E[violation]':>13}  verdict")
    for workers in range(8, 33, 2):
        config = WorkerMDPConfig.default_poisson(
            models, slo_ms=SLO_MS, load_qps=TOTAL_LOAD_QPS, num_workers=workers,
        )
        result = generate_policy(config)
        g = result.guarantees
        ok = g.meets(ACCURACY_FLOOR, VIOLATION_CEILING)
        print(f"{workers:>8} {g.expected_accuracy * 100:>11.2f}% "
              f"{g.expected_violation_rate * 100:>12.3f}%  "
              f"{'MEETS TARGET' if ok else '-'}")
        if ok and chosen is None:
            chosen = (workers, result)
            break

    if chosen is None:
        print("\nno configuration in range meets the target; "
              "raise the worker budget or relax the target")
        return

    workers, result = chosen
    print(f"\nselected {workers} workers — validating in simulation...")
    trace = LoadTrace.constant(TOTAL_LOAD_QPS, 30_000.0)
    sim = Simulation(SimulationConfig(
        model_set=models,
        slo_ms=SLO_MS,
        num_workers=workers,
        monitor=OracleLoadMonitor(trace),
        seed=7,
    ))
    metrics = sim.run(
        RamsisSelector(result.policy), trace, pattern=PoissonArrivals(TOTAL_LOAD_QPS)
    )
    print(f"observed: accuracy={metrics.accuracy_per_satisfied_query * 100:.2f}% "
          f"(bound {result.guarantees.expected_accuracy * 100:.2f}%), "
          f"violations={metrics.violation_rate * 100:.3f}% "
          f"(bound {result.guarantees.expected_violation_rate * 100:.3f}%)")
    print("the offline expectations bound the observed metrics, as §5.1 claims")


if __name__ == "__main__":
    main()
