#!/usr/bin/env python3
"""Bring your own models and arrival pattern.

RAMSIS is parameterized by (1) latency/accuracy profiles and (2) a query
arrival distribution (§3.1.1).  This example builds a custom speech-to-text
model family from scratch, profiles it on simulated hardware the way the
paper profiles TorchServe deployments, and generates policies under both
Poisson and Gamma inter-arrival patterns to show how burstiness changes the
policy's aggressiveness.

Run:  python examples/custom_models.py
"""

from repro import (
    GammaArrivals,
    LinearLatencyModel,
    ModelProfile,
    ModelSet,
    PoissonArrivals,
    WorkerMDPConfig,
    generate_policy,
)
from repro.profiles import SimulatedHardware, profile_model_set

SLO_MS = 400.0
LOAD_QPS = 30.0


def build_speech_models() -> ModelSet:
    """A hypothetical ASR family: accuracy = word accuracy on a test set."""
    rows = [
        ("asr_tiny", 0.82, 4.0, 22.0),
        ("asr_base", 0.88, 6.0, 55.0),
        ("asr_large", 0.92, 8.0, 120.0),
        ("asr_xl", 0.94, 10.0, 240.0),
    ]
    return ModelSet(
        [
            ModelProfile(
                name=name,
                accuracy=acc,
                latency=LinearLatencyModel(
                    overhead_ms=overhead, per_item_ms=per_item, std_ms=8.0
                ),
                family="asr",
            )
            for name, acc, overhead, per_item in rows
        ],
        task="speech",
    )


def main() -> None:
    models = build_speech_models()

    # Offline profiling, exactly like the paper's artifact: time each
    # (model, batch) pair 100x on the target hardware, keep the p95.
    profiles = profile_model_set(
        models, max_batch_size=8, hardware=SimulatedHardware(seed=1), runs=100
    )
    print("measured p95 latency profiles (ms):")
    for name, profile in profiles.items():
        series = "  ".join(
            f"b{b}={profile.latency_ms(b):6.1f}" for b in (1, 2, 4, 8)
        )
        print(f"  {name:<10} {series}")

    # Generate policies under two inter-arrival patterns at the same load.
    # Gamma shape 0.5 is *burstier* than Poisson, shape 4 is smoother.
    patterns = {
        "gamma(0.5) bursty": GammaArrivals(LOAD_QPS, shape=0.5),
        "poisson": PoissonArrivals(LOAD_QPS),
        "gamma(4) smooth": GammaArrivals(LOAD_QPS, shape=4.0),
    }
    print(f"\npolicies at {LOAD_QPS:g} QPS, SLO {SLO_MS:g} ms, one worker:")
    print(f"{'pattern':<20} {'E[accuracy]':>12} {'E[violation]':>13}")
    for label, arrivals in patterns.items():
        config = WorkerMDPConfig(
            model_set=models,
            slo_ms=SLO_MS,
            arrivals=arrivals,
            num_workers=1,
            max_batch_size=8,
        )
        g = generate_policy(config).guarantees
        print(f"{label:<20} {g.expected_accuracy * 100:>11.2f}% "
              f"{g.expected_violation_rate * 100:>12.3f}%")
    print("\nsmoother arrivals -> more slack to exploit -> higher accuracy"
          "\nat the same load; burstier arrivals force conservatism.")


if __name__ == "__main__":
    main()
