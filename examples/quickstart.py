#!/usr/bin/env python3
"""Quickstart: generate a RAMSIS policy and serve queries with it.

Walks the paper's full pipeline on a small configuration:

1. build the 26-model ImageNet zoo (Fig. 3);
2. generate an MS policy offline for one (SLO, load, workers) cell (§3.1);
3. inspect the policy's probabilistic guarantees (§5.1);
4. replay a constant-load Poisson workload through the discrete-event
   simulator and compare RAMSIS against the Jellyfish+ baseline (§7.2).

Run:  python examples/quickstart.py
"""

from repro import (
    LoadTrace,
    PoissonArrivals,
    WorkerMDPConfig,
    build_image_model_set,
    generate_policy,
)
from repro.selectors import JellyfishPlusSelector, RamsisSelector
from repro.sim import OracleLoadMonitor, Simulation, SimulationConfig


def main() -> None:
    # 1. The model zoo: 26 ImageNet classifiers, 9 on the Pareto front.
    models = build_image_model_set()
    front = models.pareto_front()
    print(f"zoo: {len(models)} models, {len(front)} on the Pareto front")
    print(f"fastest: {models.fastest().name} "
          f"({models.fastest().latency_ms(1):.1f} ms, "
          f"{models.fastest().accuracy * 100:.1f}%)")
    print(f"most accurate within SLO grid: {front.most_accurate().name} "
          f"({front.most_accurate().latency_ms(1):.1f} ms, "
          f"{front.most_accurate().accuracy * 100:.1f}%)\n")

    # 2. Offline phase: formulate + solve the per-worker MDP.
    slo_ms, load_qps, workers = 150.0, 160.0, 8
    config = WorkerMDPConfig.default_poisson(
        models, slo_ms=slo_ms, load_qps=load_qps, num_workers=workers,
    )
    result = generate_policy(config)
    print(f"policy generated in {result.runtime_s:.2f}s "
          f"({result.iterations} value-iteration sweeps)")

    # 3. Probabilistic guarantees (§5.1): accuracy lower bound, violation
    #    upper bound, both from the stationary distribution.
    g = result.guarantees
    print(f"expected accuracy       >= {g.expected_accuracy * 100:.2f}%")
    print(f"expected violation rate <= {g.expected_violation_rate * 100:.3f}%\n")

    # 4. Online phase: serve a 30-second constant-load workload.
    trace = LoadTrace.constant(load_qps, 30_000.0)
    sim = Simulation(SimulationConfig(
        model_set=models,
        slo_ms=slo_ms,
        num_workers=workers,
        monitor=OracleLoadMonitor(trace),
        seed=42,
    ))
    for selector in (RamsisSelector(result.policy), JellyfishPlusSelector()):
        metrics = sim.run(selector, trace, pattern=PoissonArrivals(load_qps))
        print(f"{selector.name:12s} accuracy="
              f"{metrics.accuracy_per_satisfied_query * 100:.2f}%  "
              f"violations={metrics.violation_rate * 100:.3f}%  "
              f"({metrics.total_queries} queries)")


if __name__ == "__main__":
    main()
