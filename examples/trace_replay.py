#!/usr/bin/env python3
"""Production-trace replay: RAMSIS vs the baselines on a diurnal workload.

Reproduces the §7.1 methodology end to end at a laptop-friendly scale:

1. synthesize the Twitter-shaped trace (5 minutes compressed to 2, diurnal
   humps + spikes, scaled down 10x in QPS);
2. build a load-adaptive RAMSIS policy set with the 1% refinement rule;
3. profile ModelSwitching's p99 response latencies offline;
4. replay the *same* arrival realization through RAMSIS, Jellyfish+, and
   ModelSwitching and compare accuracy and SLO violations.

Run:  python examples/trace_replay.py
"""

from repro.arrivals import summarize
from repro.experiments import ExperimentScale, image_task
from repro.experiments.fig5 import production_trace
from repro.experiments.runner import run_method, shared_arrivals

WORKERS = 6
SLO_MS = 150.0


def main() -> None:
    scale = ExperimentScale.default().with_overrides(trace_duration_s=120.0)
    task = image_task()
    trace = production_trace(scale)
    print(f"trace: {trace.name}, {trace.duration_ms / 1000:.0f}s, "
          f"{trace.min_qps:.0f}-{trace.peak_qps:.0f} QPS "
          f"(~{trace.expected_queries():.0f} queries)")

    # The paper's premise, measured (§2.1): the arrival realization shows
    # Poisson-level burstiness with exploitable lulls.
    pattern = summarize(shared_arrivals(trace, seed=11))
    print(f"arrival pattern: CV={pattern.interarrival_cv:.2f}, "
          f"{pattern.num_lulls} lulls (longest {pattern.longest_lull_ms:.0f} ms), "
          f"{pattern.num_bursts} bursts")
    print(f"cluster: {WORKERS} workers, SLO {SLO_MS:g} ms\n")

    print(f"{'method':<16} {'accuracy':>9} {'violations':>11} {'queries':>8}")
    for method in ("RAMSIS", "MS", "JF", "Greedy"):
        point = run_method(method, task, SLO_MS, WORKERS, trace, scale, seed=11)
        flag = "" if point.plottable else "  (> 5% violations: excluded in paper plots)"
        print(f"{method:<16} {point.accuracy * 100:>8.2f}% "
              f"{point.violation_rate * 100:>10.3f}% {point.queries:>8}{flag}")

    print("\nRAMSIS adapts per batch: during arrival lulls it upgrades to"
          "\nhigher-accuracy models, while the load-granular baselines hold"
          "\none model per load level (§2.2, Fig. 2).")


if __name__ == "__main__":
    main()
