"""Tests for the model selectors: RAMSIS and all baselines."""

import pytest

from repro.arrivals.traces import LoadTrace
from repro.core.generator import PolicyGenerator, generate_policy
from repro.core.policy_set import PolicySet
from repro.errors import CapacityError
from repro.selectors import (
    FixedModelSelector,
    GreedyDeadlineSelector,
    InfaasAdaptedSelector,
    JellyfishPlusSelector,
    ModelSwitchingSelector,
    RamsisSelector,
    ResponseLatencyTable,
    profile_response_latency,
)
from repro.selectors.base import QueueScope, SelectorContext


def ctx(models, slo=100.0, workers=2, max_batch=8):
    return SelectorContext(
        model_set=models, slo_ms=slo, num_workers=workers, max_batch_size=max_batch
    )


class TestRamsisSelector:
    def test_pinned_policy(self, tiny_config):
        policy = generate_policy(tiny_config).policy
        sel = RamsisSelector(policy)
        sel.bind(ctx(tiny_config.model_set))
        action = sel.select(1, 100.0, 0.0, anticipated_load_qps=25.0)
        assert action == policy.action_for(1, 100.0)

    def test_policy_set_switches_with_load(self, tiny_config):
        gen = PolicyGenerator(tiny_config)
        ps = PolicySet.generate(gen, [5.0, 40.0], accuracy_gap_threshold=1.0)
        sel = RamsisSelector(ps)
        sel.bind(ctx(tiny_config.model_set))
        assert sel.current_policy(3.0).load_qps == 5.0
        assert sel.current_policy(20.0).load_qps == 40.0

    def test_per_worker_scope(self, tiny_config):
        policy = generate_policy(tiny_config).policy
        assert RamsisSelector(policy).queue_scope is QueueScope.PER_WORKER


class TestJellyfishPlus:
    def test_selects_most_accurate_sustaining_load(self, tiny_models):
        sel = JellyfishPlusSelector()
        sel.bind(ctx(tiny_models, slo=100.0, workers=2))
        # SLO/2 = 50: slow (l1=64) infeasible; medium l(2)=43 ->
        # throughput 46.5/worker -> 93 total; fast much higher.
        model, _ = sel.model_for_load(50.0)
        assert model.name == "medium"

    def test_falls_back_to_fastest_on_overload(self, tiny_models):
        sel = JellyfishPlusSelector()
        sel.bind(ctx(tiny_models, slo=100.0, workers=1))
        model, _ = sel.model_for_load(1e6)
        assert model.name == "fast"

    def test_adaptive_batch_cap(self, tiny_models):
        sel = JellyfishPlusSelector()
        sel.bind(ctx(tiny_models, slo=100.0, workers=2))
        action = sel.select(20, 100.0, 0.0, anticipated_load_qps=50.0)
        model = tiny_models.get(action.model)
        assert model.latency_ms(action.batch_size) <= 50.0

    def test_infeasible_slo_rejected(self, tiny_models):
        sel = JellyfishPlusSelector()
        with pytest.raises(CapacityError):
            sel.bind(ctx(tiny_models, slo=15.0))  # SLO/2 = 7.5 < fastest l(1)

    def test_central_scope(self):
        assert JellyfishPlusSelector.queue_scope is QueueScope.CENTRAL


class TestModelSwitching:
    def test_profile_table_shapes(self, tiny_models):
        table = profile_response_latency(
            tiny_models,
            loads_qps=[20.0, 60.0],
            num_workers=2,
            slo_ms=100.0,
            max_batch_size=8,
            duration_ms=2_000.0,
        )
        assert table.loads_qps == (20.0, 60.0)
        assert set(table.models()) == set(tiny_models.pareto_front().names)
        for series in table.p99_ms.values():
            assert len(series) == 2
            assert all(v > 0 for v in series)

    def test_p99_increases_with_load(self, tiny_models):
        table = profile_response_latency(
            tiny_models,
            loads_qps=[10.0, 80.0],
            num_workers=1,
            slo_ms=100.0,
            duration_ms=5_000.0,
        )
        # The slow model saturates at high load; p99 must not shrink much.
        assert table.p99_at("slow", 80.0) >= table.p99_at("slow", 10.0) - 1.0

    def test_lookup_rounds_up(self):
        table = ResponseLatencyTable(
            loads_qps=(10.0, 20.0), p99_ms={"m": (5.0, 50.0)}
        )
        assert table.p99_at("m", 15.0) == 50.0
        assert table.p99_at("m", 10.0) == 5.0
        assert table.p99_at("m", 99.0) == 50.0  # beyond grid: top cell

    def test_selector_picks_most_accurate_fitting_slo(self, tiny_models):
        table = ResponseLatencyTable(
            loads_qps=(50.0,),
            p99_ms={"fast": (30.0,), "medium": (60.0,), "slow": (220.0,)},
        )
        sel = ModelSwitchingSelector(table)
        sel.bind(ctx(tiny_models, slo=100.0))
        model, _ = sel.model_for_load(50.0)
        assert model.name == "medium"

    def test_selector_falls_back_to_fastest(self, tiny_models):
        table = ResponseLatencyTable(
            loads_qps=(50.0,),
            p99_ms={"fast": (300.0,), "medium": (400.0,), "slow": (500.0,)},
        )
        sel = ModelSwitchingSelector(table)
        sel.bind(ctx(tiny_models, slo=100.0))
        model, _ = sel.model_for_load(50.0)
        assert model.name == "fast"


class TestInfaas:
    def test_lowest_latency_meeting_target(self, tiny_models):
        sel = InfaasAdaptedSelector(accuracy_target=0.70)
        sel.bind(ctx(tiny_models, slo=100.0, workers=2))
        model, _ = sel.model_for_load(10.0)
        assert model.name == "medium"  # cheapest with accuracy >= 0.70

    def test_zero_target_picks_fastest(self, tiny_models):
        sel = InfaasAdaptedSelector(accuracy_target=0.0)
        sel.bind(ctx(tiny_models, slo=100.0, workers=2))
        model, _ = sel.model_for_load(10.0)
        assert model.name == "fast"

    def test_unreachable_target_falls_back(self, tiny_models):
        sel = InfaasAdaptedSelector(accuracy_target=0.99)
        sel.bind(ctx(tiny_models, slo=100.0, workers=2))
        model, _ = sel.model_for_load(10.0)
        assert model.name == "fast"

    def test_invalid_target_rejected(self):
        with pytest.raises(CapacityError):
            InfaasAdaptedSelector(accuracy_target=1.5)


class TestGreedy:
    def test_most_accurate_meeting_deadline(self, tiny_models):
        sel = GreedyDeadlineSelector()
        sel.bind(ctx(tiny_models, slo=100.0))
        action = sel.select(1, 100.0, 0.0, 10.0)
        assert action.model == "slow"  # l(1) = 64 <= 100

    def test_tight_slack_forces_faster_model(self, tiny_models):
        sel = GreedyDeadlineSelector()
        sel.bind(ctx(tiny_models, slo=100.0))
        action = sel.select(1, 30.0, 0.0, 10.0)
        assert action.model == "medium"  # l(1) = 23 <= 30 < slow's 64

    def test_impossible_deadline_served_late(self, tiny_models):
        sel = GreedyDeadlineSelector()
        sel.bind(ctx(tiny_models, slo=100.0))
        action = sel.select(3, 5.0, 0.0, 10.0)
        assert action.is_late
        assert action.model == "fast"
        assert action.batch_size == 3


class TestFixedModel:
    def test_adaptive_batching(self, tiny_models):
        sel = FixedModelSelector("fast")
        sel.bind(ctx(tiny_models, slo=100.0))
        action = sel.select(30, 100.0, 0.0, 10.0)
        model = tiny_models.get("fast")
        assert model.latency_ms(action.batch_size) <= 50.0

    def test_too_slow_model_serves_singly(self, tiny_models):
        sel = FixedModelSelector("slow")
        sel.bind(ctx(tiny_models, slo=100.0))  # SLO/2 = 50 < l(1) = 64
        action = sel.select(10, 100.0, 0.0, 10.0)
        assert action.batch_size == 1

    def test_budget_override(self, tiny_models):
        sel = FixedModelSelector("fast", batch_budget_ms=100.0)
        sel.bind(ctx(tiny_models, slo=100.0))
        action = sel.select(30, 100.0, 0.0, 10.0)
        assert action.batch_size == 8  # capped by context max batch

    def test_unbound_selector_raises(self, tiny_models):
        sel = FixedModelSelector("fast")
        with pytest.raises(RuntimeError):
            _ = sel.context
