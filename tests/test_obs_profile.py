"""Phase profiler: nested paths, self-time, sampling, folded output."""

import pytest

from repro.core.generator import generate_policy
from repro.obs.profile import PhaseProfiler
from repro.obs.trace import RecordingTracer


def busy(ms):
    import time

    end = time.perf_counter() + ms / 1000.0
    while time.perf_counter() < end:
        pass


class TestPaths:
    def test_paths_root_at_track_and_nest(self):
        profiler = PhaseProfiler()
        with profiler.span("outer", track="engine"):
            with profiler.span("inner", track="engine"):
                pass
        with profiler.span("solo", track="solver"):
            pass
        paths = {s.path for s in profiler.stats()}
        assert paths == {
            ("engine", "outer"),
            ("engine", "outer", "inner"),
            ("solver", "solo"),
        }

    def test_tracks_have_independent_stacks(self):
        profiler = PhaseProfiler()
        with profiler.span("a", track="t1"):
            with profiler.span("b", track="t2"):
                pass
        paths = {s.path for s in profiler.stats()}
        # "b" on t2 is not nested under t1's open "a".
        assert ("t2", "b") in paths

    def test_depth_and_name_properties(self):
        profiler = PhaseProfiler()
        with profiler.span("outer", track="engine"):
            with profiler.span("inner", track="engine"):
                pass
        by_name = {s.name: s for s in profiler.stats()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1


class TestSelfTime:
    def test_self_time_excludes_direct_children(self):
        profiler = PhaseProfiler()
        with profiler.span("outer", track="t"):
            with profiler.span("inner", track="t"):
                busy(20.0)
            busy(5.0)
        by_name = {s.name: s for s in profiler.stats()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner.self_ms == pytest.approx(inner.total_ms)
        assert outer.self_ms == pytest.approx(
            outer.total_ms - inner.total_ms
        )
        assert outer.self_ms < outer.total_ms

    def test_self_time_clamped_non_negative(self):
        profiler = PhaseProfiler(sample_every=2)
        # First occurrence measured (fast), second skipped (slow): the
        # scaled child estimate can exceed the parent's.
        with profiler.span("outer", track="t"):
            with profiler.span("inner", track="t"):
                pass
        with profiler.span("outer", track="t"):
            with profiler.span("inner", track="t"):
                busy(10.0)
        for stat in profiler.stats():
            assert stat.self_ms >= 0.0

    def test_stats_sorted_by_self_time_desc(self):
        profiler = PhaseProfiler()
        with profiler.span("cheap", track="t"):
            pass
        with profiler.span("costly", track="t"):
            busy(15.0)
        stats = profiler.stats()
        assert stats[0].name == "costly"
        assert [s.self_ms for s in stats] == sorted(
            (s.self_ms for s in stats), reverse=True
        )


class TestSampling:
    def test_rejects_bad_sample_every(self):
        with pytest.raises(ValueError):
            PhaseProfiler(sample_every=0)

    def test_counts_all_but_measures_every_kth(self):
        profiler = PhaseProfiler(sample_every=4)
        for _ in range(10):
            with profiler.span("hot", track="t"):
                pass
        (stat,) = profiler.stats()
        assert stat.count == 10
        assert stat.measured == 3  # occurrences 1, 5, 9

    def test_totals_scaled_by_sampling_ratio(self):
        profiler = PhaseProfiler(sample_every=2)
        for _ in range(4):
            with profiler.span("hot", track="t"):
                busy(4.0)
        (stat,) = profiler.stats()
        # Two measured ~4 ms spans, scaled back up by 4/2.
        assert stat.measured == 2
        assert stat.total_ms == pytest.approx(stat.count / stat.measured * 8.0, rel=0.5)
        assert stat.mean_ms == pytest.approx(stat.total_ms / stat.count)


class TestReporting:
    def _profiled(self):
        profiler = PhaseProfiler()
        with profiler.span("outer", track="engine"):
            with profiler.span("inner", track="engine"):
                busy(2.0)
        return profiler

    def test_hotspots_table_shape(self):
        table = self._profiled().hotspots()
        lines = table.splitlines()
        assert lines[0].split() == [
            "phase",
            "count",
            "total_ms",
            "self_ms",
            "mean_ms",
        ]
        assert len(lines) == 3
        assert any("engine;outer;inner" in line for line in lines)

    def test_hotspots_respects_n(self):
        profiler = PhaseProfiler()
        for name in ("a", "b", "c"):
            with profiler.span(name, track="t"):
                pass
        assert len(profiler.hotspots(n=2).splitlines()) == 1 + 2

    def test_folded_lines_are_flamegraph_format(self):
        lines = self._profiled().folded()
        assert lines  # inner's 2 ms survives the integer-µs cutoff
        for line in lines:
            stack, micros = line.rsplit(" ", 1)
            assert int(micros) > 0
            assert stack.split(";")[0] == "engine"

    def test_folded_drops_zero_self_time_paths(self):
        profiler = PhaseProfiler()
        with profiler.span("outer", track="t"):
            with profiler.span("inner", track="t"):
                busy(2.0)
        # outer's self-time is ~0; only the inner path should survive.
        stacks = [line.rsplit(" ", 1)[0] for line in profiler.folded()]
        assert "t;outer;inner" in stacks

    def test_reset_clears_aggregates(self):
        profiler = self._profiled()
        profiler.reset()
        assert profiler.stats() == []
        assert profiler.folded() == []
        with profiler.span("fresh", track="t"):
            pass
        assert [s.name for s in profiler.stats()] == ["fresh"]


class TestForwarding:
    def test_forwards_spans_to_inner_recorder(self):
        recorder = RecordingTracer()
        profiler = PhaseProfiler(recorder)
        with profiler.span("outer", track="engine", args={"k": 1}):
            with profiler.span("inner", track="engine"):
                pass
        assert [s.name for s in recorder.spans] == ["inner", "outer"]
        assert recorder.spans[0].parent_id == recorder.spans[1].span_id
        assert recorder.spans[1].args == {"k": 1}

    def test_sampling_still_forwards_untimed_occurrences(self):
        recorder = RecordingTracer()
        profiler = PhaseProfiler(recorder, sample_every=3)
        for _ in range(5):
            with profiler.span("hot", track="t"):
                pass
        assert len(recorder.spans) == 5
        (stat,) = profiler.stats()
        assert stat.measured == 2

    def test_profiles_policy_generation_phases(self, tiny_config):
        """Drop-in on existing instrumentation: solver phases aggregate."""
        profiler = PhaseProfiler()
        generate_policy(tiny_config, tracer=profiler)
        names = {s.name for s in profiler.stats()}
        assert "generate_policy" in names
        assert "value_iteration" in names
        deepest = max(s.depth for s in profiler.stats())
        assert deepest >= 1


class TestOfflineStats:
    """Phase stats rebuilt from recorded span dicts (``merged.jsonl``)."""

    def _record_nested(self):
        tracer = RecordingTracer()
        with tracer.span("outer", track="t"):
            with tracer.span("inner", track="t"):
                pass
            with tracer.span("inner", track="t"):
                pass
        with tracer.span("other", track="u"):
            pass
        return tracer

    def _records(self, tracer):
        import json

        from repro.obs.exporters import events_jsonl

        return [json.loads(line) for line in events_jsonl(tracer)]

    def test_paths_rebuilt_from_parent_ids(self):
        from repro.obs.profile import stats_from_spans

        stats = stats_from_spans(self._records(self._record_nested()))
        paths = {s.path: s for s in stats}
        assert ("t", "outer") in paths
        assert ("t", "outer", "inner") in paths
        assert ("u", "other") in paths
        assert paths[("t", "outer", "inner")].count == 2

    def test_self_time_excludes_children_offline(self):
        from repro.obs.profile import stats_from_spans

        stats = stats_from_spans(self._records(self._record_nested()))
        by_path = {s.path: s for s in stats}
        outer = by_path[("t", "outer")]
        inner = by_path[("t", "outer", "inner")]
        assert outer.self_ms == pytest.approx(
            max(0.0, outer.total_ms - inner.total_ms)
        )

    def test_offline_render_shared_with_profiler(self):
        from repro.obs.profile import (
            folded_lines,
            render_hotspots,
            stats_from_spans,
        )

        stats = stats_from_spans(self._records(self._record_nested()))
        table = render_hotspots(stats, n=5)
        assert table.splitlines()[0].split() == [
            "phase", "count", "total_ms", "self_ms", "mean_ms",
        ]
        for line in folded_lines(stats):
            path, micros = line.rsplit(" ", 1)
            assert int(micros) > 0
            assert ";" in path

    def test_non_span_records_ignored(self):
        from repro.obs.profile import stats_from_spans

        records = [
            {"type": "instant", "name": "tick", "track": "t", "ts_ms": 0.0},
            {"type": "counter", "name": "q", "track": "t", "value": 1.0},
        ]
        assert stats_from_spans(records) == []

    def test_orphan_parent_treated_as_root(self):
        from repro.obs.profile import stats_from_spans

        records = [
            {
                "type": "span", "name": "child", "track": "t",
                "ts_ms": 0.0, "dur_ms": 5.0, "id": 2, "parent": 99,
            }
        ]
        stats = stats_from_spans(records)
        assert [s.path for s in stats] == [("t", "child")]
