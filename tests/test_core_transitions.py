"""Tests for transition kernels (§4.4) — the heart of the reproduction."""

import numpy as np
import pytest

from repro.arrivals.distributions import (
    DeterministicArrivals,
    GammaArrivals,
    PoissonArrivals,
)
from repro.core.discretization import fixed_length_grid
from repro.core.transitions import (
    DeterministicGaps,
    EquilibriumRenewalKernelBuilder,
    ExactRoundRobinKernelBuilder,
    GammaGaps,
    SplitViewKernelBuilder,
    StateSpace,
    gaps_for_distribution,
)

SLO = 120.0
GRID = fixed_length_grid(SLO, 12)
N_MAX = 10


class TestStateSpace:
    def test_size(self):
        sp = StateSpace(max_queue=4, grid_size=5)
        assert sp.size == 2 + 20

    def test_index_decode_roundtrip(self):
        sp = StateSpace(max_queue=4, grid_size=5)
        for n in range(1, 5):
            for j in range(5):
                assert sp.decode(sp.index(n, j)) == (n, j)

    def test_special_states(self):
        sp = StateSpace(max_queue=4, grid_size=5)
        assert sp.decode(sp.EMPTY) == (0, -1)
        assert sp.decode(sp.FULL) == (4, 0)

    def test_bounds_checked(self):
        sp = StateSpace(max_queue=4, grid_size=5)
        with pytest.raises(ValueError):
            sp.index(0, 0)
        with pytest.raises(ValueError):
            sp.index(5, 0)
        with pytest.raises(ValueError):
            sp.index(1, 5)
        with pytest.raises(ValueError):
            sp.decode(sp.size)

    def test_occupied_view_shares_memory(self):
        sp = StateSpace(max_queue=3, grid_size=4)
        v = np.zeros(sp.size)
        view = sp.occupied_view(v)
        view[1, 2] = 7.0
        assert v[sp.index(2, 2)] == 7.0


class TestSplitViewKernel:
    def setup_method(self):
        self.dist = PoissonArrivals(40.0)
        self.builder = SplitViewKernelBuilder(GRID, self.dist, max_queue=N_MAX)

    def test_row_is_distribution(self):
        for latency in (5.0, 33.3, 80.0, 150.0):
            row = self.builder.service_row(latency)
            assert row.min() >= 0.0
            assert row.sum() == pytest.approx(1.0, abs=1e-9)

    def test_empty_probability_matches_poisson(self):
        row = self.builder.service_row(50.0)
        assert row[self.builder.space.EMPTY] == pytest.approx(
            self.dist.pmf(0, 50.0)
        )

    def test_count_marginal_matches_poisson(self):
        """Summing slack bins recovers P[n' = k arrivals during service]."""
        row = self.builder.service_row(60.0)
        occ = self.builder.space.occupied_view(row)
        pois = self.dist.pmf_vector(N_MAX, 60.0)
        for k in range(1, N_MAX + 1):
            assert occ[k - 1].sum() == pytest.approx(pois[k], abs=1e-10)

    def test_slack_support_window(self):
        """For n' >= 1, slack lies in [SLO - l, SLO) exactly."""
        latency = 60.0
        row = self.builder.service_row(latency)
        occ = self.builder.space.occupied_view(row)
        grid_values = GRID.as_array()
        for j in range(len(GRID)):
            mass = occ[:, j].sum()
            if GRID.upper(j) <= SLO - latency or grid_values[j] >= SLO:
                assert mass == pytest.approx(0.0, abs=1e-12)

    def test_full_state_takes_tail(self):
        # Huge service time: queue overflows with near certainty.
        row = self.builder.service_row(1000.0)
        assert row[self.builder.space.FULL] > 0.5

    def test_rows_cached(self):
        a = self.builder.service_row(42.0)
        b = self.builder.service_row(42.0)
        assert a is b

    def test_partial_row_geometry(self):
        row = self.builder.partial_row(30.0, leftover=2, leftover_slack_ms=45.0)
        sp = self.builder.space
        assert row.sum() == pytest.approx(1.0, abs=1e-9)
        j_left = GRID.floor_index(45.0)
        counts = self.dist.pmf_vector(N_MAX, 30.0)
        for k in range(N_MAX - 2 + 1):
            assert row[sp.index(2 + k, j_left)] == pytest.approx(counts[k])

    def test_partial_row_requires_leftover(self):
        with pytest.raises(ValueError):
            self.builder.partial_row(30.0, leftover=0, leftover_slack_ms=0.0)


class TestEquilibriumRenewalKernel:
    def test_exponential_gaps_match_poisson_split(self):
        """Memorylessness: equilibrium renewal with exponential gaps must
        reproduce the Poisson split kernel exactly."""
        dist = PoissonArrivals(40.0)
        split = SplitViewKernelBuilder(GRID, dist, max_queue=N_MAX)
        renewal = EquilibriumRenewalKernelBuilder(
            GRID, GammaGaps(shape=1.0, scale_ms=25.0), max_queue=N_MAX
        )
        for latency in (10.0, 47.0, 90.0):
            a = split.service_row(latency)
            b = renewal.service_row(latency)
            assert np.allclose(a, b, atol=5e-6)

    def test_row_is_distribution(self):
        builder = EquilibriumRenewalKernelBuilder(
            GRID, GammaGaps(shape=6.0, scale_ms=25.0 / 6.0), max_queue=N_MAX
        )
        for latency in (5.0, 40.0, 110.0):
            row = builder.service_row(latency)
            assert row.min() >= -1e-12
            assert row.sum() == pytest.approx(1.0, abs=1e-8)

    def test_erlang_less_bursty_than_poisson(self):
        """With Erlang gaps (round-robin marginal), the count of arrivals
        during a service is less dispersed than Poisson at the same rate."""
        mean_gap = 25.0
        pois = EquilibriumRenewalKernelBuilder(
            GRID, GammaGaps(shape=1.0, scale_ms=mean_gap), max_queue=N_MAX
        )
        erl = EquilibriumRenewalKernelBuilder(
            GRID, GammaGaps(shape=8.0, scale_ms=mean_gap / 8.0), max_queue=N_MAX
        )
        latency = 50.0  # ~2 arrivals expected
        counts_p = pois.arrival_counts(latency)
        counts_e = erl.arrival_counts(latency)
        ks = np.arange(N_MAX + 1)

        def variance(c):
            mean = float((ks * c).sum())
            return float((((ks - mean) ** 2) * c).sum())

        assert variance(counts_e) < variance(counts_p)

    def test_arrival_counts_mean_matches_rate(self):
        builder = EquilibriumRenewalKernelBuilder(
            GRID, GammaGaps(shape=4.0, scale_ms=5.0), max_queue=N_MAX
        )
        latency = 60.0  # expected arrivals = 60 / 20 = 3
        counts = builder.arrival_counts(latency)
        mean = float((np.arange(N_MAX + 1) * counts).sum())
        # Tail mass beyond N_MAX is negligible here.
        assert mean == pytest.approx(3.0, rel=0.05)

    def test_deterministic_gaps(self):
        builder = EquilibriumRenewalKernelBuilder(
            GRID, DeterministicGaps(gap_ms=30.0), max_queue=N_MAX
        )
        counts = builder.arrival_counts(45.0)
        # 45ms with 30ms gaps and uniform phase: 1 or 2 arrivals.
        assert counts.sum() == pytest.approx(1.0, abs=1e-6)
        assert counts[0] == pytest.approx(0.0, abs=0.02)
        assert counts[1] + counts[2] == pytest.approx(1.0, abs=0.02)


class TestGapsForDistribution:
    def test_poisson_maps_to_exponential(self):
        gaps = gaps_for_distribution(PoissonArrivals(100.0))
        assert isinstance(gaps, GammaGaps)
        assert gaps.shape == 1.0
        assert gaps.mean_ms == pytest.approx(10.0)

    def test_gamma_maps_to_gamma(self):
        gaps = gaps_for_distribution(GammaArrivals(100.0, shape=3.0))
        assert isinstance(gaps, GammaGaps)
        assert gaps.shape == 3.0
        assert gaps.mean_ms == pytest.approx(10.0)

    def test_deterministic_maps_to_fixed(self):
        gaps = gaps_for_distribution(DeterministicArrivals(100.0))
        assert isinstance(gaps, DeterministicGaps)
        assert gaps.mean_ms == pytest.approx(10.0)


class TestExactRoundRobinKernel:
    def test_k1_matches_split_view(self):
        dist = PoissonArrivals(40.0)
        split = SplitViewKernelBuilder(GRID, dist, max_queue=N_MAX)
        exact = ExactRoundRobinKernelBuilder(
            GRID, dist, num_workers=1, max_queue=N_MAX
        )
        for latency in (15.0, 55.0, 100.0):
            rows = exact.service_rows_by_phase(latency)
            assert rows.shape[0] == 1
            assert np.allclose(rows[0], split.service_row(latency), atol=1e-9)

    def test_rows_are_distributions(self):
        exact = ExactRoundRobinKernelBuilder(
            GRID, PoissonArrivals(120.0), num_workers=3, max_queue=N_MAX
        )
        rows = exact.service_rows_by_phase(40.0)
        assert rows.shape == (3, exact.space.size)
        assert rows.min() >= -1e-12
        assert np.allclose(rows.sum(axis=1), 1.0, atol=1e-8)

    def test_phase_weights_sum_to_one(self):
        exact = ExactRoundRobinKernelBuilder(
            GRID, PoissonArrivals(120.0), num_workers=4, max_queue=N_MAX
        )
        for n in (1, 3, 7):
            for slack in (0.0, 50.0, 120.0):
                w = exact.phase_weights(n, slack)
                assert w.shape == (4,)
                assert w.sum() == pytest.approx(1.0)
                assert (w >= 0).all()

    def test_phase_deterministic_right_after_arrival(self):
        """A fresh arrival (slack == SLO, n == 1) pins the phase to 0."""
        exact = ExactRoundRobinKernelBuilder(
            GRID, PoissonArrivals(120.0), num_workers=4, max_queue=N_MAX
        )
        w = exact.phase_weights(1, SLO)
        assert w[0] == pytest.approx(1.0)

    def test_higher_phase_means_sooner_arrival(self):
        """Phase r = K-1 (next central arrival is ours) makes an empty next
        queue less likely than phase r = 0."""
        exact = ExactRoundRobinKernelBuilder(
            GRID, PoissonArrivals(120.0), num_workers=4, max_queue=N_MAX
        )
        rows = exact.service_rows_by_phase(40.0)
        sp = exact.space
        assert rows[3, sp.EMPTY] < rows[0, sp.EMPTY]

    def test_marginal_close_to_equilibrium_renewal(self):
        """Uniformly mixing the exact phases approximates the equilibrium
        renewal marginal (they coincide as conditioning vanishes)."""
        k = 3
        central = PoissonArrivals(120.0)
        exact = ExactRoundRobinKernelBuilder(GRID, central, k, max_queue=N_MAX)
        renewal = EquilibriumRenewalKernelBuilder(
            GRID,
            gaps_for_distribution(central.split_round_robin(k)),
            max_queue=N_MAX,
        )
        latency = 50.0
        mixed = exact.service_rows_by_phase(latency).mean(axis=0)
        row = renewal.service_row(latency)
        assert np.allclose(mixed, row, atol=5e-3)
