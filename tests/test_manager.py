"""Tests for the resource-manager capacity planner (§5.1's scaling loop)."""

import pytest

from repro.arrivals.traces import LoadTrace
from repro.core.config import WorkerMDPConfig
from repro.arrivals.distributions import PoissonArrivals
from repro.errors import CapacityError
from repro.manager import CapacityPlanner


@pytest.fixture
def planner(tiny_models):
    base = WorkerMDPConfig(
        model_set=tiny_models,
        slo_ms=100.0,
        arrivals=PoissonArrivals(50.0),
        max_batch_size=8,
        fld_resolution=10,
    )
    return CapacityPlanner(
        base,
        accuracy_floor=0.70,
        violation_ceiling=0.02,
        min_workers=1,
        max_workers=16,
    )


class TestPlan:
    def test_plan_meets_targets(self, planner):
        plan = planner.plan(60.0)
        assert plan.guarantees.expected_accuracy >= 0.70
        assert plan.guarantees.expected_violation_rate <= 0.02
        assert 1 <= plan.num_workers <= 16

    def test_plan_is_minimal(self, planner, tiny_models):
        """One worker fewer must fail at least one target."""
        plan = planner.plan(60.0)
        if plan.num_workers > 1:
            from repro.core.generator import generate_policy

            smaller = WorkerMDPConfig(
                model_set=tiny_models,
                slo_ms=100.0,
                arrivals=PoissonArrivals(60.0),
                num_workers=plan.num_workers - 1,
                max_batch_size=8,
                fld_resolution=10,
            )
            g = generate_policy(smaller).guarantees
            assert not g.meets(0.70, 0.02)

    def test_more_load_needs_at_least_as_many_workers(self, planner):
        low = planner.plan(30.0).num_workers
        high = planner.plan(120.0).num_workers
        assert high >= low

    def test_plan_cached(self, planner):
        assert planner.plan(60.0) is planner.plan(60.0)

    def test_infeasible_raises(self, tiny_models):
        base = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(50.0),
            max_batch_size=8,
            fld_resolution=10,
        )
        impossible = CapacityPlanner(
            base, accuracy_floor=0.95, violation_ceiling=0.01, max_workers=4
        )
        with pytest.raises(CapacityError):
            impossible.plan(50.0)

    def test_invalid_targets_rejected(self, tiny_models):
        base = WorkerMDPConfig(
            model_set=tiny_models,
            slo_ms=100.0,
            arrivals=PoissonArrivals(50.0),
        )
        with pytest.raises(CapacityError):
            CapacityPlanner(base, accuracy_floor=1.5, violation_ceiling=0.1)
        with pytest.raises(CapacityError):
            CapacityPlanner(base, accuracy_floor=0.5, violation_ceiling=-0.1)
        with pytest.raises(CapacityError):
            CapacityPlanner(
                base, accuracy_floor=0.5, violation_ceiling=0.1, min_workers=0
            )


class TestSchedule:
    def test_schedule_covers_trace(self, planner):
        trace = LoadTrace(interval_ms=5_000.0, qps=(30.0, 90.0, 120.0, 40.0))
        schedule = planner.schedule_for_trace(trace, load_quantum_qps=30.0)
        assert len(schedule.entries) == 4
        assert schedule.entries[0].start_ms == 0.0
        assert schedule.entries[-1].end_ms == trace.duration_ms

    def test_scale_up_immediate(self, planner):
        trace = LoadTrace(interval_ms=5_000.0, qps=(30.0, 120.0))
        schedule = planner.schedule_for_trace(trace, load_quantum_qps=30.0)
        assert schedule.entries[1].num_workers >= schedule.entries[0].num_workers

    def test_scale_down_waits_for_cooldown(self, planner):
        trace = LoadTrace(
            interval_ms=5_000.0, qps=(120.0, 30.0, 30.0, 30.0)
        )
        schedule = planner.schedule_for_trace(
            trace, load_quantum_qps=30.0, cooldown_intervals=2
        )
        peak = schedule.entries[0].num_workers
        # Held through the cooldown, released afterwards.
        assert schedule.entries[1].num_workers == peak
        assert schedule.entries[2].num_workers == peak
        assert schedule.entries[3].num_workers <= peak

    def test_worker_seconds_accounting(self, planner):
        trace = LoadTrace(interval_ms=2_000.0, qps=(30.0, 30.0))
        schedule = planner.schedule_for_trace(trace, load_quantum_qps=30.0)
        per_interval = schedule.entries[0].num_workers * 2.0
        assert schedule.worker_seconds == pytest.approx(2 * per_interval)

    def test_workers_at(self, planner):
        trace = LoadTrace(interval_ms=1_000.0, qps=(30.0, 120.0))
        schedule = planner.schedule_for_trace(trace, load_quantum_qps=30.0)
        assert schedule.workers_at(500.0) == schedule.entries[0].num_workers
        with pytest.raises(CapacityError):
            schedule.workers_at(5_000.0)

    def test_headroom_increases_allocation(self, planner):
        trace = LoadTrace(interval_ms=5_000.0, qps=(60.0,))
        lean = planner.schedule_for_trace(trace, load_quantum_qps=15.0)
        padded = planner.schedule_for_trace(
            trace, load_quantum_qps=15.0, headroom=1.8
        )
        assert padded.peak_workers >= lean.peak_workers

    def test_invalid_parameters(self, planner):
        trace = LoadTrace.constant(30.0, 1_000.0)
        with pytest.raises(CapacityError):
            planner.schedule_for_trace(trace, load_quantum_qps=0.0)
        with pytest.raises(CapacityError):
            planner.schedule_for_trace(trace, cooldown_intervals=-1)
